//! The out-of-order core timing model.
//!
//! A timestamp-dataflow model of the paper's simulated processor (§4.1):
//! 8-wide fetch/dispatch/commit, a 128-entry reorder buffer, 10 functional
//! units (6 ALU + 4 data-cache ports), a two-level data cache, a hybrid
//! branch predictor, and optional load-address prediction with selective
//! (dependents-only) recovery.
//!
//! Each dynamic instruction is assigned fetch → dispatch → issue →
//! complete → commit timestamps subject to data dependences (through the
//! architectural registers carried by the trace) and structural capacity
//! ([`crate::capacity::SlotTracker`]). This interval-style model captures
//! what the speedup figures measure — how much load-to-use latency the
//! address predictor removes from critical paths — without simulating
//! wrong-path instructions. Wrong-path *address predictor updates* (§5.4)
//! are likewise not modelled; the paper itself only discusses them
//! qualitatively.
//!
//! ## Address-prediction integration
//!
//! Without prediction, a load's cache access starts after its address
//! generation (base register ready + AGU latency). With a confident
//! prediction, the access is launched speculatively at dispatch — and
//! because data delivery is speculative too, dependents may consume the
//! value *before* verification. On a misprediction, the access is re-issued
//! after address generation and only the dependents re-execute (selective
//! recovery), with the wasted early port booking left in place.
//!
//! ## Memory disambiguation
//!
//! The paper's simulator orders loads and stores with "an efficient
//! dynamic memory disambiguation scheme" (§4.1). This model keeps the
//! completion time of the most recent store to every word: a load hitting
//! that word *forwards* from the store (1-cycle forward latency) instead
//! of the cache, and — crucially for address prediction — its data can
//! never be delivered before the producing store's data is ready, even
//! when the address was predicted perfectly. True memory dependences are
//! therefore not magically erased by address prediction.

use crate::branch::{BranchPredictor, HybridBranchPredictor};
use crate::cache::CacheConfig;
use crate::capacity::SlotTracker;
use crate::hierarchy::{LatencyConfig, MemoryHierarchy};
use crate::names;
use cap_obs::Obs;
use cap_predictor::drive::ControlState;
use cap_predictor::metrics::PredictorStats;
use cap_predictor::types::{AddressPredictor, LoadContext, Prediction};
use cap_trace::{RegId, Trace, TraceEvent};
use std::collections::{HashMap, VecDeque};

/// Core configuration (defaults follow §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Fetch/dispatch/commit width.
    pub width: u32,
    /// Reorder-buffer entries.
    pub rob_entries: usize,
    /// Number of ALU/branch functional units.
    pub alu_units: u32,
    /// Number of data-cache ports (shared by loads and stores).
    pub mem_ports: u32,
    /// Front-end depth in cycles (fetch → dispatch).
    pub frontend_latency: u32,
    /// Extra cycles to redirect fetch after a branch misprediction.
    pub redirect_penalty: u32,
    /// Address-generation latency.
    pub agen_latency: u32,
    /// Extra cycles to replay a load after an address misprediction.
    pub replay_penalty: u32,
    /// Share the stride prediction structures for next-invocation data
    /// prefetching (\[Gonz97\]): when a confident stride prediction is
    /// made, the projected next-invocation line is pulled into the cache
    /// in the background.
    pub prefetch: bool,
    /// L1 configuration.
    pub l1: CacheConfig,
    /// L2 configuration.
    pub l2: CacheConfig,
    /// Hierarchy latencies.
    pub latency: LatencyConfig,
}

impl CoreConfig {
    /// The paper's 8-wide, 128-deep configuration with 10 functional units
    /// and 4 data-cache ports.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            width: 8,
            rob_entries: 128,
            alu_units: 6,
            mem_ports: 4,
            frontend_latency: 3,
            redirect_penalty: 2,
            agen_latency: 1,
            replay_penalty: 1,
            prefetch: false,
            l1: CacheConfig::paper_l1(),
            l2: CacheConfig::paper_l2(),
            latency: LatencyConfig::paper_default(),
        }
    }
}

/// Timing results of one simulation run.
#[derive(Debug, Clone, Default)]
pub struct CoreStats {
    /// Total cycles (commit time of the last instruction).
    pub cycles: u64,
    /// Committed instructions.
    pub instructions: u64,
    /// Committed loads.
    pub loads: u64,
    /// Branch mispredictions.
    pub branch_mispredicts: u64,
    /// Background prefetches issued (when prefetching is enabled).
    pub prefetches: u64,
    /// L1 hit rate over the run.
    pub l1_hit_rate: f64,
    /// Address-prediction statistics (zeroed when no predictor was used).
    pub pred: PredictorStats,
}

impl CoreStats {
    /// Instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Speedup of this run relative to a baseline run of the same trace.
    #[must_use]
    pub fn speedup_over(&self, baseline: &CoreStats) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            baseline.cycles as f64 / self.cycles as f64
        }
    }
}

/// One in-flight load prediction awaiting its (gap-delayed) table update.
#[derive(Debug)]
struct PendingUpdate {
    ctx: LoadContext,
    pred: Prediction,
    actual: u64,
    /// Dynamic-instruction index at which the prediction was made.
    seq: u64,
}

/// The timing simulator.
#[derive(Debug)]
pub struct OooCore {
    config: CoreConfig,
    mem: MemoryHierarchy,
    branch: HybridBranchPredictor,
    fetch_slots: SlotTracker,
    dispatch_slots: SlotTracker,
    commit_slots: SlotTracker,
    alu: SlotTracker,
    ports: SlotTracker,
    reg_ready: [u64; RegId::COUNT],
    /// Completion time of the most recent store to each word address.
    store_ready: HashMap<u64, u64>,
    commit_ring: VecDeque<u64>,
    redirect_time: u64,
    last_commit: u64,
    control: ControlState,
    stats: CoreStats,
    obs: Obs,
}

impl OooCore {
    /// Creates a core.
    #[must_use]
    pub fn new(config: CoreConfig) -> Self {
        Self {
            mem: MemoryHierarchy::new(config.l1, config.l2, config.latency),
            branch: HybridBranchPredictor::paper_default(),
            fetch_slots: SlotTracker::new(config.width),
            dispatch_slots: SlotTracker::new(config.width),
            commit_slots: SlotTracker::new(config.width),
            alu: SlotTracker::new(config.alu_units),
            ports: SlotTracker::new(config.mem_ports),
            reg_ready: [0; RegId::COUNT],
            store_ready: HashMap::new(),
            commit_ring: VecDeque::with_capacity(config.rob_entries + 1),
            redirect_time: 0,
            last_commit: 0,
            control: ControlState::default(),
            stats: CoreStats::default(),
            obs: Obs::off(),
            config,
        }
    }

    /// Attaches a telemetry sink: cache hit/miss counters land in it via
    /// the hierarchy, occupancy gauges (`uarch.rob.occupancy`,
    /// `uarch.*.live_lines`) are published at the periodic prune points
    /// and at end of run, and per-load prediction stats are mirrored
    /// under the `pred.*` names. Not snapshotted — re-attach after a
    /// restore.
    pub fn set_obs(&mut self, obs: Obs) {
        self.mem.set_obs(obs.clone());
        self.obs = obs;
    }

    /// Publishes the core/cache occupancy gauges.
    fn publish_occupancy(&self) {
        self.obs
            .gauge(names::ROB_OCCUPANCY, self.commit_ring.len() as i64);
        self.obs
            .gauge(names::STORE_SET_SIZE, self.store_ready.len() as i64);
        self.mem.publish_occupancy();
    }

    fn src_ready(&self, srcs: &[Option<RegId>]) -> u64 {
        srcs.iter()
            .flatten()
            .map(|r| self.reg_ready[r.index()])
            .max()
            .unwrap_or(0)
    }

    fn set_dst(&mut self, dst: Option<RegId>, ready: u64) {
        if let Some(r) = dst {
            self.reg_ready[r.index()] = ready;
        }
    }

    /// Runs a full trace through the core with an optional address
    /// predictor and a predict-to-update gap expressed in dynamic
    /// instructions (`0` = immediate update, as in §4).
    pub fn run(
        &mut self,
        trace: &Trace,
        mut predictor: Option<&mut dyn AddressPredictor>,
        gap: usize,
    ) -> CoreStats {
        let mut pending: VecDeque<PendingUpdate> = VecDeque::with_capacity(gap + 1);
        let mut in_flight: HashMap<u64, u32> = HashMap::new();

        for (seq, event) in trace.iter().enumerate() {
            let seq = seq as u64;
            // Apply predictor table updates that are past the gap.
            if let Some(p) = predictor.as_deref_mut() {
                while let Some(u) = pending
                    .front()
                    .is_some_and(|u| u.seq + gap as u64 <= seq)
                    .then(|| pending.pop_front())
                    .flatten()
                {
                    p.update(&u.ctx, u.actual, &u.pred);
                    self.stats.pred.record_with(&u.pred, u.actual, &self.obs);
                    if let Some(n) = in_flight.get_mut(&u.ctx.ip) {
                        *n -= 1;
                        if *n == 0 {
                            in_flight.remove(&u.ctx.ip);
                        }
                    }
                }
            }
            // Front end.
            let fetch = self.fetch_slots.alloc(self.redirect_time);
            let mut dispatch = self
                .dispatch_slots
                .alloc(fetch + u64::from(self.config.frontend_latency));
            // ROB: the instruction `rob_entries` older must have committed.
            if self.commit_ring.len() >= self.config.rob_entries {
                if let Some(oldest) = self.commit_ring.pop_front() {
                    dispatch = dispatch.max(oldest);
                }
            }

            let complete = match event {
                TraceEvent::Op(op) => {
                    let ready = self.src_ready(&op.srcs).max(dispatch);
                    let issue = self.alu.alloc(ready);
                    let complete = issue + u64::from(op.latency.cycles());
                    self.set_dst(op.dst, complete);
                    complete
                }
                TraceEvent::Branch(b) => {
                    let issue = self.alu.alloc(dispatch);
                    let resolve = issue + 1;
                    if b.kind == cap_trace::BranchKind::Conditional {
                        let predicted = self.branch.predict(b.ip, self.control.ghr);
                        if predicted != b.taken {
                            self.stats.branch_mispredicts += 1;
                            self.redirect_time = self
                                .redirect_time
                                .max(resolve + u64::from(self.config.redirect_penalty));
                        }
                        self.branch.update(b.ip, self.control.ghr, b.taken);
                    }
                    self.control.on_branch(b.ip, b.taken, b.kind);
                    resolve
                }
                TraceEvent::Store(st) => {
                    let agen = self.src_ready(&[st.addr_src]).max(dispatch)
                        + u64::from(self.config.agen_latency);
                    let data = self.src_ready(&[st.data_src]);
                    let port = self.ports.alloc(agen.max(data));
                    self.mem.access(st.addr);
                    // Make the stored word visible for load forwarding.
                    self.store_ready.insert(st.addr >> 2, port + 1);
                    port + 1
                }
                TraceEvent::Load(load) => {
                    self.stats.loads += 1;
                    let agen = self.src_ready(&[load.addr_src]).max(dispatch)
                        + u64::from(self.config.agen_latency);

                    // Query the address predictor at dispatch.
                    let prediction = match predictor.as_deref_mut() {
                        Some(p) => {
                            let ctx = LoadContext {
                                ip: load.ip,
                                offset: load.offset,
                                ghr: self.control.ghr,
                                path: self.control.path,
                                pending: in_flight.get(&load.ip).copied().unwrap_or(0),
                            };
                            let pred = p.predict(&ctx);
                            *in_flight.entry(load.ip).or_insert(0) += 1;
                            pending.push_back(PendingUpdate {
                                ctx,
                                pred,
                                actual: load.addr,
                                seq,
                            });
                            Some(pred)
                        }
                        None => None,
                    };

                    if self.config.prefetch {
                        if let Some(pf) = prediction.and_then(|p| p.detail.next_invocation) {
                            // Background prefetch of the projected next
                            // invocation; no port booking — prefetches use
                            // idle bandwidth in this model.
                            self.mem.access(pf);
                            self.stats.prefetches += 1;
                        }
                    }
                    // A pending/recent store to the same word forwards its
                    // data; its readiness is a floor on the load's data
                    // delivery regardless of address prediction.
                    let forward_floor = self.store_ready.get(&(load.addr >> 2)).copied();
                    // A speculative access needs a concrete address; a
                    // `speculate` flag with no address (impossible from the
                    // shipped predictors, but reachable from a fault-injected
                    // one) falls through to the non-speculative path.
                    let spec_addr = prediction
                        .filter(|p| p.speculate)
                        .and_then(|p| p.addr);
                    let data_ready = match spec_addr {
                        Some(predicted) => {
                            // The prediction is available in the front end
                            // ("address prediction is performed in an early
                            // stage of the pipeline", §4.1), so the
                            // speculative access overlaps decode/rename and
                            // starts right after fetch — this head start
                            // over waiting for dispatch + address
                            // generation is where the load-to-use latency
                            // hiding comes from.
                            let spec_port = self.ports.alloc(fetch + 1);
                            let spec_lat = self.mem.access(predicted);
                            let spec_done = spec_port + u64::from(spec_lat);
                            if predicted == load.addr {
                                // Correct: dependents consume the
                                // speculatively delivered data (but never
                                // before a forwarding store's data).
                                match forward_floor {
                                    Some(t) => spec_done.max(t.max(agen) + 1),
                                    None => spec_done,
                                }
                            } else {
                                // Mispredicted: replay after verification
                                // (address generation), dependents re-run.
                                let replay = self
                                    .ports
                                    .alloc(agen + u64::from(self.config.replay_penalty));
                                let lat = self.mem.access(load.addr);
                                replay + u64::from(lat)
                            }
                        }
                        _ => match forward_floor {
                            // Store-to-load forwarding: 1-cycle bypass once
                            // both the load's address and the store's data
                            // are known.
                            Some(t) => {
                                let port = self.ports.alloc(agen.max(t));
                                port + 1
                            }
                            None => {
                                let port = self.ports.alloc(agen);
                                let lat = self.mem.access(load.addr);
                                port + u64::from(lat)
                            }
                        },
                    };
                    self.set_dst(load.dst, data_ready);
                    data_ready
                }
            };

            // In-order commit.
            let commit = self.commit_slots.alloc(complete.max(self.last_commit));
            self.last_commit = commit;
            self.commit_ring.push_back(commit);
            self.stats.instructions += 1;

            // Allow trackers to prune below the dispatch frontier.
            if self.stats.instructions.is_multiple_of(8192) {
                self.fetch_slots.retire_below(fetch);
                self.dispatch_slots.retire_below(dispatch);
                self.alu.retire_below(dispatch);
                self.ports.retire_below(dispatch);
                self.commit_slots.retire_below(dispatch);
                if self.obs.enabled() {
                    self.publish_occupancy();
                }
            }
        }

        // Drain gap-pending predictor updates.
        if let Some(p) = predictor {
            while let Some(u) = pending.pop_front() {
                p.update(&u.ctx, u.actual, &u.pred);
                self.stats.pred.record_with(&u.pred, u.actual, &self.obs);
            }
        }

        if self.obs.enabled() {
            self.publish_occupancy();
        }
        self.stats.cycles = self.last_commit;
        self.stats.l1_hit_rate = self.mem.l1_hit_rate();
        self.stats.clone()
    }
}

use cap_snapshot::{Restorable, SectionReader, SectionWriter, Snapshot, SnapshotError};

impl Snapshot for CoreConfig {
    fn write_state(&self, w: &mut SectionWriter) {
        w.put_u32(self.width);
        w.put_len(self.rob_entries);
        w.put_u32(self.alu_units);
        w.put_u32(self.mem_ports);
        w.put_u32(self.frontend_latency);
        w.put_u32(self.redirect_penalty);
        w.put_u32(self.agen_latency);
        w.put_u32(self.replay_penalty);
        w.put_bool(self.prefetch);
        self.l1.write_state(w);
        self.l2.write_state(w);
        self.latency.write_state(w);
    }
}

impl Restorable for CoreConfig {
    fn read_state(r: &mut SectionReader<'_>) -> Result<Self, SnapshotError> {
        let width = r.take_u32("core width")?;
        let rob_entries = r.take_u64("core rob entries")?;
        let config = Self {
            width,
            rob_entries: rob_entries as usize,
            alu_units: r.take_u32("core alu units")?,
            mem_ports: r.take_u32("core mem ports")?,
            frontend_latency: r.take_u32("core frontend latency")?,
            redirect_penalty: r.take_u32("core redirect penalty")?,
            agen_latency: r.take_u32("core agen latency")?,
            replay_penalty: r.take_u32("core replay penalty")?,
            prefetch: r.take_bool("core prefetch")?,
            l1: CacheConfig::read_state(r)?,
            l2: CacheConfig::read_state(r)?,
            latency: crate::hierarchy::LatencyConfig::read_state(r)?,
        };
        if config.width == 0 || config.alu_units == 0 || config.mem_ports == 0 {
            return Err(r.bad_value("core width/alu/ports must be positive".to_string()));
        }
        if rob_entries == 0 || rob_entries > 1 << 24 {
            return Err(r.bad_value(format!(
                "core rob entries {rob_entries} outside 1..=2^24"
            )));
        }
        Ok(config)
    }
}

impl Snapshot for CoreStats {
    fn write_state(&self, w: &mut SectionWriter) {
        w.put_u64(self.cycles);
        w.put_u64(self.instructions);
        w.put_u64(self.loads);
        w.put_u64(self.branch_mispredicts);
        w.put_u64(self.prefetches);
        w.put_u64(self.l1_hit_rate.to_bits());
        self.pred.write_state(w);
    }
}

impl Restorable for CoreStats {
    fn read_state(r: &mut SectionReader<'_>) -> Result<Self, SnapshotError> {
        let stats = Self {
            cycles: r.take_u64("stats cycles")?,
            instructions: r.take_u64("stats instructions")?,
            loads: r.take_u64("stats loads")?,
            branch_mispredicts: r.take_u64("stats branch mispredicts")?,
            prefetches: r.take_u64("stats prefetches")?,
            l1_hit_rate: f64::from_bits(r.take_u64("stats l1 hit rate")?),
            pred: PredictorStats::read_state(r)?,
        };
        if !stats.l1_hit_rate.is_finite() {
            return Err(r.bad_value("stats l1 hit rate is not finite".to_string()));
        }
        Ok(stats)
    }
}

impl Snapshot for OooCore {
    fn write_state(&self, w: &mut SectionWriter) {
        self.config.write_state(w);
        self.mem.write_state(w);
        self.branch.write_state(w);
        self.fetch_slots.write_state(w);
        self.dispatch_slots.write_state(w);
        self.commit_slots.write_state(w);
        self.alu.write_state(w);
        self.ports.write_state(w);
        for t in self.reg_ready {
            w.put_u64(t);
        }
        // Canonical (sorted) encoding for the store-forwarding map.
        let mut stores: Vec<(u64, u64)> = self.store_ready.iter().map(|(&a, &t)| (a, t)).collect();
        stores.sort_unstable();
        w.put_len(stores.len());
        for (word, ready) in stores {
            w.put_u64(word);
            w.put_u64(ready);
        }
        w.put_len(self.commit_ring.len());
        for &t in &self.commit_ring {
            w.put_u64(t);
        }
        w.put_u64(self.redirect_time);
        w.put_u64(self.last_commit);
        self.control.write_state(w);
        self.stats.write_state(w);
    }
}

impl Restorable for OooCore {
    fn read_state(r: &mut SectionReader<'_>) -> Result<Self, SnapshotError> {
        let config = CoreConfig::read_state(r)?;
        let mem = MemoryHierarchy::read_state(r)?;
        let branch = HybridBranchPredictor::read_state(r)?;
        let fetch_slots = SlotTracker::read_state(r)?;
        let dispatch_slots = SlotTracker::read_state(r)?;
        let commit_slots = SlotTracker::read_state(r)?;
        let alu = SlotTracker::read_state(r)?;
        let ports = SlotTracker::read_state(r)?;
        let mut reg_ready = [0u64; RegId::COUNT];
        for t in &mut reg_ready {
            *t = r.take_u64("register ready time")?;
        }
        let n_stores = r.take_len(16, "store forwarding count")?;
        let mut store_ready = HashMap::with_capacity(n_stores);
        for _ in 0..n_stores {
            let word = r.take_u64("store word address")?;
            let ready = r.take_u64("store ready time")?;
            store_ready.insert(word, ready);
        }
        let ring_len = r.take_len(8, "commit ring length")?;
        let mut commit_ring = VecDeque::with_capacity(ring_len);
        for _ in 0..ring_len {
            commit_ring.push_back(r.take_u64("commit time")?);
        }
        Ok(Self {
            config,
            mem,
            branch,
            fetch_slots,
            dispatch_slots,
            commit_slots,
            alu,
            ports,
            reg_ready,
            store_ready,
            commit_ring,
            redirect_time: r.take_u64("redirect time")?,
            last_commit: r.take_u64("last commit")?,
            control: ControlState::read_state(r)?,
            stats: CoreStats::read_state(r)?,
            // Telemetry is not snapshotted: restores come up with it off.
            obs: Obs::off(),
        })
    }
}

/// Convenience: runs `trace` on a fresh core.
///
/// # Examples
///
/// ```
/// use cap_uarch::core::{run_trace, CoreConfig};
/// use cap_predictor::hybrid::{HybridConfig, HybridPredictor};
/// use cap_trace::suites::Suite;
///
/// let trace = Suite::Int.traces()[0].generate(3_000);
/// let base = run_trace(&trace, &CoreConfig::paper_default(), None, 0);
/// let mut pred = HybridPredictor::new(HybridConfig::paper_default());
/// let with = run_trace(&trace, &CoreConfig::paper_default(), Some(&mut pred), 0);
/// assert!(with.cycles <= base.cycles, "prediction must not slow the core");
/// ```
pub fn run_trace(
    trace: &Trace,
    config: &CoreConfig,
    predictor: Option<&mut dyn AddressPredictor>,
    gap: usize,
) -> CoreStats {
    OooCore::new(*config).run(trace, predictor, gap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cap_predictor::hybrid::{HybridConfig, HybridPredictor};
    use cap_predictor::stride::{StrideParams, StridePredictor};
    use cap_predictor::load_buffer::LoadBufferConfig;
    use cap_trace::builder::TraceBuilder;
    use cap_trace::record::OpLatency;

    fn config() -> CoreConfig {
        CoreConfig::paper_default()
    }

    /// Repeated pointer-chase traversals: within a traversal each load's
    /// address register is the previous load's destination; traversals are
    /// separated by a stretch of non-load glue (epilogue/prologue), which
    /// is what lets pending predictions drain between traversals (§5.2).
    fn chase_trace(n: usize) -> Trace {
        let mut b = TraceBuilder::new();
        let ptr = RegId::new(8);
        let pattern = [0x1000u64, 0x8810, 0x4820, 0x2830, 0x9440, 0x6C50];
        let per_traversal = pattern.len() * 3 + 12;
        for _ in 0..n / per_traversal {
            for (i, &addr) in pattern.iter().enumerate() {
                b.load_dep(0x40, addr, 0, Some(ptr), Some(ptr));
                b.op(
                    0x44,
                    OpLatency::Alu,
                    Some(RegId::new(9)),
                    [Some(ptr), None],
                );
                b.cond_branch(0x48, i + 1 < pattern.len());
            }
            for g in 0..12 {
                b.alu(0x100 + g * 4);
            }
        }
        b.finish()
    }

    fn independent_trace(n: usize) -> Trace {
        let mut b = TraceBuilder::new();
        for i in 0..n {
            b.op(
                0x40 + (i as u64 % 8) * 4,
                OpLatency::Alu,
                None,
                [None, None],
            );
        }
        b.finish()
    }

    #[test]
    fn independent_ops_reach_alu_throughput() {
        // Width is 8 but there are only 6 ALUs: ALU-only code caps at 6.
        let stats = run_trace(&independent_trace(10_000), &config(), None, 0);
        assert!(
            stats.ipc() > 5.9 && stats.ipc() <= 6.05,
            "independent single-cycle ops should run ~6 IPC (ALU-bound), got {:.2}",
            stats.ipc()
        );
    }

    #[test]
    fn alu_capacity_limits_ipc() {
        // Only 6 ALUs: even with width 8, ALU-only code caps at 6 IPC.
        let mut cfg = config();
        cfg.alu_units = 2;
        let stats = run_trace(&independent_trace(10_000), &cfg, None, 0);
        assert!(stats.ipc() <= 2.05, "2 ALUs cap IPC at 2, got {:.2}", stats.ipc());
    }

    #[test]
    fn pointer_chase_is_latency_bound() {
        let stats = run_trace(&chase_trace(5_000), &config(), None, 0);
        // Each load waits for the previous: at least L1 latency + agen
        // cycles per load on the critical path.
        let cycles_per_load = stats.cycles as f64 / stats.loads as f64;
        assert!(
            cycles_per_load > 3.5,
            "dependent loads must serialise, got {cycles_per_load:.2} cycles/load"
        );
    }

    #[test]
    fn telemetry_reconciles_with_core_stats() {
        use cap_predictor::metrics::PredictorStats;
        use std::sync::Arc;

        let trace = chase_trace(20_000);
        let registry = Arc::new(cap_obs::Registry::new());
        let mut pred = HybridPredictor::new(HybridConfig::paper_default());
        pred.set_obs(registry.obs());
        let mut core = OooCore::new(config());
        core.set_obs(registry.obs());
        let stats = core.run(&trace, Some(&mut pred), 0);

        let snap = registry.snapshot();
        // The `pred.*` mirror reads back as the exact same accumulator.
        assert_eq!(PredictorStats::from_obs_snapshot(&snap), stats.pred);
        // Cache counters reconcile with the hierarchy's own hit rate.
        let l1_hit = snap.counter(crate::names::L1_HIT).unwrap_or(0);
        let l1_miss = snap.counter(crate::names::L1_MISS).unwrap_or(0);
        assert!(l1_hit + l1_miss > 0, "timing run must touch the caches");
        let rate = l1_hit as f64 / (l1_hit + l1_miss) as f64;
        assert!((rate - stats.l1_hit_rate).abs() < 1e-12);
        // Occupancy gauges were published and are plausible.
        let l1_live = snap.gauge(crate::names::L1_LIVE_LINES).unwrap_or(-1);
        assert!(l1_live > 0 && l1_live <= 1024, "L1 has 1024 lines, got {l1_live}");
        assert!(snap.gauge(crate::names::ROB_OCCUPANCY).is_some());
    }

    #[test]
    fn address_prediction_speeds_up_pointer_chase() {
        let trace = chase_trace(20_000);
        let base = run_trace(&trace, &config(), None, 0);
        let mut pred = HybridPredictor::new(HybridConfig::paper_default());
        let with = run_trace(&trace, &config(), Some(&mut pred), 0);
        let speedup = with.speedup_over(&base);
        assert!(
            speedup > 1.3,
            "prediction must break the pointer chase: speedup {speedup:.2}"
        );
    }

    #[test]
    fn useless_predictor_does_not_slow_the_core() {
        // A stride predictor on a random chase makes ~no confident
        // predictions; cycles must be ~unchanged.
        use cap_rand::{Rng, SeedableRng};
        let mut rng = cap_rand::rngs::StdRng::seed_from_u64(3);
        let mut b = TraceBuilder::new();
        for _ in 0..5_000 {
            b.load(0x40, (rng.gen::<u32>() as u64) & !3, 0);
        }
        let trace = b.finish();
        let base = run_trace(&trace, &config(), None, 0);
        let mut pred = StridePredictor::new(
            LoadBufferConfig::paper_default(),
            StrideParams::paper_default(),
        );
        let with = run_trace(&trace, &config(), Some(&mut pred), 0);
        let ratio = with.cycles as f64 / base.cycles as f64;
        assert!(
            ratio < 1.02,
            "non-predicting predictor must be ~free, ratio {ratio:.3}"
        );
    }

    #[test]
    fn branch_mispredictions_cost_cycles() {
        use cap_rand::{Rng, SeedableRng};
        let make = |random: bool| {
            let mut rng = cap_rand::rngs::StdRng::seed_from_u64(5);
            let mut b = TraceBuilder::new();
            for i in 0..20_000u64 {
                let taken = if random { rng.gen_bool(0.5) } else { i % 2 == 0 };
                b.cond_branch(0x40, taken);
                b.alu(0x44);
            }
            b.finish()
        };
        let predictable = run_trace(&make(false), &config(), None, 0);
        let random = run_trace(&make(true), &config(), None, 0);
        assert!(
            random.cycles > predictable.cycles * 3 / 2,
            "random branches must cost: {} vs {}",
            random.cycles,
            predictable.cycles
        );
        assert!(random.branch_mispredicts > predictable.branch_mispredicts * 5);
    }

    #[test]
    fn rob_limits_memory_level_parallelism() {
        // Independent cold loads: a bigger ROB overlaps more misses.
        use cap_rand::{Rng, SeedableRng};
        let mut rng = cap_rand::rngs::StdRng::seed_from_u64(7);
        let mut b = TraceBuilder::new();
        for _ in 0..5_000 {
            b.load(0x40, (rng.gen::<u32>() as u64) & !63, 0);
        }
        let trace = b.finish();
        let mut small = config();
        small.rob_entries = 16;
        let big = run_trace(&trace, &config(), None, 0);
        let little = run_trace(&trace, &small, None, 0);
        assert!(
            little.cycles > big.cycles,
            "16-entry ROB must be slower: {} vs {}",
            little.cycles,
            big.cycles
        );
    }

    #[test]
    fn gap_degrades_prediction_benefit() {
        let trace = chase_trace(20_000);
        let base = run_trace(&trace, &config(), None, 0);
        let mut p0 = HybridPredictor::new(HybridConfig::paper_default());
        let imm = run_trace(&trace, &config(), Some(&mut p0), 0);
        let mut p8 = HybridPredictor::new(HybridConfig::paper_pipelined());
        let gapped = run_trace(&trace, &config(), Some(&mut p8), 8);
        let s_imm = imm.speedup_over(&base);
        let s_gap = gapped.speedup_over(&base);
        assert!(
            s_gap <= s_imm + 1e-9,
            "gap must not beat immediate: {s_gap:.3} vs {s_imm:.3}"
        );
        assert!(s_gap > 1.0, "gapped prediction must still help: {s_gap:.3}");
    }

    #[test]
    fn store_to_load_forwarding_respects_data_dependence() {
        // A slow divide produces the stored value; a load of the same
        // address must wait for it, while a load of a different address
        // must not.
        let make = |same_addr: bool| {
            let mut b = TraceBuilder::new();
            let data = RegId::new(10);
            for i in 0..2_000u64 {
                b.op(0x40, OpLatency::Div, Some(data), [Some(data), None]);
                b.store_dep(0x44, 0x1000 + (i % 8) * 64, Some(data), None);
                let load_addr = if same_addr {
                    0x1000 + (i % 8) * 64
                } else {
                    0x9000 + (i % 8) * 64
                };
                b.load_dep(0x48, load_addr, 0, Some(RegId::new(11)), None);
                b.op(0x4C, OpLatency::Alu, Some(RegId::new(12)),
                     [Some(RegId::new(12)), Some(RegId::new(11))]);
            }
            b.finish()
        };
        let dependent = run_trace(&make(true), &config(), None, 0);
        let independent = run_trace(&make(false), &config(), None, 0);
        assert!(
            dependent.cycles > independent.cycles,
            "memory dependence must cost cycles: {} vs {}",
            dependent.cycles,
            independent.cycles
        );
    }

    #[test]
    fn address_prediction_cannot_beat_memory_dependence() {
        // Loads whose data comes from a just-computed store: even a
        // perfect address predictor must not deliver the data before the
        // store's data exists.
        let mut b = TraceBuilder::new();
        let data = RegId::new(10);
        for _ in 0..2_000u64 {
            b.op(0x40, OpLatency::Div, Some(data), [Some(data), None]);
            b.store_dep(0x44, 0x1000, Some(data), None);
            b.load_dep(0x48, 0x1000, 0, Some(RegId::new(11)), None);
            b.op(0x4C, OpLatency::Alu, Some(RegId::new(12)),
                 [Some(RegId::new(12)), Some(RegId::new(11))]);
        }
        let trace = b.finish();
        let base = run_trace(&trace, &config(), None, 0);
        let mut p = HybridPredictor::new(HybridConfig::paper_default());
        let with = run_trace(&trace, &config(), Some(&mut p), 0);
        // The constant-address load is trivially predictable, yet the
        // dependence through memory caps the gain.
        let speedup = with.speedup_over(&base);
        assert!(
            speedup < 1.05,
            "prediction must not break a true memory dependence: {speedup:.3}"
        );
    }

    #[test]
    fn prefetching_improves_l1_hit_rate_on_strides() {
        use cap_rand::{Rng, SeedableRng};
        // Large stride sweep with cold lines + interleaved random loads.
        let mut rng = cap_rand::rngs::StdRng::seed_from_u64(11);
        let mut b = TraceBuilder::new();
        for i in 0..20_000u64 {
            b.load(0x40, 0x10_0000 + i * 64, 0); // one cold line per load
            if i % 4 == 0 {
                b.load(0x44, (rng.gen::<u32>() as u64) & !3, 0);
            }
        }
        let trace = b.finish();
        let mut plain_cfg = config();
        plain_cfg.prefetch = false;
        let mut pf_cfg = config();
        pf_cfg.prefetch = true;
        let mut p1 = HybridPredictor::new(HybridConfig::paper_default());
        let plain = run_trace(&trace, &plain_cfg, Some(&mut p1), 0);
        let mut p2 = HybridPredictor::new(HybridConfig::paper_default());
        let with_pf = run_trace(&trace, &pf_cfg, Some(&mut p2), 0);
        assert!(with_pf.prefetches > 0, "prefetches must be issued");
        assert!(
            with_pf.l1_hit_rate > plain.l1_hit_rate + 0.1,
            "prefetching must lift the stride sweep's hit rate: {:.3} vs {:.3}",
            with_pf.l1_hit_rate,
            plain.l1_hit_rate
        );
    }

    #[test]
    fn stats_count_instructions_and_loads() {
        let stats = run_trace(&chase_trace(120), &config(), None, 0);
        // 120 / 30 = 4 traversals of 30 instructions (6 of them loads).
        assert_eq!(stats.instructions, 120);
        assert_eq!(stats.loads, 24);
        assert!(stats.cycles > 0);
    }
}
