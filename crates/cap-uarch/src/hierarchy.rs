//! The two-level on-chip memory hierarchy (32 KB L1 + 1 MB L2, §4.1).

use crate::cache::{Cache, CacheConfig};
use crate::names;
use cap_obs::Obs;

/// Access latencies of each hierarchy level, in cycles.
///
/// `l1` is the load-to-use latency whose growth motivates the whole paper
/// ("two to five cycles in next-generation processors").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyConfig {
    /// L1 hit latency (load-to-use).
    pub l1: u32,
    /// L2 hit latency.
    pub l2: u32,
    /// Main-memory latency.
    pub memory: u32,
}

impl LatencyConfig {
    /// Latencies representative of the paper's era: 3-cycle L1, 12-cycle
    /// L2, 80-cycle memory.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            l1: 3,
            l2: 12,
            memory: 80,
        }
    }
}

/// The L1+L2 data hierarchy.
///
/// # Examples
///
/// ```
/// use cap_uarch::hierarchy::{LatencyConfig, MemoryHierarchy};
/// let mut mem = MemoryHierarchy::paper_default();
/// let cold = mem.access(0x10_000);
/// let warm = mem.access(0x10_000);
/// assert!(cold > warm);
/// assert_eq!(warm, LatencyConfig::paper_default().l1);
/// ```
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    l1: Cache,
    l2: Cache,
    latency: LatencyConfig,
    obs: Obs,
}

impl MemoryHierarchy {
    /// Builds a hierarchy from explicit configurations.
    #[must_use]
    pub fn new(l1: CacheConfig, l2: CacheConfig, latency: LatencyConfig) -> Self {
        Self {
            l1: Cache::new(l1),
            l2: Cache::new(l2),
            latency,
            obs: Obs::off(),
        }
    }

    /// Attaches a telemetry sink for the `uarch.l1.*` / `uarch.l2.*`
    /// counters (not snapshotted — re-attach after a restore).
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Publishes the occupancy gauges of both cache levels.
    pub fn publish_occupancy(&self) {
        self.obs.gauge(names::L1_LIVE_LINES, self.l1.occupancy() as i64);
        self.obs.gauge(names::L2_LIVE_LINES, self.l2.occupancy() as i64);
    }

    /// The paper's configuration.
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(
            CacheConfig::paper_l1(),
            CacheConfig::paper_l2(),
            LatencyConfig::paper_default(),
        )
    }

    /// Performs one data access and returns its total latency in cycles.
    pub fn access(&mut self, addr: u64) -> u32 {
        if self.l1.access(addr) {
            self.obs.incr(names::L1_HIT);
            self.latency.l1
        } else if self.l2.access(addr) {
            self.obs.incr(names::L1_MISS);
            self.obs.incr(names::L2_HIT);
            self.latency.l2
        } else {
            self.obs.incr(names::L1_MISS);
            self.obs.incr(names::L2_MISS);
            self.latency.memory
        }
    }

    /// The configured latencies.
    #[must_use]
    pub fn latency(&self) -> &LatencyConfig {
        &self.latency
    }

    /// L1 hit rate so far.
    #[must_use]
    pub fn l1_hit_rate(&self) -> f64 {
        self.l1.hit_rate()
    }

    /// L2 hit rate so far (of L1 misses).
    #[must_use]
    pub fn l2_hit_rate(&self) -> f64 {
        self.l2.hit_rate()
    }
}

use cap_snapshot::{Restorable, SectionReader, SectionWriter, Snapshot, SnapshotError};

impl Snapshot for LatencyConfig {
    fn write_state(&self, w: &mut SectionWriter) {
        w.put_u32(self.l1);
        w.put_u32(self.l2);
        w.put_u32(self.memory);
    }
}

impl Restorable for LatencyConfig {
    fn read_state(r: &mut SectionReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            l1: r.take_u32("l1 latency")?,
            l2: r.take_u32("l2 latency")?,
            memory: r.take_u32("memory latency")?,
        })
    }
}

impl Snapshot for MemoryHierarchy {
    fn write_state(&self, w: &mut SectionWriter) {
        self.l1.write_state(w);
        self.l2.write_state(w);
        self.latency.write_state(w);
    }
}

impl Restorable for MemoryHierarchy {
    fn read_state(r: &mut SectionReader<'_>) -> Result<Self, SnapshotError> {
        // Telemetry is not snapshotted: restores come up with it off.
        Ok(Self {
            l1: Cache::read_state(r)?,
            l2: Cache::read_state(r)?,
            latency: LatencyConfig::read_state(r)?,
            obs: Obs::off(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_classes_ordered() {
        let mut m = MemoryHierarchy::paper_default();
        let cold = m.access(0x4_0000);
        assert_eq!(cold, 80, "cold access goes to memory");
        let l1 = m.access(0x4_0000);
        assert_eq!(l1, 3);
    }

    #[test]
    fn l2_serves_l1_capacity_misses() {
        let mut m = MemoryHierarchy::paper_default();
        // Walk 64KB (2x L1 capacity, fits easily in L2) twice.
        for _ in 0..2 {
            for i in 0..2048u64 {
                m.access(i * 32);
            }
        }
        // Second pass: L1 thrashy, L2 should hit.
        let lat = m.access(0);
        assert!(lat == 12 || lat == 3, "second-pass access must not go to memory");
    }

    #[test]
    fn hit_rates_exposed() {
        let mut m = MemoryHierarchy::paper_default();
        for _ in 0..100 {
            m.access(0x100);
        }
        assert!(m.l1_hit_rate() > 0.9);
    }
}
