//! The `cache-level` backend: per-PC cache-level prediction layered on
//! the enhanced stride address predictor.
//!
//! Jalili & Erez ("Reducing Load Latency with Cache Level Prediction")
//! observe that most loads hit the same hierarchy level they hit last
//! time the same PC executed, so a small PC-indexed table of saturating
//! level predictions lets the core schedule a load's consumers against
//! the *predicted* latency instead of always assuming an L1 hit. This
//! backend grafts that idea onto the CAP substrate: addresses come from
//! the paper's enhanced stride component, the ground-truth level comes
//! from running every committed address through the
//! [`MemoryHierarchy`] model, and the per-PC table tracks which of
//! L1 / L2 / memory the load actually hit. Accuracy is exported via the
//! `backend.cache_level.*` counters.

use crate::hierarchy::MemoryHierarchy;
use crate::names;
use cap_obs::Obs;
use cap_predictor::load_buffer::{LoadBuffer, LoadBufferConfig};
use cap_predictor::stride::{StrideParams, StridePredictor};
use cap_predictor::types::{AddressPredictor, LoadContext, Prediction};
use cap_snapshot::{Restorable, SectionReader, SectionWriter, Snapshot, SnapshotError};

/// Hierarchy levels the table can predict.
pub const LEVEL_L1: u8 = 0;
/// The L2 level.
pub const LEVEL_L2: u8 = 1;
/// Main memory.
pub const LEVEL_MEMORY: u8 = 2;

const LEVEL_MASK: u8 = 0b11;
const CONF_SHIFT: u8 = 2;
const CONF_MAX: u8 = 3;

/// Configuration of the cache-level backend.
#[derive(Debug, Clone, Copy)]
pub struct CacheLevelConfig {
    /// Load-buffer geometry of the inner stride predictor.
    pub lb: LoadBufferConfig,
    /// Stride-component parameters.
    pub stride: StrideParams,
    /// Entries in the PC-indexed level table (power of two).
    pub table_entries: usize,
}

impl CacheLevelConfig {
    /// Paper-default stride predictor plus a 1K-entry level table over
    /// the paper's 32 KB L1 / 1 MB L2 hierarchy.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            lb: LoadBufferConfig::paper_default(),
            stride: StrideParams::paper_default(),
            table_entries: 1024,
        }
    }
}

/// Stride address prediction + per-PC cache-level prediction.
#[derive(Debug)]
pub struct CacheLevelPredictor {
    stride: StridePredictor,
    hier: MemoryHierarchy,
    /// Per-PC packed entries: level in bits 0–1, confidence in bits 2–3.
    levels: Vec<u8>,
    level_hits: u64,
    level_misses: u64,
    obs: Obs,
}

impl CacheLevelPredictor {
    /// Builds the backend.
    ///
    /// # Panics
    ///
    /// Panics if `table_entries` is not a non-zero power of two.
    #[must_use]
    pub fn new(config: CacheLevelConfig) -> Self {
        assert!(
            config.table_entries.is_power_of_two(),
            "level table entries must be a power of two"
        );
        Self {
            stride: StridePredictor::new(config.lb, config.stride),
            hier: MemoryHierarchy::paper_default(),
            levels: vec![0; config.table_entries],
            level_hits: 0,
            level_misses: 0,
            obs: Obs::off(),
        }
    }

    fn index(&self, ip: u64) -> usize {
        ((ip >> 2) ^ (ip >> 12)) as usize & (self.levels.len() - 1)
    }

    /// The level the table currently predicts for `ip`.
    #[must_use]
    pub fn predicted_level(&self, ip: u64) -> u8 {
        self.levels[self.index(ip)] & LEVEL_MASK
    }

    /// Correct level predictions so far.
    #[must_use]
    pub fn level_hits(&self) -> u64 {
        self.level_hits
    }

    /// Wrong level predictions so far.
    #[must_use]
    pub fn level_misses(&self) -> u64 {
        self.level_misses
    }

    /// The hierarchy model producing ground-truth levels.
    #[must_use]
    pub fn hierarchy(&self) -> &MemoryHierarchy {
        &self.hier
    }

    /// The packed per-PC level table (level bits 0–1, confidence 2–3).
    #[must_use]
    pub fn level_table(&self) -> &[u8] {
        &self.levels
    }

    /// Inner load buffer (fault-injection surface).
    #[must_use]
    pub fn load_buffer(&self) -> &LoadBuffer {
        self.stride.load_buffer()
    }

    /// Mutable inner load buffer (fault-injection surface).
    pub fn load_buffer_mut(&mut self) -> &mut LoadBuffer {
        self.stride.load_buffer_mut()
    }

    fn train_level(&mut self, ip: u64, actual_level: u8) {
        let idx = self.index(ip);
        let entry = self.levels[idx];
        let (level, conf) = (entry & LEVEL_MASK, entry >> CONF_SHIFT);
        if level == actual_level {
            self.level_hits += 1;
            self.obs.incr(names::CLP_LEVEL_HIT);
            self.levels[idx] = level | (conf.saturating_add(1).min(CONF_MAX) << CONF_SHIFT);
        } else {
            self.level_misses += 1;
            self.obs.incr(names::CLP_LEVEL_MISS);
            self.levels[idx] = if conf == 0 {
                // Confidence exhausted: adopt the observed level.
                actual_level
            } else {
                level | ((conf - 1) << CONF_SHIFT)
            };
        }
    }
}

impl AddressPredictor for CacheLevelPredictor {
    fn predict(&mut self, ctx: &LoadContext) -> Prediction {
        self.stride.predict(ctx)
    }

    fn update(&mut self, ctx: &LoadContext, actual: u64, pred: &Prediction) {
        self.stride.update(ctx, actual, pred);
        let latency = self.hier.access(actual);
        let lat = *self.hier.latency();
        let actual_level = if latency == lat.l1 {
            LEVEL_L1
        } else if latency == lat.l2 {
            LEVEL_L2
        } else {
            LEVEL_MEMORY
        };
        self.train_level(ctx.ip, actual_level);
    }

    fn name(&self) -> &'static str {
        "cache-level"
    }

    fn set_obs(&mut self, obs: Obs) {
        self.stride.set_obs(obs.clone());
        self.hier.set_obs(obs.clone());
        self.obs = obs;
    }
}

impl Snapshot for CacheLevelPredictor {
    fn write_state(&self, w: &mut SectionWriter) {
        self.stride.write_state(w);
        self.hier.write_state(w);
        w.put_len(self.levels.len());
        w.put_raw(&self.levels);
        w.put_u64(self.level_hits);
        w.put_u64(self.level_misses);
    }
}

impl Restorable for CacheLevelPredictor {
    fn read_state(r: &mut SectionReader<'_>) -> Result<Self, SnapshotError> {
        let stride = StridePredictor::read_state(r)?;
        let hier = MemoryHierarchy::read_state(r)?;
        let n = r.take_len(1, "level table entries")?;
        if n == 0 || !n.is_power_of_two() {
            return Err(r.bad_value(format!("level table entries {n} not a power of two")));
        }
        let levels = r.take_raw(n, "level table")?.to_vec();
        for (i, &e) in levels.iter().enumerate() {
            if e >> (2 * CONF_SHIFT) != 0 || (e & LEVEL_MASK) > LEVEL_MEMORY {
                return Err(r.bad_value(format!("level table entry {i} malformed: {e:#04x}")));
            }
        }
        Ok(Self {
            stride,
            hier,
            levels,
            level_hits: r.take_u64("level hits")?,
            level_misses: r.take_u64("level misses")?,
            obs: Obs::off(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(p: &mut CacheLevelPredictor, ip: u64, addrs: impl IntoIterator<Item = u64>) {
        for a in addrs {
            let ctx = LoadContext::new(ip, 8, 0);
            let pred = p.predict(&ctx);
            p.update(&ctx, a, &pred);
        }
    }

    #[test]
    fn learns_l1_resident_loads() {
        let mut p = CacheLevelPredictor::new(CacheLevelConfig::paper_default());
        // The same small working set over and over: after the cold miss
        // everything is an L1 hit, and the table should converge on L1.
        drive(&mut p, 0x400, (0..40).map(|i| 0x1000 + (i % 4) * 8));
        assert_eq!(p.predicted_level(0x400), LEVEL_L1);
        assert!(p.level_hits() > p.level_misses());
    }

    #[test]
    fn memory_streaming_converges_on_memory_level() {
        let mut p = CacheLevelPredictor::new(CacheLevelConfig::paper_default());
        // Stride through 2 MB-spaced lines: every access leaves both
        // caches cold, so ground truth is always memory.
        drive(&mut p, 0x500, (0..32).map(|i| i * 0x20_0000));
        assert_eq!(p.predicted_level(0x500), LEVEL_MEMORY);
    }

    #[test]
    fn address_stream_still_comes_from_stride() {
        let mut p = CacheLevelPredictor::new(CacheLevelConfig::paper_default());
        drive(&mut p, 0x600, (0..32).map(|i| 0x9000 + i * 8));
        let ctx = LoadContext::new(0x600, 8, 0);
        let pred = p.predict(&ctx);
        assert_eq!(pred.addr, Some(0x9000 + 32 * 8));
    }

    #[test]
    fn snapshot_roundtrip_preserves_behavior() {
        let mut p = CacheLevelPredictor::new(CacheLevelConfig::paper_default());
        drive(&mut p, 0x400, (0..40).map(|i| 0x1000 + (i % 4) * 8));
        let mut w = SectionWriter::new();
        p.write_state(&mut w);
        let bytes = w.into_bytes();
        let mut r = SectionReader::new(&bytes, "cache-level");
        let mut back = CacheLevelPredictor::read_state(&mut r).expect("restore");
        r.finish().expect("no trailing bytes");
        assert_eq!(back.predicted_level(0x400), p.predicted_level(0x400));
        assert_eq!(back.level_hits(), p.level_hits());
        let ctx = LoadContext::new(0x400, 8, 0);
        assert_eq!(back.predict(&ctx).addr, p.predict(&ctx).addr);
    }
}
