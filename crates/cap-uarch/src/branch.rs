//! Branch predictors: bimodal, gshare, and the hybrid used by the paper's
//! simulated processor ("a hybrid branch predictor", §4.1).

/// A 2-bit saturating counter used by all branch predictor tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Counter2(u8);

impl Counter2 {
    const WEAKLY_TAKEN: Counter2 = Counter2(2);

    fn predict(self) -> bool {
        self.0 >= 2
    }

    fn update(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }
}

/// A direction predictor for conditional branches.
pub trait BranchPredictor {
    /// Predicts the direction of the branch at `ip` under the global
    /// history `ghr`.
    fn predict(&self, ip: u64, ghr: u64) -> bool;
    /// Trains with the architectural outcome.
    fn update(&mut self, ip: u64, ghr: u64, taken: bool);
}

/// A per-IP bimodal table of 2-bit counters.
#[derive(Debug, Clone)]
pub struct Bimodal {
    table: Vec<Counter2>,
}

impl Bimodal {
    /// Creates the table.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        Self {
            table: vec![Counter2::WEAKLY_TAKEN; entries],
        }
    }

    fn index(&self, ip: u64) -> usize {
        ((ip >> 2) as usize) & (self.table.len() - 1)
    }
}

impl BranchPredictor for Bimodal {
    fn predict(&self, ip: u64, _ghr: u64) -> bool {
        self.table[self.index(ip)].predict()
    }

    fn update(&mut self, ip: u64, _ghr: u64, taken: bool) {
        let i = self.index(ip);
        self.table[i].update(taken);
    }
}

/// A gshare predictor (IP ⊕ GHR indexed 2-bit counters).
#[derive(Debug, Clone)]
pub struct Gshare {
    table: Vec<Counter2>,
    history_bits: u32,
}

impl Gshare {
    /// Creates the table.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    #[must_use]
    pub fn new(entries: usize, history_bits: u32) -> Self {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        Self {
            table: vec![Counter2::WEAKLY_TAKEN; entries],
            history_bits,
        }
    }

    fn index(&self, ip: u64, ghr: u64) -> usize {
        let hist = ghr & ((1u64 << self.history_bits) - 1);
        (((ip >> 2) ^ hist) as usize) & (self.table.len() - 1)
    }
}

impl BranchPredictor for Gshare {
    fn predict(&self, ip: u64, ghr: u64) -> bool {
        self.table[self.index(ip, ghr)].predict()
    }

    fn update(&mut self, ip: u64, ghr: u64, taken: bool) {
        let i = self.index(ip, ghr);
        self.table[i].update(taken);
    }
}

/// A hybrid bimodal/gshare predictor with a per-IP choice table.
///
/// # Examples
///
/// ```
/// use cap_uarch::branch::{BranchPredictor, HybridBranchPredictor};
/// let mut p = HybridBranchPredictor::paper_default();
/// for _ in 0..8 {
///     p.update(0x40, 0, true);
/// }
/// assert!(p.predict(0x40, 0));
/// ```
#[derive(Debug, Clone)]
pub struct HybridBranchPredictor {
    bimodal: Bimodal,
    gshare: Gshare,
    choice: Vec<Counter2>,
}

impl HybridBranchPredictor {
    /// Creates the predictor.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    #[must_use]
    pub fn new(entries: usize, history_bits: u32) -> Self {
        Self {
            bimodal: Bimodal::new(entries),
            gshare: Gshare::new(entries, history_bits),
            choice: vec![Counter2::WEAKLY_TAKEN; entries],
        }
    }

    /// 4K-entry tables with 12 bits of global history.
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(4096, 12)
    }

    fn choice_index(&self, ip: u64) -> usize {
        ((ip >> 2) as usize) & (self.choice.len() - 1)
    }
}

impl BranchPredictor for HybridBranchPredictor {
    fn predict(&self, ip: u64, ghr: u64) -> bool {
        // Choice counter >= 2 selects gshare.
        if self.choice[self.choice_index(ip)].predict() {
            self.gshare.predict(ip, ghr)
        } else {
            self.bimodal.predict(ip, ghr)
        }
    }

    fn update(&mut self, ip: u64, ghr: u64, taken: bool) {
        let b = self.bimodal.predict(ip, ghr);
        let g = self.gshare.predict(ip, ghr);
        // Train the chooser toward the component that was right.
        if b != g {
            let i = self.choice_index(ip);
            self.choice[i].update(g == taken);
        }
        self.bimodal.update(ip, ghr, taken);
        self.gshare.update(ip, ghr, taken);
    }
}

use cap_snapshot::{Restorable, SectionReader, SectionWriter, Snapshot, SnapshotError};

fn write_counters(table: &[Counter2], w: &mut SectionWriter) {
    w.put_len(table.len());
    for c in table {
        w.put_u8(c.0);
    }
}

fn read_counters(r: &mut SectionReader<'_>) -> Result<Vec<Counter2>, SnapshotError> {
    let len = r.take_len(1, "branch counter table length")?;
    if len == 0 || !len.is_power_of_two() {
        return Err(r.bad_value(format!("branch table length {len} not a power of two")));
    }
    let mut table = Vec::with_capacity(len);
    for _ in 0..len {
        let v = r.take_u8("branch counter")?;
        if v > 3 {
            return Err(r.bad_value(format!("2-bit branch counter holds {v}")));
        }
        table.push(Counter2(v));
    }
    Ok(table)
}

impl Snapshot for Bimodal {
    fn write_state(&self, w: &mut SectionWriter) {
        write_counters(&self.table, w);
    }
}

impl Restorable for Bimodal {
    fn read_state(r: &mut SectionReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            table: read_counters(r)?,
        })
    }
}

impl Snapshot for Gshare {
    fn write_state(&self, w: &mut SectionWriter) {
        write_counters(&self.table, w);
        w.put_u32(self.history_bits);
    }
}

impl Restorable for Gshare {
    fn read_state(r: &mut SectionReader<'_>) -> Result<Self, SnapshotError> {
        let table = read_counters(r)?;
        let history_bits = r.take_u32("gshare history bits")?;
        // index() shifts 1u64 by this amount.
        if history_bits > 63 {
            return Err(r.bad_value(format!("gshare history bits {history_bits} above 63")));
        }
        Ok(Self {
            table,
            history_bits,
        })
    }
}

impl Snapshot for HybridBranchPredictor {
    fn write_state(&self, w: &mut SectionWriter) {
        self.bimodal.write_state(w);
        self.gshare.write_state(w);
        write_counters(&self.choice, w);
    }
}

impl Restorable for HybridBranchPredictor {
    fn read_state(r: &mut SectionReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            bimodal: Bimodal::read_state(r)?,
            gshare: Gshare::read_state(r)?,
            choice: read_counters(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bimodal_learns_bias() {
        let mut p = Bimodal::new(64);
        for _ in 0..4 {
            p.update(0x40, 0, false);
        }
        assert!(!p.predict(0x40, 0));
        for _ in 0..4 {
            p.update(0x40, 0, true);
        }
        assert!(p.predict(0x40, 0));
    }

    #[test]
    fn gshare_learns_history_correlated_branch() {
        let mut p = Gshare::new(256, 4);
        // Branch taken iff last outcome bit of ghr is 1.
        for i in 0..200u64 {
            let ghr = i % 2;
            p.update(0x40, ghr, ghr == 1);
        }
        assert!(p.predict(0x40, 1));
        assert!(!p.predict(0x40, 0));
    }

    #[test]
    fn bimodal_cannot_learn_alternating_pattern() {
        let mut p = Bimodal::new(64);
        let mut correct = 0;
        for i in 0..200u64 {
            let taken = i % 2 == 0;
            if p.predict(0x40, 0) == taken {
                correct += 1;
            }
            p.update(0x40, 0, taken);
        }
        assert!(correct <= 110, "alternating defeats bimodal ({correct}/200)");
    }

    #[test]
    fn hybrid_matches_better_component() {
        // History-correlated branch: hybrid must converge to gshare-level
        // accuracy.
        let run = |p: &mut dyn BranchPredictor| {
            let mut correct = 0;
            for i in 0..1000u64 {
                let ghr = i & 0xF;
                let taken = (ghr & 1) == 1;
                if p.predict(0x40, ghr) == taken {
                    correct += 1;
                }
                p.update(0x40, ghr, taken);
            }
            correct
        };
        let mut hybrid = HybridBranchPredictor::paper_default();
        let mut bimodal = Bimodal::new(4096);
        let h = run(&mut hybrid);
        let b = run(&mut bimodal);
        assert!(h > b, "hybrid {h} must beat bimodal {b}");
        assert!(h > 900);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_entries_rejected() {
        let _ = Bimodal::new(100);
    }
}
