//! Per-cycle resource capacity tracking for the timestamp-based core.
//!
//! The timing model assigns each instruction timestamps (fetch, dispatch,
//! issue, complete, commit) subject to structural limits: fetch width,
//! dispatch width, functional units, cache ports, commit width. A
//! [`SlotTracker`] answers "what is the first cycle at or after `t` with a
//! free slot?" and books it.

use std::collections::HashMap;

/// Books up to `width` events per cycle.
///
/// # Examples
///
/// ```
/// use cap_uarch::capacity::SlotTracker;
/// let mut ports = SlotTracker::new(2);
/// assert_eq!(ports.alloc(10), 10);
/// assert_eq!(ports.alloc(10), 10);
/// assert_eq!(ports.alloc(10), 11, "third access spills to the next cycle");
/// ```
#[derive(Debug, Clone)]
pub struct SlotTracker {
    width: u32,
    used: HashMap<u64, u32>,
    /// Cycles below this bound can no longer be requested (program order
    /// guarantees monotone dispatch); used for pruning.
    frontier: u64,
}

impl SlotTracker {
    /// Prune when the map exceeds this many entries.
    const PRUNE_THRESHOLD: usize = 1 << 16;

    /// Creates a tracker with `width` slots per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    #[must_use]
    pub fn new(width: u32) -> Self {
        assert!(width > 0, "width must be positive");
        Self {
            width,
            used: HashMap::new(),
            frontier: 0,
        }
    }

    /// Books one slot at the first cycle `>= at` with spare capacity and
    /// returns that cycle.
    pub fn alloc(&mut self, at: u64) -> u64 {
        let mut cycle = at.max(self.frontier);
        loop {
            let used = self.used.entry(cycle).or_insert(0);
            if *used < self.width {
                *used += 1;
                return cycle;
            }
            cycle += 1;
        }
    }

    /// Declares that no future request will target a cycle below `bound`,
    /// allowing stale bookings to be discarded.
    pub fn retire_below(&mut self, bound: u64) {
        if bound > self.frontier {
            self.frontier = bound;
            if self.used.len() > Self::PRUNE_THRESHOLD {
                let frontier = self.frontier;
                self.used.retain(|&c, _| c >= frontier);
            }
        }
    }

    /// The tracker's per-cycle width.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }
}

use cap_snapshot::{Restorable, SectionReader, SectionWriter, Snapshot, SnapshotError};

impl Snapshot for SlotTracker {
    fn write_state(&self, w: &mut SectionWriter) {
        w.put_u32(self.width);
        w.put_u64(self.frontier);
        // HashMap iteration order is unspecified: sort for a canonical
        // encoding so identical states produce identical bytes.
        let mut bookings: Vec<(u64, u32)> = self.used.iter().map(|(&c, &n)| (c, n)).collect();
        bookings.sort_unstable();
        w.put_len(bookings.len());
        for (cycle, used) in bookings {
            w.put_u64(cycle);
            w.put_u32(used);
        }
    }
}

impl Restorable for SlotTracker {
    fn read_state(r: &mut SectionReader<'_>) -> Result<Self, SnapshotError> {
        let width = r.take_u32("slot tracker width")?;
        if width == 0 {
            return Err(r.bad_value("slot tracker width is zero".to_string()));
        }
        let frontier = r.take_u64("slot tracker frontier")?;
        let len = r.take_len(12, "slot tracker booking count")?;
        let mut used = HashMap::with_capacity(len);
        for _ in 0..len {
            let cycle = r.take_u64("slot tracker cycle")?;
            let count = r.take_u32("slot tracker booking")?;
            used.insert(cycle, count);
        }
        Ok(Self {
            width,
            used,
            frontier,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialises_beyond_width() {
        let mut t = SlotTracker::new(3);
        let cycles: Vec<u64> = (0..7).map(|_| t.alloc(5)).collect();
        assert_eq!(cycles, vec![5, 5, 5, 6, 6, 6, 7]);
    }

    #[test]
    fn later_requests_unaffected_by_earlier_bookings() {
        let mut t = SlotTracker::new(1);
        assert_eq!(t.alloc(3), 3);
        assert_eq!(t.alloc(10), 10);
        assert_eq!(t.alloc(3), 4);
    }

    #[test]
    fn frontier_floors_requests() {
        let mut t = SlotTracker::new(1);
        t.retire_below(100);
        assert_eq!(t.alloc(5), 100);
    }

    #[test]
    fn pruning_preserves_behaviour_above_frontier() {
        let mut t = SlotTracker::new(1);
        for i in 0..(SlotTracker::PRUNE_THRESHOLD as u64 + 10) {
            t.alloc(i);
        }
        t.alloc(2_000_000);
        t.retire_below(1_000_000); // triggers pruning
        assert_eq!(t.alloc(2_000_000), 2_000_001, "booking above frontier kept");
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_rejected() {
        let _ = SlotTracker::new(0);
    }
}
