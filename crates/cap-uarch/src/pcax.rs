//! The `pcax` backend: PC-indexed translation assist driven by the
//! predicted address stream.
//!
//! Murthy & Sohi's PCAX scheme indexes the translation machinery by
//! load PC so address translation can start before the effective
//! address is computed. This backend models the assist on the CAP
//! substrate: the enhanced stride component produces a predicted base
//! address per PC, and every such prediction pre-warms the modeled
//! [`Tlb`] ([`Tlb::prewarm`]) so the demand translation at commit time
//! finds the entry resident. Assist effectiveness is exported through
//! `backend.pcax.assist` plus the `uarch.tlb.*` counters (in
//! particular `uarch.tlb.prewarm_hit`, demand hits served by a
//! still-warm speculative install).

use crate::names;
use crate::tlb::{Tlb, TlbConfig};
use cap_obs::Obs;
use cap_predictor::load_buffer::{LoadBuffer, LoadBufferConfig};
use cap_predictor::stride::{StrideParams, StridePredictor};
use cap_predictor::types::{AddressPredictor, LoadContext, Prediction};
use cap_snapshot::{Restorable, SectionReader, SectionWriter, Snapshot, SnapshotError};

/// Configuration of the PCAX backend.
#[derive(Debug, Clone, Copy)]
pub struct PcaxConfig {
    /// Load-buffer geometry of the inner stride predictor.
    pub lb: LoadBufferConfig,
    /// Stride-component parameters.
    pub stride: StrideParams,
    /// Geometry of the modeled TLB the assist pre-warms.
    pub tlb: TlbConfig,
}

impl PcaxConfig {
    /// Paper-default stride predictor over a 64-entry, 4-way DTLB.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            lb: LoadBufferConfig::paper_default(),
            stride: StrideParams::paper_default(),
            tlb: TlbConfig::paper_default(),
        }
    }
}

/// Stride address prediction + TLB pre-warming translation assist.
#[derive(Debug)]
pub struct PcaxPredictor {
    stride: StridePredictor,
    tlb: Tlb,
    assists: u64,
    obs: Obs,
}

impl PcaxPredictor {
    /// Builds the backend.
    ///
    /// # Panics
    ///
    /// Panics if the TLB geometry is inconsistent.
    #[must_use]
    pub fn new(config: PcaxConfig) -> Self {
        Self {
            stride: StridePredictor::new(config.lb, config.stride),
            tlb: Tlb::new(config.tlb),
            assists: 0,
            obs: Obs::off(),
        }
    }

    /// Speculative TLB installs issued off predicted addresses.
    #[must_use]
    pub fn assists(&self) -> u64 {
        self.assists
    }

    /// The modeled TLB.
    #[must_use]
    pub fn tlb(&self) -> &Tlb {
        &self.tlb
    }

    /// Inner load buffer (fault-injection surface).
    #[must_use]
    pub fn load_buffer(&self) -> &LoadBuffer {
        self.stride.load_buffer()
    }

    /// Mutable inner load buffer (fault-injection surface).
    pub fn load_buffer_mut(&mut self) -> &mut LoadBuffer {
        self.stride.load_buffer_mut()
    }
}

impl AddressPredictor for PcaxPredictor {
    fn predict(&mut self, ctx: &LoadContext) -> Prediction {
        let pred = self.stride.predict(ctx);
        // Any predicted address is worth a translation pre-warm: the
        // install is harmless when wrong (it only shifts LRU order) and
        // hides the TLB-miss latency when right.
        if let Some(addr) = pred.addr {
            if self.tlb.prewarm(addr) {
                self.assists += 1;
                self.obs.incr(names::PCAX_ASSIST);
            }
        }
        pred
    }

    fn update(&mut self, ctx: &LoadContext, actual: u64, pred: &Prediction) {
        self.stride.update(ctx, actual, pred);
        self.tlb.access(actual);
    }

    fn name(&self) -> &'static str {
        "pcax"
    }

    fn set_obs(&mut self, obs: Obs) {
        self.stride.set_obs(obs.clone());
        self.tlb.set_obs(obs.clone());
        self.obs = obs;
    }
}

impl Snapshot for PcaxPredictor {
    fn write_state(&self, w: &mut SectionWriter) {
        self.stride.write_state(w);
        self.tlb.write_state(w);
        w.put_u64(self.assists);
    }
}

impl Restorable for PcaxPredictor {
    fn read_state(r: &mut SectionReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            stride: StridePredictor::read_state(r)?,
            tlb: Tlb::read_state(r)?,
            assists: r.take_u64("pcax assists")?,
            obs: Obs::off(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(p: &mut PcaxPredictor, ip: u64, addrs: impl IntoIterator<Item = u64>) {
        for a in addrs {
            let ctx = LoadContext::new(ip, 8, 0);
            let pred = p.predict(&ctx);
            p.update(&ctx, a, &pred);
        }
    }

    #[test]
    fn page_crossing_stride_prewarms_ahead() {
        let mut p = PcaxPredictor::new(PcaxConfig::paper_default());
        // A 1 KB stride crosses a 4 KB page every fourth load, so a
        // correct prediction pre-warms the next page before the demand
        // access arrives.
        drive(&mut p, 0x400, (0..64).map(|i| 0x10_0000 + i * 0x400));
        assert!(p.assists() > 0, "predicted addresses must issue assists");
        assert!(
            p.tlb().prewarm_hits() > 0,
            "some demand accesses must land on pre-warmed entries"
        );
    }

    #[test]
    fn resident_pages_issue_no_assists() {
        let mut p = PcaxPredictor::new(PcaxConfig::paper_default());
        // All loads inside one page: after the first fill the predicted
        // address is always resident and nothing new is installed.
        drive(&mut p, 0x500, (0..64).map(|i| 0x20_0000 + (i % 16) * 8));
        assert!(p.tlb().hits() > 0);
        assert!(p.assists() <= 1, "a resident page needs no assist");
    }

    #[test]
    fn snapshot_roundtrip_preserves_assist_state() {
        let mut p = PcaxPredictor::new(PcaxConfig::paper_default());
        drive(&mut p, 0x400, (0..64).map(|i| 0x10_0000 + i * 0x400));
        let mut w = SectionWriter::new();
        p.write_state(&mut w);
        let bytes = w.into_bytes();
        let mut r = SectionReader::new(&bytes, "pcax");
        let mut back = PcaxPredictor::read_state(&mut r).expect("restore");
        r.finish().expect("no trailing bytes");
        assert_eq!(back.assists(), p.assists());
        assert_eq!(back.tlb().prewarm_hits(), p.tlb().prewarm_hits());
        let ctx = LoadContext::new(0x400, 8, 0);
        assert_eq!(back.predict(&ctx).addr, p.predict(&ctx).addr);
    }
}
