//! A set-associative cache model with LRU replacement.
//!
//! The timing core only needs hit/miss classification per access — data
//! movement is not modelled. Write misses allocate (write-allocate), which
//! matches the inclusive write-back hierarchies of the era the paper
//! simulates.

/// Configuration of a [`Cache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
    /// Associativity.
    pub assoc: usize,
}

impl CacheConfig {
    /// The paper's L1 data cache: 32 KB, 32-byte lines, 4-way.
    #[must_use]
    pub fn paper_l1() -> Self {
        Self {
            size_bytes: 32 * 1024,
            line_bytes: 32,
            assoc: 4,
        }
    }

    /// The paper's L2 cache: 1 MB, 64-byte lines, 8-way.
    #[must_use]
    pub fn paper_l2() -> Self {
        Self {
            size_bytes: 1024 * 1024,
            line_bytes: 64,
            assoc: 8,
        }
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.line_bytes * self.assoc)
    }

    fn validate(&self) {
        assert!(self.line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(self.assoc >= 1, "associativity must be at least 1");
        assert!(
            self.size_bytes.is_multiple_of(self.line_bytes * self.assoc),
            "capacity must be divisible by line size x associativity"
        );
        assert!(self.sets().is_power_of_two(), "set count must be a power of two");
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    lru: u64,
    valid: bool,
}

/// A set-associative, LRU cache.
///
/// # Examples
///
/// ```
/// use cap_uarch::cache::{Cache, CacheConfig};
/// let mut l1 = Cache::new(CacheConfig::paper_l1());
/// assert!(!l1.access(0x1000)); // cold miss
/// assert!(l1.access(0x1000));  // hit
/// assert!(l1.access(0x1004));  // same line
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    lines: Vec<Line>,
    tick: u64,
    hits: u64,
    misses: u64,
    /// Valid lines, tracked incrementally (derived from `lines`, so it is
    /// recomputed on restore rather than snapshotted).
    live: u64,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent.
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        config.validate();
        Self {
            lines: vec![
                Line {
                    tag: 0,
                    lru: 0,
                    valid: false
                };
                config.sets() * config.assoc
            ],
            config,
            tick: 0,
            hits: 0,
            misses: 0,
            live: 0,
        }
    }

    /// The cache's configuration.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Performs one access; returns `true` on hit. Misses allocate.
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let line_addr = addr / self.config.line_bytes as u64;
        let set = (line_addr as usize) & (self.config.sets() - 1);
        let tag = line_addr >> self.config.sets().trailing_zeros();
        let base = set * self.config.assoc;
        let ways = &mut self.lines[base..base + self.config.assoc];
        if let Some(line) = ways.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = self.tick;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        // Victim: the invalid or least-recently-used way. A (config-
        // impossible) zero-way set yields no victim rather than a panic.
        if let Some(victim) = ways
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru } else { 0 })
        {
            if !victim.valid {
                self.live += 1;
            }
            *victim = Line {
                tag,
                lru: self.tick,
                valid: true,
            };
        }
        false
    }

    /// Number of valid lines (occupancy gauge).
    #[must_use]
    pub fn occupancy(&self) -> u64 {
        self.live
    }

    /// Hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate over all accesses (0 when no accesses yet).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

use cap_snapshot::{Restorable, SectionReader, SectionWriter, Snapshot, SnapshotError};

impl Snapshot for CacheConfig {
    fn write_state(&self, w: &mut SectionWriter) {
        w.put_len(self.size_bytes);
        w.put_len(self.line_bytes);
        w.put_len(self.assoc);
    }
}

impl Restorable for CacheConfig {
    fn read_state(r: &mut SectionReader<'_>) -> Result<Self, SnapshotError> {
        let size_bytes = r.take_u64("cache size bytes")?;
        let line_bytes = r.take_u64("cache line bytes")?;
        let assoc = r.take_u64("cache associativity")?;
        // Mirror CacheConfig::validate without panics, with an allocation
        // ceiling on the total line count.
        if line_bytes == 0 || !line_bytes.is_power_of_two() {
            return Err(r.bad_value(format!("cache line bytes {line_bytes} not a power of two")));
        }
        if assoc == 0 {
            return Err(r.bad_value("cache associativity is zero".to_string()));
        }
        let way_bytes = line_bytes.checked_mul(assoc);
        let sets = match way_bytes {
            Some(wb) if wb > 0 && size_bytes % wb == 0 => size_bytes / wb,
            _ => {
                return Err(r.bad_value(format!(
                    "cache size {size_bytes} not divisible by line {line_bytes} x assoc {assoc}"
                )))
            }
        };
        if !sets.is_power_of_two() {
            return Err(r.bad_value(format!("cache set count {sets} not a power of two")));
        }
        match sets.checked_mul(assoc) {
            Some(lines) if lines <= 1 << 26 => {}
            _ => {
                return Err(SnapshotError::WidthOverflow {
                    section: r.section().to_string(),
                    what: "cache line count",
                    value: sets.saturating_mul(assoc),
                    limit: 1 << 26,
                })
            }
        }
        Ok(Self {
            size_bytes: size_bytes as usize,
            line_bytes: line_bytes as usize,
            assoc: assoc as usize,
        })
    }
}

impl Snapshot for Cache {
    fn write_state(&self, w: &mut SectionWriter) {
        self.config.write_state(w);
        w.put_u64(self.tick);
        w.put_u64(self.hits);
        w.put_u64(self.misses);
        for line in &self.lines {
            w.put_u64(line.tag);
            w.put_u64(line.lru);
            w.put_bool(line.valid);
        }
    }
}

impl Restorable for Cache {
    fn read_state(r: &mut SectionReader<'_>) -> Result<Self, SnapshotError> {
        let config = CacheConfig::read_state(r)?;
        let tick = r.take_u64("cache tick")?;
        let hits = r.take_u64("cache hits")?;
        let misses = r.take_u64("cache misses")?;
        let mut lines = Vec::with_capacity(config.sets() * config.assoc);
        for _ in 0..config.sets() * config.assoc {
            lines.push(Line {
                tag: r.take_u64("cache line tag")?,
                lru: r.take_u64("cache line lru")?,
                valid: r.take_bool("cache line valid")?,
            });
        }
        let live = lines.iter().filter(|l| l.valid).count() as u64;
        Ok(Self {
            config,
            lines,
            tick,
            hits,
            misses,
            live,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 16B lines = 128 B
        Cache::new(CacheConfig {
            size_bytes: 128,
            line_bytes: 16,
            assoc: 2,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x40));
        assert!(c.access(0x40));
        assert!(c.access(0x4F), "same 16B line");
        assert!(!c.access(0x50), "next line misses");
    }

    #[test]
    fn lru_eviction_in_set() {
        let mut c = tiny();
        // Three lines mapping to set 0 (line addr multiples of 4 lines).
        let a = 0x000;
        let b = 0x040;
        let d = 0x080;
        c.access(a);
        c.access(b);
        c.access(a); // a more recent than b
        c.access(d); // evicts b
        assert!(c.access(a));
        assert!(!c.access(b));
    }

    #[test]
    fn capacity_sweep_thrashes() {
        let mut c = tiny();
        for round in 0..2 {
            for i in 0..64u64 {
                let hit = c.access(i * 16);
                if round == 0 {
                    assert!(!hit);
                }
            }
        }
        // Working set 1KB >> 128B cache: second round still misses.
        assert!(c.hit_rate() < 0.1);
    }

    #[test]
    fn small_working_set_hits_after_warmup() {
        let mut c = tiny();
        for _ in 0..10 {
            for i in 0..4u64 {
                c.access(i * 16); // 4 lines, one per set
            }
        }
        assert!(c.hit_rate() > 0.85);
    }

    #[test]
    fn occupancy_tracks_valid_lines() {
        let mut c = tiny();
        assert_eq!(c.occupancy(), 0);
        c.access(0x00);
        c.access(0x10);
        assert_eq!(c.occupancy(), 2);
        c.access(0x00); // hit: no growth
        assert_eq!(c.occupancy(), 2);
        // Fill far past capacity: occupancy saturates at 8 lines.
        for i in 0..64u64 {
            c.access(i * 16);
        }
        assert_eq!(c.occupancy(), 8);
    }

    #[test]
    fn paper_configs_validate() {
        let _ = Cache::new(CacheConfig::paper_l1());
        let _ = Cache::new(CacheConfig::paper_l2());
        assert_eq!(CacheConfig::paper_l1().sets(), 256);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_rejected() {
        let _ = Cache::new(CacheConfig {
            size_bytes: 96,
            line_bytes: 24,
            assoc: 2,
        });
    }
}
