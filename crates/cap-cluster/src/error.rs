//! Cluster-level errors.
//!
//! Wire codes **32 and up** belong to the cluster layer; codes below 32
//! are [`ServiceError`] codes passed through from a node untouched, so
//! a client can always tell "the node said no" from "the fleet said
//! no". The split matters for accounting: [`ClusterError::is_failover`]
//! is the exact predicate the soak's request-accounting identity uses
//! for its `failover_attributed` bucket.

use cap_service::error::ServiceError;

/// *Why* a node was unavailable — the router's partition-handling
/// logic keys off this: a refused connect or an open breaker reads as
/// "node dead", while a read **timeout** on an established connection
/// is the signature of a link swallowing frames (a partition), counted
/// separately as `cluster.partition_suspected`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnavailableKind {
    /// The TCP connect itself was refused or failed.
    Connect,
    /// An established connection went idle past the read timeout —
    /// the partition signature. The node may be alive on the far side.
    Timeout,
    /// The connection died mid-call (reset, torn frame, mismatched
    /// reply). The request may have trained the node before the reply
    /// was lost.
    Transport,
    /// The router's breaker for this node is open or half-open-busy;
    /// no call was attempted.
    Breaker,
}

impl UnavailableKind {
    /// Stable lowercase name for logs and counters.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            UnavailableKind::Connect => "connect",
            UnavailableKind::Timeout => "timeout",
            UnavailableKind::Transport => "transport",
            UnavailableKind::Breaker => "breaker",
        }
    }
}

/// Everything that can go wrong with a routed request or a fleet
/// control operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// The owning node cannot take traffic: its breaker is open, its
    /// connection died mid-call, or it refused the connect. Retrying
    /// is safe only for connect-level failures; a mid-call transport
    /// death may have trained the node before the reply was lost.
    NodeUnavailable {
        /// Fleet index of the node.
        node: usize,
        /// Structured failure class (see [`UnavailableKind`]).
        kind: UnavailableKind,
        /// Human-readable cause (breaker state or transport error).
        reason: String,
    },
    /// The owning node is draining for migration; the request was
    /// **not** forwarded, so retrying after the epoch flip is safe and
    /// cannot double-train.
    Migrating {
        /// Fleet index of the draining node.
        node: usize,
    },
    /// No shipped replica exists for a node that needs promotion.
    NoReplica {
        /// Fleet index of the node.
        node: usize,
    },
    /// A differential-twin proof failed: the promoted node's state does
    /// not match the shipped archive byte for byte.
    DriftDetected {
        /// Fleet index of the promoted node.
        node: usize,
        /// Archive length the proof expected.
        expected_len: usize,
        /// Archive length the twin produced.
        got_len: usize,
        /// First byte offset that differs, if lengths matched.
        first_diff: Option<usize>,
    },
    /// A node answered with a structured [`ServiceError`]; `code` is
    /// its original wire code (always < 32).
    Remote {
        /// Fleet index of the answering node.
        node: usize,
        /// Original [`ServiceError::code`].
        code: u8,
        /// The node's error message.
        message: String,
    },
    /// The fleet description itself is unusable (no nodes, bad index).
    BadTopology(String),
    /// The node refused the forward because the frame's routing epoch
    /// was stale relative to its fence — the request was rejected
    /// *before* any training, so retrying under the current epoch is
    /// exactly-once safe. The router re-fences the node in passing, so
    /// one retry normally suffices.
    EpochFenced {
        /// Fleet index of the refusing node.
        node: usize,
    },
}

impl ClusterError {
    /// Stable wire/reporting code. Cluster-originated errors are ≥ 32;
    /// [`ClusterError::Remote`] keeps the node's own code.
    #[must_use]
    pub fn code(&self) -> u8 {
        match self {
            ClusterError::Remote { code, .. } => *code,
            ClusterError::NodeUnavailable { .. } => 32,
            ClusterError::Migrating { .. } => 33,
            ClusterError::NoReplica { .. } => 34,
            ClusterError::DriftDetected { .. } => 35,
            ClusterError::BadTopology(_) => 36,
            ClusterError::EpochFenced { .. } => 37,
        }
    }

    /// True when the failure is attributable to node loss or planned
    /// node movement — the `failover_attributed` accounting bucket.
    #[must_use]
    pub fn is_failover(&self) -> bool {
        matches!(
            self,
            ClusterError::NodeUnavailable { .. }
                | ClusterError::Migrating { .. }
                | ClusterError::EpochFenced { .. }
        )
    }

    /// True when the failure carries the partition signature: an
    /// established link going silent rather than dying outright.
    #[must_use]
    pub fn is_partition_suspect(&self) -> bool {
        matches!(
            self,
            ClusterError::NodeUnavailable {
                kind: UnavailableKind::Timeout,
                ..
            }
        )
    }

    /// True when the node answered a structured shed (its ingress queue
    /// was full) — the `shed` accounting bucket.
    #[must_use]
    pub fn is_shed(&self) -> bool {
        matches!(
            self,
            ClusterError::Remote { code, .. }
                if *code == ServiceError::Shed { capacity: 0 }.code()
        )
    }

    /// True when a retry cannot double-train a predictor: the request
    /// provably never reached a backend. [`ClusterError::Migrating`]
    /// (gated before forwarding) and [`ClusterError::EpochFenced`]
    /// (rejected by the node before training) qualify — everything
    /// else may have been forwarded.
    #[must_use]
    pub fn retry_is_exactly_once(&self) -> bool {
        matches!(
            self,
            ClusterError::Migrating { .. } | ClusterError::EpochFenced { .. }
        )
    }
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::NodeUnavailable { node, kind, reason } => {
                write!(f, "node {node} unavailable ({}): {reason}", kind.name())
            }
            ClusterError::Migrating { node } => {
                write!(
                    f,
                    "node {node} is draining for migration; retry after the epoch flip"
                )
            }
            ClusterError::NoReplica { node } => {
                write!(f, "node {node} has no shipped replica to promote")
            }
            ClusterError::DriftDetected {
                node,
                expected_len,
                got_len,
                first_diff,
            } => match first_diff {
                Some(at) => write!(
                    f,
                    "node {node} drifted: archives differ at byte {at} (len {expected_len})"
                ),
                None => write!(
                    f,
                    "node {node} drifted: archive length {got_len}, expected {expected_len}"
                ),
            },
            ClusterError::Remote {
                node,
                code,
                message,
            } => {
                write!(f, "node {node} error {code}: {message}")
            }
            ClusterError::BadTopology(why) => write!(f, "bad topology: {why}"),
            ClusterError::EpochFenced { node } => {
                write!(f, "node {node} fenced the forward: stale routing epoch; retry under the current epoch")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_codes_never_collide_with_service_codes() {
        // Service codes are 1..=8 today; anything the cluster mints must
        // sit at 32+ so a mixed log stream stays unambiguous.
        let minted = [
            ClusterError::NodeUnavailable {
                node: 0,
                kind: UnavailableKind::Transport,
                reason: String::new(),
            },
            ClusterError::Migrating { node: 0 },
            ClusterError::NoReplica { node: 0 },
            ClusterError::DriftDetected {
                node: 0,
                expected_len: 0,
                got_len: 0,
                first_diff: None,
            },
            ClusterError::BadTopology(String::new()),
            ClusterError::EpochFenced { node: 0 },
        ];
        for e in &minted {
            assert!(e.code() >= 32, "{e:?} minted code {}", e.code());
        }
        // Passthrough keeps the node's own code.
        let remote = ClusterError::Remote {
            node: 1,
            code: 1,
            message: "shed".into(),
        };
        assert_eq!(remote.code(), 1);
        assert!(remote.is_shed());
        assert!(!remote.is_failover());
    }

    #[test]
    fn only_gated_or_fenced_rejections_are_exactly_once_retryable() {
        assert!(ClusterError::Migrating { node: 2 }.retry_is_exactly_once());
        assert!(ClusterError::EpochFenced { node: 2 }.retry_is_exactly_once());
        assert!(!ClusterError::NodeUnavailable {
            node: 2,
            kind: UnavailableKind::Transport,
            reason: "reset".into()
        }
        .retry_is_exactly_once());
    }

    #[test]
    fn only_timeouts_suggest_a_partition() {
        let timeout = ClusterError::NodeUnavailable {
            node: 1,
            kind: UnavailableKind::Timeout,
            reason: "no reply within 100ms".into(),
        };
        assert!(timeout.is_partition_suspect());
        assert!(timeout.is_failover());
        for kind in [
            UnavailableKind::Connect,
            UnavailableKind::Transport,
            UnavailableKind::Breaker,
        ] {
            let e = ClusterError::NodeUnavailable {
                node: 1,
                kind,
                reason: String::new(),
            };
            assert!(!e.is_partition_suspect(), "{kind:?}");
        }
        assert!(ClusterError::EpochFenced { node: 0 }.is_failover());
    }
}
