//! The fleet front door: consistent-hash routing, breaker-guarded
//! forwarding, replicated shipping, failover promotion, live migration,
//! epoch fencing, and runtime ring resizing.
//!
//! # Accounting invariant
//!
//! Every request accepted by [`Router::call`] terminates in **exactly
//! one** bucket: `answered`, `shed`, `failover_attributed`, or
//! `other_error`. The chaos soaks prove the identity
//! `accepted == answered + shed + failover + other` holds across node
//! kills, promotions, resizes, and network partitions — no request is
//! ever silently lost. The structure that makes it true is simple:
//! `call` increments `accepted`, delegates to one fallible forward, and
//! classifies its single outcome; there is no early return between.
//!
//! # Failover state machine (per node)
//!
//! ```text
//!        probe ok / call ok                breaker trips
//!   Up ───────────────────── Up      Up ──────────────────▶ (unavailable)
//!   Up ──drain_node()──▶ Draining ──promote()──▶ Up   [epoch += 1]
//!   (unavailable) ──promote(replica)──▶ Up           [epoch += 1]
//!   any ──remove_node()──▶ Retired                   [epoch += 1, ring shrinks]
//! ```
//!
//! "Unavailable" is not a stored state — it is the breaker's opinion,
//! re-derived on every call, which is what lets a node that recovers on
//! its own come back with no operator action (half-open probe → close).
//! `Retired` is a tombstone: the slot keeps its index (indices are ring
//! identities and are never reused) but owns no keys and takes no
//! traffic.
//!
//! # Partitions vs. death, and epoch fencing
//!
//! A refused connect reads as "node dead"; a **read timeout** on an
//! established link is the partition signature — the node may be alive
//! and still training on the far side. The router cannot tell the
//! difference from outside, so it makes the distinction *safe* instead:
//! every forward is stamped with the routing epoch, every epoch flip
//! re-fences the reachable fleet, and a node that missed the broadcast
//! (because a partition hid it) refuses both stale and post-heal
//! traffic until the router re-fences it on first contact. The upshot:
//! promoting a replica while the old incumbent is alive behind a
//! partition can never fork the shard — the incumbent's fence no longer
//! matches any epoch the router will stamp, so it can't be trained
//! again, and a healed stale node rejects writes instead of silently
//! diverging.
//!
//! # Replication factor R>1
//!
//! Each ship stores the archive router-side **and** pushes it to the
//! shard's R−1 ring successors under a monotonic generation, so a warm
//! replica survives the loss of the router's copy and failover can
//! promote from any surviving holder ([`Router::replica_any`]).
//!
//! # Drift bound
//!
//! A warm replica is the archive from the last [`Router::ship_now`].
//! The router counts every request forwarded to a node since its last
//! ship; that counter **is** the prediction drift bound on promotion —
//! exact, not estimated, because shipping holds the node's link lock,
//! so no request can slip between "archive pulled" and "counter reset".
//! The bound applies to the newest generation; promoting an older
//! fetched generation reports an unknown (unbounded) drift rather than
//! a false number.

use crate::error::{ClusterError, UnavailableKind};
use crate::names;
use crate::node::NodeLink;
use crate::ring::{HashRing, RingConfig, RoutingTable};
use cap_obs::{Obs, StatsSnapshot};
use cap_service::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
use cap_service::error::ServiceError;
use cap_service::service::{Request, Response};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Router tuning.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Ring construction (vnodes, placement seed).
    pub ring: RingConfig,
    /// Per-node health breaker tuning.
    pub breaker: BreakerConfig,
    /// Seed for breaker jitter streams; node `i` uses `seed + i`.
    pub seed: u64,
    /// Replication factor R: every ship keeps the archive router-side
    /// and pushes it to the shard's R−1 ring successors. `1` disables
    /// cross-node replication (the pre-R>1 behavior).
    pub replication: usize,
    /// Per-read inactivity timeout on every node link (`None` = block
    /// forever). Finite by default so a partitioned link surfaces as a
    /// structured timeout instead of a wedged link mutex.
    pub read_timeout: Option<Duration>,
    /// Router-side telemetry sink.
    pub obs: Obs,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            ring: RingConfig::default(),
            breaker: BreakerConfig::default(),
            seed: 0x0C1A_57E5,
            replication: 2,
            read_timeout: Some(crate::node::DEFAULT_READ_TIMEOUT),
            obs: Obs::off(),
        }
    }
}

/// Whether a node is taking traffic, being migrated away from, or
/// permanently removed from the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeState {
    Up,
    Draining,
    Retired,
}

struct Node {
    /// The link mutex is the per-node serialization point: forwards,
    /// ships, drains, and promotions all hold it, which is what makes
    /// the drain barrier and the drift counter exact.
    link: Mutex<NodeLink>,
    state: Mutex<NodeState>,
    breaker: Mutex<CircuitBreaker>,
    replica: Mutex<Option<Vec<u8>>>,
    since_ship: AtomicU64,
    /// Monotonic ship counter; replica pushes carry it so holders keep
    /// only the newest archive (the generation check doubles as the
    /// replica store's fence).
    ship_generation: AtomicU64,
}

impl Node {
    fn new(index: usize, addr: SocketAddr, config: &RouterConfig) -> Self {
        Self {
            link: Mutex::new(NodeLink::new(index, addr).with_read_timeout(config.read_timeout)),
            state: Mutex::new(NodeState::Up),
            breaker: Mutex::new(CircuitBreaker::new(
                config.breaker,
                config.seed.wrapping_add(index as u64),
            )),
            replica: Mutex::new(None),
            since_ship: AtomicU64::new(0),
            ship_generation: AtomicU64::new(0),
        }
    }

    fn state(&self) -> NodeState {
        *self.state.lock().expect("state lock")
    }
}

/// A point-in-time copy of the router's request accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Accounting {
    /// Requests that entered [`Router::call`].
    pub accepted: u64,
    /// Requests answered with a prediction response.
    pub answered: u64,
    /// Requests a node shed under backpressure.
    pub shed: u64,
    /// Requests refused for node-loss or migration reasons.
    pub failover_attributed: u64,
    /// Every other structured failure.
    pub other_error: u64,
}

impl Accounting {
    /// The soak's identity: every accepted request landed in exactly
    /// one bucket.
    #[must_use]
    pub fn balances(&self) -> bool {
        self.accepted == self.answered + self.shed + self.failover_attributed + self.other_error
    }
}

/// The cluster front door. Share via `Arc`; every method takes `&self`.
pub struct Router {
    /// Slots are append-only: an index is a ring identity for the life
    /// of the router (retired slots stay as tombstones), so replica
    /// generations and successor lists never alias across resizes.
    nodes: RwLock<Vec<Arc<Node>>>,
    table: Mutex<RoutingTable>,
    config: RouterConfig,
    accepted: AtomicU64,
    answered: AtomicU64,
    shed: AtomicU64,
    failover: AtomicU64,
    other_error: AtomicU64,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("nodes", &self.node_count())
            .field("epoch", &self.epoch())
            .finish()
    }
}

impl Router {
    /// A router over `addrs` (node index = position in the slice).
    ///
    /// # Errors
    ///
    /// [`ClusterError::BadTopology`] on an empty fleet or a replication
    /// factor of zero.
    pub fn new(addrs: &[SocketAddr], config: RouterConfig) -> Result<Self, ClusterError> {
        if addrs.is_empty() {
            return Err(ClusterError::BadTopology(
                "a fleet needs at least one node".into(),
            ));
        }
        if config.replication == 0 {
            return Err(ClusterError::BadTopology(
                "replication factor must be at least 1".into(),
            ));
        }
        let nodes = addrs
            .iter()
            .enumerate()
            .map(|(i, &addr)| Arc::new(Node::new(i, addr, &config)))
            .collect();
        let table = RoutingTable::new(HashRing::new(addrs.len(), config.ring));
        Ok(Self {
            nodes: RwLock::new(nodes),
            table: Mutex::new(table),
            config,
            accepted: AtomicU64::new(0),
            answered: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            failover: AtomicU64::new(0),
            other_error: AtomicU64::new(0),
        })
    }

    /// Total slots ever created (including retired tombstones).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.read().expect("nodes lock").len()
    }

    /// Slots currently on the ring (excludes retired tombstones).
    #[must_use]
    pub fn live_node_count(&self) -> usize {
        self.live_members().len()
    }

    /// Current routing epoch (bumped by every promotion and resize).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.table.lock().expect("table lock").epoch()
    }

    /// Which node owns `ip` right now, and under which epoch.
    #[must_use]
    pub fn node_for_ip(&self, ip: u64) -> (usize, u64) {
        self.table.lock().expect("table lock").route(ip)
    }

    fn node(&self, index: usize) -> Result<Arc<Node>, ClusterError> {
        let nodes = self.nodes.read().expect("nodes lock");
        nodes.get(index).cloned().ok_or_else(|| {
            ClusterError::BadTopology(format!(
                "node {index} out of range (fleet has {})",
                nodes.len()
            ))
        })
    }

    /// A snapshot of the slot table (cheap Arc clones; the read lock is
    /// never held across I/O).
    fn nodes_snapshot(&self) -> Vec<Arc<Node>> {
        self.nodes.read().expect("nodes lock").clone()
    }

    fn live_members(&self) -> Vec<usize> {
        self.nodes_snapshot()
            .iter()
            .enumerate()
            .filter(|(_, n)| n.state() != NodeState::Retired)
            .map(|(i, _)| i)
            .collect()
    }

    /// Publishes the router-side breaker opinion of `index` as a gauge
    /// (0 = closed, 1 = half-open, 2 = open).
    fn publish_breaker(&self, index: usize, node: &Node, now: Instant) {
        let state = node.breaker.lock().expect("breaker lock").state(now);
        let value = match state {
            BreakerState::Closed => 0,
            BreakerState::HalfOpen => 1,
            BreakerState::Open => 2,
        };
        self.config
            .obs
            .gauge(&names::breaker_state_gauge(index), value);
    }

    /// Routes and forwards one request. This is the only traffic entry
    /// point, and it maintains the accounting invariant documented on
    /// the module.
    ///
    /// # Errors
    ///
    /// Structured [`ClusterError`]; see [`ClusterError::is_failover`]
    /// and [`ClusterError::retry_is_exactly_once`] for retry guidance.
    pub fn call(
        &self,
        request: Request,
        budget: Option<Duration>,
    ) -> Result<Response, ClusterError> {
        self.accepted.fetch_add(1, Ordering::Relaxed);
        self.config.obs.incr(names::ACCEPTED);
        let ip = match request {
            Request::Observe { ip, .. } | Request::Predict { ip, .. } => ip,
        };
        let (index, epoch) = self.node_for_ip(ip);
        let outcome = self.forward(index, epoch, request, budget);
        let (counter, name) = match &outcome {
            Ok(_) => (&self.answered, names::ANSWERED),
            Err(e) if e.is_shed() => (&self.shed, names::SHED),
            Err(e) if e.is_failover() => (&self.failover, names::FAILOVER),
            Err(_) => (&self.other_error, names::OTHER_ERROR),
        };
        counter.fetch_add(1, Ordering::Relaxed);
        self.config.obs.incr(name);
        if let Err(e) = &outcome {
            if e.is_partition_suspect() {
                self.config.obs.incr(names::PARTITION_SUSPECTED);
            }
        }
        outcome
    }

    fn forward(
        &self,
        index: usize,
        epoch: u64,
        request: Request,
        budget: Option<Duration>,
    ) -> Result<Response, ClusterError> {
        let node = self.node(index)?;
        // The link lock is held across the state check *and* the
        // forward: a drain that flips the state under this same lock
        // can never interleave between them, so no request slips into a
        // node after its final migration ship.
        let mut link = node.link.lock().expect("link lock");
        match node.state() {
            NodeState::Up => {}
            NodeState::Draining => return Err(ClusterError::Migrating { node: index }),
            NodeState::Retired => {
                return Err(ClusterError::BadTopology(format!(
                    "node {index} is retired"
                )))
            }
        }
        let now = Instant::now();
        {
            let mut breaker = node.breaker.lock().expect("breaker lock");
            if !breaker.call_permitted(now) {
                let reason = format!("breaker {}", breaker.state(now).name());
                drop(breaker);
                self.publish_breaker(index, &node, now);
                return Err(ClusterError::NodeUnavailable {
                    node: index,
                    kind: UnavailableKind::Breaker,
                    reason,
                });
            }
        }
        let mut result = link.serve(request, budget, Some(epoch));
        // A fence rejection means the node's pinned epoch disagrees
        // with the one we stamped — either the frame was routed before
        // a flip (stale frame) or the node missed a fence broadcast
        // behind a partition (stale node). Re-fence it to the *current*
        // epoch under the same held link lock, then surface the
        // exactly-once-retryable error: the node rejected before
        // training, so the caller's retry under the fresh epoch cannot
        // double-train.
        if let Err(ClusterError::Remote { code, .. }) = &result {
            if *code == ServiceError::FENCED_CODE {
                self.config.obs.incr(names::EPOCH_FENCED);
                let current = self.epoch();
                let _ = link.fence(current);
                result = Err(ClusterError::EpochFenced { node: index });
            }
        }
        // Outcome bookkeeping uses a fresh clock: a timed-out call
        // finished *after* `now`, and a cooldown dated from before the
        // call would already be half-spent (or expired) on trip.
        let now = Instant::now();
        let mut breaker = node.breaker.lock().expect("breaker lock");
        match &result {
            Ok(_) => {
                breaker.on_success(now);
                node.since_ship.fetch_add(1, Ordering::Relaxed);
            }
            // A structured remote error is a *healthy* node saying no
            // (shed, deadline); only transport death charges the
            // breaker. A fence rejection provably never trained, so it
            // does not advance the drift counter.
            Err(ClusterError::EpochFenced { .. }) => breaker.on_success(now),
            Err(ClusterError::Remote { .. }) => {
                breaker.on_success(now);
                node.since_ship.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => breaker.on_failure(now),
        }
        drop(breaker);
        self.publish_breaker(index, &node, now);
        result
    }

    /// Ships a fresh warm replica from every `Up` node: pulls a live
    /// archive over `OP_SNAPSHOT_PULL`, stores it router-side, resets
    /// that node's drift counter, and pushes the archive to the
    /// shard's R−1 ring successors. Returns per-node archive sizes
    /// (or the per-node failure — one dead node never blocks the rest).
    pub fn ship_now(&self) -> Vec<Result<usize, ClusterError>> {
        (0..self.node_count()).map(|i| self.ship_node(i)).collect()
    }

    fn ship_node(&self, index: usize) -> Result<usize, ClusterError> {
        let node = self.node(index)?;
        let (bytes, generation) = {
            let mut link = node.link.lock().expect("link lock");
            match node.state() {
                NodeState::Up => {}
                NodeState::Draining => return Err(ClusterError::Migrating { node: index }),
                NodeState::Retired => {
                    return Err(ClusterError::BadTopology(format!(
                        "node {index} is retired"
                    )))
                }
            }
            let now = Instant::now();
            match link.pull_snapshot() {
                Ok(bytes) => {
                    node.breaker.lock().expect("breaker lock").on_success(now);
                    *node.replica.lock().expect("replica lock") = Some(bytes.clone());
                    // Exact, not racy: the link lock blocks forwards for
                    // the duration of the pull, so every counted request
                    // is inside the archive we just stored.
                    node.since_ship.store(0, Ordering::Relaxed);
                    let generation = node.ship_generation.fetch_add(1, Ordering::Relaxed) + 1;
                    self.config.obs.incr(names::SHIP_COUNT);
                    self.config.obs.count(names::SHIP_BYTES, bytes.len() as u64);
                    (bytes, generation)
                }
                Err(e) => {
                    node.breaker.lock().expect("breaker lock").on_failure(now);
                    self.publish_breaker(index, &node, now);
                    return Err(e);
                }
            }
            // The victim's link lock is released here; successor pushes
            // below take each successor's own lock one at a time, so
            // two concurrent ships can never deadlock on each other.
        };
        let len = bytes.len();
        for successor in self.successors_of(index) {
            let Ok(target) = self.node(successor) else {
                continue;
            };
            if target.state() != NodeState::Up {
                continue;
            }
            let mut link = target.link.lock().expect("link lock");
            match link.replica_push(index as u64, generation, bytes.clone()) {
                Ok(_stored) => self.config.obs.incr(names::REPLICA_PUSHED),
                Err(_) => self.config.obs.incr(names::REPLICA_PUSH_FAIL),
            }
        }
        Ok(len)
    }

    /// The shard's replica holders under the current ring: its R−1
    /// distinct ring successors.
    fn successors_of(&self, index: usize) -> Vec<usize> {
        if self.config.replication <= 1 {
            return Vec::new();
        }
        self.table
            .lock()
            .expect("table lock")
            .ring()
            .successors(index, self.config.replication - 1)
    }

    /// Probes every node's health (one obs roundtrip each), feeding the
    /// per-node breakers. Draining and retired nodes are skipped
    /// (reported `Ok`).
    pub fn probe_now(&self) -> Vec<Result<(), ClusterError>> {
        self.nodes_snapshot()
            .iter()
            .enumerate()
            .map(|(index, node)| {
                let mut link = node.link.lock().expect("link lock");
                if node.state() != NodeState::Up {
                    return Ok(());
                }
                let now = Instant::now();
                let result = link.probe();
                let mut breaker = node.breaker.lock().expect("breaker lock");
                match &result {
                    Ok(()) => breaker.on_success(now),
                    Err(e) => {
                        breaker.on_failure(now);
                        self.config.obs.incr(names::PROBE_FAIL);
                        if e.is_partition_suspect() {
                            self.config.obs.incr(names::PARTITION_SUSPECTED);
                        }
                    }
                }
                drop(breaker);
                drop(link);
                self.publish_breaker(index, node, now);
                result
            })
            .collect()
    }

    /// The latest router-held replica for a node, with its exact drift
    /// (how many requests the node answered since that archive was
    /// taken).
    #[must_use]
    pub fn replica(&self, index: usize) -> Option<(Vec<u8>, u64)> {
        let node = self.node(index).ok()?;
        let bytes = node.replica.lock().expect("replica lock").clone()?;
        Some((bytes, node.since_ship.load(Ordering::Relaxed)))
    }

    /// Fetches the newest replica of shard `index` held by its ring
    /// successors (the R>1 fallback when the router-side copy is
    /// missing). Returns the archive and its exact drift bound when the
    /// fetched generation is the newest ship (`None` drift for an older
    /// generation — an honest "unbounded" beats a false number).
    #[must_use]
    pub fn replica_from_successors(&self, index: usize) -> Option<(Vec<u8>, Option<u64>)> {
        let node = self.node(index).ok()?;
        let mut best: Option<(u64, Vec<u8>)> = None;
        for successor in self.successors_of(index) {
            let Ok(holder) = self.node(successor) else {
                continue;
            };
            if holder.state() != NodeState::Up {
                continue;
            }
            let mut link = holder.link.lock().expect("link lock");
            if let Ok(Some((generation, bytes))) = link.replica_fetch(index as u64) {
                if best.as_ref().is_none_or(|(g, _)| generation > *g) {
                    best = Some((generation, bytes));
                }
            }
        }
        let (generation, bytes) = best?;
        let drift = (generation == node.ship_generation.load(Ordering::Relaxed))
            .then(|| node.since_ship.load(Ordering::Relaxed));
        Some((bytes, drift))
    }

    /// The best surviving replica for a node: the router-held copy
    /// (exact drift) or, failing that, the newest successor-held copy.
    #[must_use]
    pub fn replica_any(&self, index: usize) -> Option<(Vec<u8>, Option<u64>)> {
        self.replica(index)
            .map(|(bytes, drift)| (bytes, Some(drift)))
            .or_else(|| self.replica_from_successors(index))
    }

    /// Requests forwarded to `index` since its last ship — the
    /// prediction-drift bound a promotion from the current replica
    /// would carry.
    #[must_use]
    pub fn drift(&self, index: usize) -> u64 {
        self.node(index)
            .map_or(0, |n| n.since_ship.load(Ordering::Relaxed))
    }

    /// Begins a live migration of node `index`: gates its traffic
    /// (subsequent calls get retryable [`ClusterError::Migrating`]),
    /// then pulls the **final** archive with the node quiesced from the
    /// router's perspective. Returns that archive — restore a
    /// replacement from it, then call [`Router::promote`].
    ///
    /// # Errors
    ///
    /// Out-of-range index, or the final pull failing (the node stays
    /// gated; promote from the last shipped replica instead).
    pub fn drain_node(&self, index: usize) -> Result<Vec<u8>, ClusterError> {
        let node = self.node(index)?;
        let mut link = node.link.lock().expect("link lock");
        // Flip under the link lock: any forward already past its state
        // check finished before we acquired the lock; any forward still
        // waiting will see Draining.
        *node.state.lock().expect("state lock") = NodeState::Draining;
        let bytes = link.pull_snapshot()?;
        *node.replica.lock().expect("replica lock") = Some(bytes.clone());
        node.since_ship.store(0, Ordering::Relaxed);
        node.ship_generation.fetch_add(1, Ordering::Relaxed);
        Ok(bytes)
    }

    /// Sends a drain-and-exit to node `index` (rolling restarts retire
    /// the old process this way after [`Router::drain_node`]).
    ///
    /// # Errors
    ///
    /// Transport failures; an already-dead node is fine to ignore.
    pub fn shutdown_node(&self, index: usize, drain: Duration) -> Result<(), ClusterError> {
        self.node(index)?
            .link
            .lock()
            .expect("link lock")
            .shutdown(drain)
    }

    /// Fences every `Up` node at `epoch`, best-effort. A node the
    /// broadcast cannot reach (dead or partitioned) keeps its old fence
    /// — which is the *mechanism*, not a gap: when it reappears, its
    /// stale fence makes it reject routed writes until the router
    /// re-fences it on first contact.
    fn fence_fleet(&self, epoch: u64) {
        for (index, node) in self.nodes_snapshot().iter().enumerate() {
            if node.state() != NodeState::Up {
                continue;
            }
            let mut link = node.link.lock().expect("link lock");
            if link.fence(epoch).is_err() {
                self.config.obs.incr(names::FENCE_FAIL);
                self.config
                    .obs
                    .event(names::FENCE_FAIL, cap_obs::EventKind::Mark, index as u64);
            }
        }
    }

    /// Installs a replacement for node `index` at `addr` and flips the
    /// routing epoch. With `expect_identical = Some(archive)` this is a
    /// **zero-drift proof**: the replacement's live state is pulled and
    /// byte-compared against `archive` (the differential twin) before
    /// any traffic resumes; a mismatch aborts the promotion with
    /// [`ClusterError::DriftDetected`] and leaves the node gated. With
    /// `None` (failover from a surviving replica) the measured drift is
    /// whatever [`Router::drift`] reported at promotion time.
    ///
    /// The replacement is fenced at the new epoch *before* it goes
    /// `Up`, and the rest of the reachable fleet is re-fenced right
    /// after the flip — so a frame routed before the flip can never
    /// train the replacement, and an old incumbent resurfacing after a
    /// partition rejects writes instead of forking the shard.
    ///
    /// Returns the new epoch.
    ///
    /// # Errors
    ///
    /// Out-of-range index, an unreachable replacement (the fence
    /// roundtrip doubles as a reachability proof), or a failed drift
    /// proof.
    pub fn promote(
        &self,
        index: usize,
        addr: SocketAddr,
        expect_identical: Option<&[u8]>,
    ) -> Result<u64, ClusterError> {
        let node = self.node(index)?;
        {
            let mut link = node.link.lock().expect("link lock");
            link.retarget(addr);
            if let Some(expected) = expect_identical {
                let got = link.pull_snapshot()?;
                if got != expected {
                    // Leave the node gated (Draining) — promoting a
                    // drifted twin silently would defeat the whole
                    // proof.
                    let first_diff = expected
                        .iter()
                        .zip(&got)
                        .position(|(a, b)| a != b)
                        .filter(|_| expected.len() == got.len());
                    return Err(ClusterError::DriftDetected {
                        node: index,
                        expected_len: expected.len(),
                        got_len: got.len(),
                        first_diff,
                    });
                }
                *node.replica.lock().expect("replica lock") = Some(got);
            }
            // Fence the replacement at the epoch it will serve under,
            // while we still hold its link lock: a forward stamped with
            // the pre-flip epoch that was blocked on this lock will now
            // bounce off the fence instead of training the fresh node.
            // (Under racing promotes the broadcast below re-fences to
            // the final value; the window only yields retryable fence
            // errors, never training.)
            link.fence(self.epoch() + 1)?;
            *node.breaker.lock().expect("breaker lock") = CircuitBreaker::new(
                self.config.breaker,
                self.config.seed.wrapping_add(index as u64),
            );
            node.since_ship.store(0, Ordering::Relaxed);
            *node.state.lock().expect("state lock") = NodeState::Up;
        }
        if expect_identical.is_none() {
            self.config.obs.incr(names::REPLICA_PROMOTIONS);
        }
        let epoch = self.table.lock().expect("table lock").flip_epoch();
        self.config.obs.incr(names::EPOCH_FLIP);
        self.publish_breaker(index, &node, Instant::now());
        self.fence_fleet(epoch);
        Ok(epoch)
    }

    /// Grows the fleet: appends a new slot at `addr`, proves it
    /// reachable (fencing it at the upcoming epoch), rebuilds the ring
    /// with the new member, and re-fences the fleet. Keys the new
    /// member wins start cold and retrain — the paper's
    /// confidence-gated degradation makes that a accuracy dip, not an
    /// outage; every unmoved key provably keeps its node (see the ring
    /// minimal-movement tests).
    ///
    /// Returns `(new node index, new epoch)`.
    ///
    /// # Errors
    ///
    /// An unreachable new node (the slot is retired again and the ring
    /// is untouched).
    pub fn add_node(&self, addr: SocketAddr) -> Result<(usize, u64), ClusterError> {
        let (index, node) = {
            let mut nodes = self.nodes.write().expect("nodes lock");
            let index = nodes.len();
            let node = Arc::new(Node::new(index, addr, &self.config));
            nodes.push(Arc::clone(&node));
            (index, node)
        };
        // Reachability + pre-fence before the ring exposes any keys to
        // the new member.
        if let Err(e) = node.link.lock().expect("link lock").fence(self.epoch() + 1) {
            *node.state.lock().expect("state lock") = NodeState::Retired;
            return Err(e);
        }
        let members = self.live_members();
        let epoch = self
            .table
            .lock()
            .expect("table lock")
            .resize(HashRing::with_members(&members, self.config.ring));
        self.config.obs.incr(names::RING_RESIZE);
        self.config.obs.incr(names::EPOCH_FLIP);
        self.fence_fleet(epoch);
        Ok((index, epoch))
    }

    /// Shrinks the fleet: gates node `index` and captures its final
    /// archive via the [`Router::drain_node`] machinery (drift-free —
    /// the gate means no request can land between the final pull and
    /// removal), rebuilds the ring without it, and re-fences the
    /// remaining fleet. A dead or partitioned node can still be removed
    /// — the best surviving replica is returned instead of a fresh
    /// pull, or `None` when no copy survives.
    ///
    /// The slot becomes a permanent tombstone; its keys move to ring
    /// neighbors and retrain from the cold predictor.
    ///
    /// Returns `(final archive if any, new epoch)`.
    ///
    /// # Errors
    ///
    /// Out-of-range index, an already-retired slot, or removing the
    /// last live member.
    pub fn remove_node(&self, index: usize) -> Result<(Option<Vec<u8>>, u64), ClusterError> {
        let node = self.node(index)?;
        if node.state() == NodeState::Retired {
            return Err(ClusterError::BadTopology(format!(
                "node {index} is already retired"
            )));
        }
        let members = self.live_members();
        if members.len() <= 1 {
            return Err(ClusterError::BadTopology(
                "cannot remove the last live member".into(),
            ));
        }
        // Drift-free capture when the node is reachable; best surviving
        // replica otherwise.
        let archive = match self.drain_node(index) {
            Ok(bytes) => Some(bytes),
            Err(_) => self.replica_any(index).map(|(bytes, _)| bytes),
        };
        *node.state.lock().expect("state lock") = NodeState::Retired;
        let members: Vec<usize> = members.into_iter().filter(|&m| m != index).collect();
        let epoch = self
            .table
            .lock()
            .expect("table lock")
            .resize(HashRing::with_members(&members, self.config.ring));
        self.config.obs.incr(names::RING_RESIZE);
        self.config.obs.incr(names::EPOCH_FLIP);
        self.fence_fleet(epoch);
        Ok((archive, epoch))
    }

    /// Merges every reachable node's telemetry snapshot into one
    /// fleet-wide view. Returns the merged snapshot and how many nodes
    /// reported (draining, retired, and unreachable nodes are skipped,
    /// never fatal — a dashboard must work *during* an incident).
    #[must_use]
    pub fn fleet_obs(&self) -> (StatsSnapshot, usize) {
        let mut merged = StatsSnapshot::default();
        let mut reporting = 0;
        for node in &self.nodes_snapshot() {
            let mut link = node.link.lock().expect("link lock");
            if node.state() != NodeState::Up {
                continue;
            }
            if let Ok(snap) = link.obs_stats() {
                merged.merge(&snap);
                reporting += 1;
            }
        }
        (merged, reporting)
    }

    /// A point-in-time accounting copy. Taken with no lock: each bucket
    /// is monotone, so a concurrent snapshot may be mid-request (sum
    /// short of `accepted`) but can never over-count. Quiesce traffic
    /// before asserting [`Accounting::balances`].
    #[must_use]
    pub fn accounting(&self) -> Accounting {
        Accounting {
            accepted: self.accepted.load(Ordering::Relaxed),
            answered: self.answered.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            failover_attributed: self.failover.load(Ordering::Relaxed),
            other_error: self.other_error.load(Ordering::Relaxed),
        }
    }
}
