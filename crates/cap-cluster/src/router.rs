//! The fleet front door: consistent-hash routing, breaker-guarded
//! forwarding, replica shipping, failover promotion, and live
//! migration.
//!
//! # Accounting invariant
//!
//! Every request accepted by [`Router::call`] terminates in **exactly
//! one** bucket: `answered`, `shed`, `failover_attributed`, or
//! `other_error`. The chaos soak proves the identity
//! `accepted == answered + shed + failover + other` holds across node
//! kills, promotions, and a full rolling restart — no request is ever
//! silently lost. The structure that makes it true is simple: `call`
//! increments `accepted`, delegates to one fallible forward, and
//! classifies its single outcome; there is no early return between.
//!
//! # Failover state machine (per node)
//!
//! ```text
//!        probe ok / call ok                breaker trips
//!   Up ───────────────────── Up      Up ──────────────────▶ (unavailable)
//!   Up ──drain_node()──▶ Draining ──promote()──▶ Up   [epoch += 1]
//!   (unavailable) ──promote(replica)──▶ Up           [epoch += 1]
//! ```
//!
//! "Unavailable" is not a stored state — it is the breaker's opinion,
//! re-derived on every call, which is what lets a node that recovers on
//! its own come back with no operator action (half-open probe → close).
//!
//! # Drift bound
//!
//! A warm replica is the archive from the last [`Router::ship_now`].
//! The router counts every request forwarded to a node since its last
//! ship; that counter **is** the prediction drift bound on promotion —
//! exact, not estimated, because shipping holds the node's link lock,
//! so no request can slip between "archive pulled" and "counter reset".

use crate::error::ClusterError;
use crate::node::NodeLink;
use crate::ring::{HashRing, RingConfig, RoutingTable};
use cap_obs::{Obs, StatsSnapshot};
use cap_service::breaker::{BreakerConfig, CircuitBreaker};
use cap_service::service::{Request, Response};
use crate::names;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Router tuning.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Ring construction (vnodes, placement seed).
    pub ring: RingConfig,
    /// Per-node health breaker tuning.
    pub breaker: BreakerConfig,
    /// Seed for breaker jitter streams; node `i` uses `seed + i`.
    pub seed: u64,
    /// Router-side telemetry sink.
    pub obs: Obs,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            ring: RingConfig::default(),
            breaker: BreakerConfig::default(),
            seed: 0x0C1A_57E5,
            obs: Obs::off(),
        }
    }
}

/// Whether a node is taking traffic or being migrated away from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeState {
    Up,
    Draining,
}

struct Node {
    /// The link mutex is the per-node serialization point: forwards,
    /// ships, drains, and promotions all hold it, which is what makes
    /// the drain barrier and the drift counter exact.
    link: Mutex<NodeLink>,
    state: Mutex<NodeState>,
    breaker: Mutex<CircuitBreaker>,
    replica: Mutex<Option<Vec<u8>>>,
    since_ship: AtomicU64,
}

/// A point-in-time copy of the router's request accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Accounting {
    /// Requests that entered [`Router::call`].
    pub accepted: u64,
    /// Requests answered with a prediction response.
    pub answered: u64,
    /// Requests a node shed under backpressure.
    pub shed: u64,
    /// Requests refused for node-loss or migration reasons.
    pub failover_attributed: u64,
    /// Every other structured failure.
    pub other_error: u64,
}

impl Accounting {
    /// The soak's identity: every accepted request landed in exactly
    /// one bucket.
    #[must_use]
    pub fn balances(&self) -> bool {
        self.accepted
            == self.answered + self.shed + self.failover_attributed + self.other_error
    }
}

/// The cluster front door. Share via `Arc`; every method takes `&self`.
pub struct Router {
    nodes: Vec<Node>,
    table: Mutex<RoutingTable>,
    config: RouterConfig,
    accepted: AtomicU64,
    answered: AtomicU64,
    shed: AtomicU64,
    failover: AtomicU64,
    other_error: AtomicU64,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("nodes", &self.nodes.len())
            .field("epoch", &self.epoch())
            .finish()
    }
}

impl Router {
    /// A router over `addrs` (node index = position in the slice).
    ///
    /// # Errors
    ///
    /// [`ClusterError::BadTopology`] on an empty fleet.
    pub fn new(addrs: &[SocketAddr], config: RouterConfig) -> Result<Self, ClusterError> {
        if addrs.is_empty() {
            return Err(ClusterError::BadTopology("a fleet needs at least one node".into()));
        }
        let nodes = addrs
            .iter()
            .enumerate()
            .map(|(i, &addr)| Node {
                link: Mutex::new(NodeLink::new(i, addr)),
                state: Mutex::new(NodeState::Up),
                breaker: Mutex::new(CircuitBreaker::new(
                    config.breaker,
                    config.seed.wrapping_add(i as u64),
                )),
                replica: Mutex::new(None),
                since_ship: AtomicU64::new(0),
            })
            .collect();
        let table = RoutingTable::new(HashRing::new(addrs.len(), config.ring));
        Ok(Self {
            nodes,
            table: Mutex::new(table),
            config,
            accepted: AtomicU64::new(0),
            answered: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            failover: AtomicU64::new(0),
            other_error: AtomicU64::new(0),
        })
    }

    /// Fleet size.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Current routing epoch (bumped by every promotion).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.table.lock().expect("table lock").epoch()
    }

    /// Which node owns `ip` right now, and under which epoch.
    #[must_use]
    pub fn node_for_ip(&self, ip: u64) -> (usize, u64) {
        self.table.lock().expect("table lock").route(ip)
    }

    fn node(&self, index: usize) -> Result<&Node, ClusterError> {
        self.nodes.get(index).ok_or_else(|| {
            ClusterError::BadTopology(format!(
                "node {index} out of range (fleet has {})",
                self.nodes.len()
            ))
        })
    }

    /// Routes and forwards one request. This is the only traffic entry
    /// point, and it maintains the accounting invariant documented on
    /// the module.
    ///
    /// # Errors
    ///
    /// Structured [`ClusterError`]; see [`ClusterError::is_failover`]
    /// and [`ClusterError::retry_is_exactly_once`] for retry guidance.
    pub fn call(
        &self,
        request: Request,
        budget: Option<Duration>,
    ) -> Result<Response, ClusterError> {
        self.accepted.fetch_add(1, Ordering::Relaxed);
        self.config.obs.incr(names::ACCEPTED);
        let ip = match request {
            Request::Observe { ip, .. } | Request::Predict { ip, .. } => ip,
        };
        let (index, _epoch) = self.node_for_ip(ip);
        let outcome = self.forward(index, request, budget);
        let (counter, name) = match &outcome {
            Ok(_) => (&self.answered, names::ANSWERED),
            Err(e) if e.is_shed() => (&self.shed, names::SHED),
            Err(e) if e.is_failover() => (&self.failover, names::FAILOVER),
            Err(_) => (&self.other_error, names::OTHER_ERROR),
        };
        counter.fetch_add(1, Ordering::Relaxed);
        self.config.obs.incr(name);
        outcome
    }

    fn forward(
        &self,
        index: usize,
        request: Request,
        budget: Option<Duration>,
    ) -> Result<Response, ClusterError> {
        let node = self.node(index)?;
        // The link lock is held across the state check *and* the
        // forward: a drain that flips the state under this same lock
        // can never interleave between them, so no request slips into a
        // node after its final migration ship.
        let mut link = node.link.lock().expect("link lock");
        if *node.state.lock().expect("state lock") == NodeState::Draining {
            return Err(ClusterError::Migrating { node: index });
        }
        let now = Instant::now();
        {
            let mut breaker = node.breaker.lock().expect("breaker lock");
            if !breaker.call_permitted(now) {
                return Err(ClusterError::NodeUnavailable {
                    node: index,
                    reason: format!("breaker {}", breaker.state(now).name()),
                });
            }
        }
        let result = link.serve(request, budget);
        let mut breaker = node.breaker.lock().expect("breaker lock");
        match &result {
            Ok(_) => {
                breaker.on_success(now);
                node.since_ship.fetch_add(1, Ordering::Relaxed);
            }
            // A structured remote error is a *healthy* node saying no
            // (shed, deadline); only transport death charges the
            // breaker.
            Err(ClusterError::Remote { .. }) => {
                breaker.on_success(now);
                node.since_ship.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => breaker.on_failure(now),
        }
        result
    }

    /// Ships a fresh warm replica from every `Up` node: pulls a live
    /// archive over `OP_SNAPSHOT_PULL`, stores it router-side, and
    /// resets that node's drift counter. Returns per-node archive sizes
    /// (or the per-node failure — one dead node never blocks the rest).
    pub fn ship_now(&self) -> Vec<Result<usize, ClusterError>> {
        (0..self.nodes.len()).map(|i| self.ship_node(i)).collect()
    }

    fn ship_node(&self, index: usize) -> Result<usize, ClusterError> {
        let node = self.node(index)?;
        let mut link = node.link.lock().expect("link lock");
        if *node.state.lock().expect("state lock") == NodeState::Draining {
            return Err(ClusterError::Migrating { node: index });
        }
        let now = Instant::now();
        match link.pull_snapshot() {
            Ok(bytes) => {
                node.breaker.lock().expect("breaker lock").on_success(now);
                let len = bytes.len();
                *node.replica.lock().expect("replica lock") = Some(bytes);
                // Exact, not racy: the link lock blocks forwards for
                // the duration of the pull, so every counted request is
                // inside the archive we just stored.
                node.since_ship.store(0, Ordering::Relaxed);
                self.config.obs.incr(names::SHIP_COUNT);
                self.config.obs.count(names::SHIP_BYTES, len as u64);
                Ok(len)
            }
            Err(e) => {
                node.breaker.lock().expect("breaker lock").on_failure(now);
                Err(e)
            }
        }
    }

    /// Probes every node's health (one obs roundtrip each), feeding the
    /// per-node breakers. Draining nodes are skipped (reported `Ok`).
    pub fn probe_now(&self) -> Vec<Result<(), ClusterError>> {
        self.nodes
            .iter()
            .map(|node| {
                let mut link = node.link.lock().expect("link lock");
                if *node.state.lock().expect("state lock") == NodeState::Draining {
                    return Ok(());
                }
                let now = Instant::now();
                let result = link.probe();
                let mut breaker = node.breaker.lock().expect("breaker lock");
                match &result {
                    Ok(()) => breaker.on_success(now),
                    Err(_) => {
                        breaker.on_failure(now);
                        self.config.obs.incr(names::PROBE_FAIL);
                    }
                }
                result
            })
            .collect()
    }

    /// The latest shipped replica for a node, with its exact drift (how
    /// many requests the node answered since that archive was taken).
    #[must_use]
    pub fn replica(&self, index: usize) -> Option<(Vec<u8>, u64)> {
        let node = self.nodes.get(index)?;
        let bytes = node.replica.lock().expect("replica lock").clone()?;
        Some((bytes, node.since_ship.load(Ordering::Relaxed)))
    }

    /// Requests forwarded to `index` since its last ship — the
    /// prediction-drift bound a promotion from the current replica
    /// would carry.
    #[must_use]
    pub fn drift(&self, index: usize) -> u64 {
        self.nodes
            .get(index)
            .map_or(0, |n| n.since_ship.load(Ordering::Relaxed))
    }

    /// Begins a live migration of node `index`: gates its traffic
    /// (subsequent calls get retryable [`ClusterError::Migrating`]),
    /// then pulls the **final** archive with the node quiesced from the
    /// router's perspective. Returns that archive — restore a
    /// replacement from it, then call [`Router::promote`].
    ///
    /// # Errors
    ///
    /// Out-of-range index, or the final pull failing (the node stays
    /// gated; promote from the last shipped replica instead).
    pub fn drain_node(&self, index: usize) -> Result<Vec<u8>, ClusterError> {
        let node = self.node(index)?;
        let mut link = node.link.lock().expect("link lock");
        // Flip under the link lock: any forward already past its state
        // check finished before we acquired the lock; any forward still
        // waiting will see Draining.
        *node.state.lock().expect("state lock") = NodeState::Draining;
        let bytes = link.pull_snapshot()?;
        *node.replica.lock().expect("replica lock") = Some(bytes.clone());
        node.since_ship.store(0, Ordering::Relaxed);
        Ok(bytes)
    }

    /// Sends a drain-and-exit to node `index` (rolling restarts retire
    /// the old process this way after [`Router::drain_node`]).
    ///
    /// # Errors
    ///
    /// Transport failures; an already-dead node is fine to ignore.
    pub fn shutdown_node(&self, index: usize, drain: Duration) -> Result<(), ClusterError> {
        self.node(index)?
            .link
            .lock()
            .expect("link lock")
            .shutdown(drain)
    }

    /// Installs a replacement for node `index` at `addr` and flips the
    /// routing epoch. With `expect_identical = Some(archive)` this is a
    /// **zero-drift proof**: the replacement's live state is pulled and
    /// byte-compared against `archive` (the differential twin) before
    /// any traffic resumes; a mismatch aborts the promotion with
    /// [`ClusterError::DriftDetected`] and leaves the node gated. With
    /// `None` (failover from a stale replica) the measured drift is
    /// whatever [`Router::drift`] reported at promotion time.
    ///
    /// Returns the new epoch.
    ///
    /// # Errors
    ///
    /// Out-of-range index, an unreachable replacement, or a failed
    /// drift proof.
    pub fn promote(
        &self,
        index: usize,
        addr: SocketAddr,
        expect_identical: Option<&[u8]>,
    ) -> Result<u64, ClusterError> {
        let node = self.node(index)?;
        let mut link = node.link.lock().expect("link lock");
        link.retarget(addr);
        if let Some(expected) = expect_identical {
            let got = link.pull_snapshot()?;
            if got != expected {
                // Leave the node gated (Draining) — promoting a drifted
                // twin silently would defeat the whole proof.
                let first_diff = expected
                    .iter()
                    .zip(&got)
                    .position(|(a, b)| a != b)
                    .filter(|_| expected.len() == got.len());
                return Err(ClusterError::DriftDetected {
                    node: index,
                    expected_len: expected.len(),
                    got_len: got.len(),
                    first_diff,
                });
            }
            *node.replica.lock().expect("replica lock") = Some(got);
        }
        *node.breaker.lock().expect("breaker lock") = CircuitBreaker::new(
            self.config.breaker,
            self.config.seed.wrapping_add(index as u64),
        );
        node.since_ship.store(0, Ordering::Relaxed);
        *node.state.lock().expect("state lock") = NodeState::Up;
        let epoch = self.table.lock().expect("table lock").flip_epoch();
        self.config.obs.incr(names::EPOCH_FLIP);
        Ok(epoch)
    }

    /// Merges every reachable node's telemetry snapshot into one
    /// fleet-wide view. Returns the merged snapshot and how many nodes
    /// reported (draining and unreachable nodes are skipped, never
    /// fatal — a dashboard must work *during* an incident).
    #[must_use]
    pub fn fleet_obs(&self) -> (StatsSnapshot, usize) {
        let mut merged = StatsSnapshot::default();
        let mut reporting = 0;
        for node in &self.nodes {
            let mut link = node.link.lock().expect("link lock");
            if *node.state.lock().expect("state lock") == NodeState::Draining {
                continue;
            }
            if let Ok(snap) = link.obs_stats() {
                merged.merge(&snap);
                reporting += 1;
            }
        }
        (merged, reporting)
    }

    /// A point-in-time accounting copy. Taken with no lock: each bucket
    /// is monotone, so a concurrent snapshot may be mid-request (sum
    /// short of `accepted`) but can never over-count. Quiesce traffic
    /// before asserting [`Accounting::balances`].
    #[must_use]
    pub fn accounting(&self) -> Accounting {
        Accounting {
            accepted: self.accepted.load(Ordering::Relaxed),
            answered: self.answered.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            failover_attributed: self.failover.load(Ordering::Relaxed),
            other_error: self.other_error.load(Ordering::Relaxed),
        }
    }
}
