//! In-process fleet nodes: a [`Service`] plus its TCP front door on a
//! loopback port, each with its own telemetry registry.
//!
//! This is the fleet member used by router tests and the router-hop
//! bench — behaviorally identical to a `simulate serve` process (same
//! service, same wire protocol) minus the process boundary. The
//! multi-process chaos soak uses real processes; everything else gets
//! the cheap version.

use cap_obs::Registry;
use cap_service::net::{debug_stats_renderer, ObsExporter, TcpClient, TcpServer};
use cap_service::service::{Service, ServiceConfig, ShutdownReport};
use cap_service::wire::MAX_REPLY_FRAME_LEN;
use std::io;
use std::net::SocketAddr;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// One in-process node: service + TCP server thread + registry.
pub struct LocalNode {
    addr: SocketAddr,
    join: JoinHandle<ShutdownReport>,
    registry: Arc<Registry>,
}

impl std::fmt::Debug for LocalNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalNode")
            .field("addr", &self.addr)
            .finish()
    }
}

impl LocalNode {
    /// Starts a cold node on a fresh loopback port. The node gets its
    /// own [`Registry`]; any `obs` already in `config` is replaced.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start(config: ServiceConfig) -> io::Result<Self> {
        Self::start_with(config, None)
    }

    /// Starts a node warm-restored from `snapshot` (a shipped replica
    /// or a migration's final archive).
    ///
    /// # Errors
    ///
    /// Bind failures, plus `InvalidData` when the snapshot does not
    /// decode under `config`.
    pub fn start_restored(config: ServiceConfig, snapshot: &[u8]) -> io::Result<Self> {
        Self::start_with(config, Some(snapshot))
    }

    fn start_with(mut config: ServiceConfig, snapshot: Option<&[u8]>) -> io::Result<Self> {
        let registry = Arc::new(Registry::new());
        config.obs = registry.obs();
        let service = match snapshot {
            Some(bytes) => Service::start_restored(config, bytes)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?,
            None => Service::start(config),
        };
        let exporter: ObsExporter = {
            let registry = Arc::clone(&registry);
            Arc::new(move || registry.snapshot().encode())
        };
        // Fleet nodes accept replica pushes, whose archives can exceed
        // the hostile-tight default request cap.
        let server = TcpServer::bind(("127.0.0.1", 0), service.handle(), debug_stats_renderer())?
            .with_obs_exporter(exporter)
            .with_request_cap(MAX_REPLY_FRAME_LEN);
        let addr = server.local_addr()?;
        let join = std::thread::Builder::new()
            .name(format!("cap-cluster-node-{}", addr.port()))
            .spawn(move || {
                let drain = server.run().unwrap_or(Duration::from_millis(500));
                service.shutdown(drain)
            })
            .expect("spawn node thread");
        Ok(Self {
            addr,
            join,
            registry,
        })
    }

    /// The node's TCP address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The node's telemetry registry (the same one its TCP exporter
    /// serves).
    #[must_use]
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Graceful stop: shutdown frame over the wire, then join the
    /// server thread and return its drain report (which carries the
    /// final warm-restart snapshot).
    ///
    /// # Errors
    ///
    /// An unreachable or already-stopped node reports the transport
    /// failure; the thread is still joined.
    pub fn stop(self, drain: Duration) -> io::Result<ShutdownReport> {
        let send = TcpClient::connect(self.addr).and_then(|mut c| {
            c.shutdown(drain)
                .map(|_| ())
                .map_err(|e| io::Error::other(e.to_string()))
        });
        match self.join.join() {
            Ok(report) => send.map(|()| report),
            Err(_) => Err(io::Error::other("node server thread panicked")),
        }
    }
}
