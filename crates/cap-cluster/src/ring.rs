//! Consistent-hash ring and the epoch-stamped routing table.
//!
//! IPs are placed on a 64-bit ring by a splitmix scramble; each node
//! contributes [`RingConfig::vnodes`] virtual points so the keyspace
//! splits evenly without coordination. Routing answers are stamped with
//! the table's **epoch** — a counter bumped on every node promotion or
//! resize — so concurrent operations can tell pre-flip from post-flip
//! decisions. The ring never changes shape during failover or
//! migration: a replacement node takes over its predecessor's index,
//! which is what makes "drain → ship → flip" a pure handoff with no key
//! remapping.
//!
//! Resizing builds a **new** ring over a different member set. Point
//! placement is a pure function of a member's stable id (never of the
//! member count), so adding or removing a member moves only the keys
//! that land on the added/removed points — the classic consistent-hash
//! minimal-movement property, proven by test below.

/// Tuning for ring construction.
#[derive(Debug, Clone, Copy)]
pub struct RingConfig {
    /// Virtual points per node. More points → smoother key split at the
    /// cost of a larger (still tiny) routing array.
    pub vnodes: usize,
    /// Seed for point placement; the same seed always yields the same
    /// ring, so every router instance over a fleet agrees on routing.
    pub seed: u64,
}

impl Default for RingConfig {
    fn default() -> Self {
        Self {
            vnodes: 64,
            seed: 0xC0A5_7A17,
        }
    }
}

/// The splitmix64 finalizer — the same scramble family the service uses
/// for worker routing, so the two layers hash independently (different
/// constants) but with the same avalanche quality.
fn scramble(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A consistent-hash ring over a set of stable member ids.
///
/// [`HashRing::new`] builds the common dense case (`0..nodes`);
/// [`HashRing::with_members`] takes any id set, which is what runtime
/// resizing uses — a retired id simply drops out of the member list and
/// only its points disappear.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(ring position, member id)`, sorted by position.
    points: Vec<(u64, usize)>,
    members: Vec<usize>,
}

impl HashRing {
    /// Builds the ring over member ids `0..nodes`. Every instance built
    /// from the same `(nodes, config)` routes identically.
    ///
    /// # Panics
    ///
    /// With zero nodes or zero vnodes — an unroutable ring is a
    /// construction bug, not a runtime condition.
    #[must_use]
    pub fn new(nodes: usize, config: RingConfig) -> Self {
        let members: Vec<usize> = (0..nodes).collect();
        Self::with_members(&members, config)
    }

    /// Builds the ring over an explicit member-id set. Point placement
    /// for an id is independent of every other id, so two rings sharing
    /// an id place that id's points identically — the minimal-movement
    /// guarantee resizing relies on.
    ///
    /// # Panics
    ///
    /// With zero members, zero vnodes, or a duplicate id.
    #[must_use]
    pub fn with_members(members: &[usize], config: RingConfig) -> Self {
        assert!(!members.is_empty(), "a ring needs at least one member");
        assert!(config.vnodes >= 1, "a member needs at least one point");
        let mut sorted = members.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), members.len(), "duplicate ring member id");
        let mut points = Vec::with_capacity(members.len() * config.vnodes);
        for &member in members {
            for v in 0..config.vnodes {
                let pos = scramble(
                    config
                        .seed
                        .wrapping_add((member as u64) << 32)
                        .wrapping_add(v as u64),
                );
                points.push((pos, member));
            }
        }
        points.sort_unstable();
        Self {
            points,
            members: sorted,
        }
    }

    /// Number of members the ring routes across.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.members.len()
    }

    /// The member ids on the ring, ascending.
    #[must_use]
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Whether `id` is on the ring.
    #[must_use]
    pub fn contains(&self, id: usize) -> bool {
        self.members.binary_search(&id).is_ok()
    }

    /// The member owning `ip`: the first ring point at or after the
    /// IP's scrambled position, wrapping at the top.
    #[must_use]
    pub fn node_of(&self, ip: u64) -> usize {
        let pos = scramble(ip);
        let i = self.points.partition_point(|&(p, _)| p < pos);
        self.points[if i == self.points.len() { 0 } else { i }].1
    }

    /// Up to `k` distinct members following `of` in ring order — the
    /// replica placement rule: a shard's warm replicas ship to its ring
    /// successors, so replica ownership survives any single resize with
    /// minimal reshuffling. Walks from `of`'s first point, collecting
    /// other members in point order. Returns fewer than `k` when the
    /// ring has fewer other members.
    #[must_use]
    pub fn successors(&self, of: usize, k: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(k.min(self.members.len().saturating_sub(1)));
        if k == 0 || !self.contains(of) {
            return out;
        }
        let start = self
            .points
            .iter()
            .position(|&(_, m)| m == of)
            .expect("member has at least one point");
        for step in 1..=self.points.len() {
            let (_, m) = self.points[(start + step) % self.points.len()];
            if m != of && !out.contains(&m) {
                out.push(m);
                if out.len() == k {
                    break;
                }
            }
        }
        out
    }
}

/// A [`HashRing`] plus the routing **epoch**: bumped on every node
/// promotion (failover or migration flip), never on plain traffic.
#[derive(Debug, Clone)]
pub struct RoutingTable {
    ring: HashRing,
    epoch: u64,
}

impl RoutingTable {
    /// Starts at epoch 0 over a fresh ring.
    #[must_use]
    pub fn new(ring: HashRing) -> Self {
        Self { ring, epoch: 0 }
    }

    /// Routes `ip`, returning `(node index, epoch the answer is valid
    /// for)`.
    #[must_use]
    pub fn route(&self, ip: u64) -> (usize, u64) {
        (self.ring.node_of(ip), self.epoch)
    }

    /// The current epoch.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Records a topology flip (a promotion). Routing is unchanged —
    /// the new node holds the old index — but every decision after this
    /// carries the new epoch.
    pub fn flip_epoch(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }

    /// Replaces the ring (a resize: member added or removed) and bumps
    /// the epoch in the same step, so no routing decision can ever
    /// carry a new-ring node under an old epoch or vice versa.
    pub fn resize(&mut self, ring: HashRing) -> u64 {
        self.ring = ring;
        self.flip_epoch()
    }

    /// The underlying ring.
    #[must_use]
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_across_instances() {
        let a = HashRing::new(5, RingConfig::default());
        let b = HashRing::new(5, RingConfig::default());
        for ip in (0..10_000u64).map(|i| 0x400 + i * 0x40) {
            assert_eq!(a.node_of(ip), b.node_of(ip));
            assert!(a.node_of(ip) < 5);
        }
    }

    #[test]
    fn keyspace_splits_roughly_evenly() {
        let ring = HashRing::new(4, RingConfig::default());
        let mut counts = [0usize; 4];
        for ip in (0..40_000u64).map(|i| 0x1000 + i * 8) {
            counts[ring.node_of(ip)] += 1;
        }
        for (node, &c) in counts.iter().enumerate() {
            // 64 vnodes keeps every node within a loose 2x band of the
            // fair share — enough to prove the split is real without
            // making the test a statistics lottery.
            assert!(
                (5_000..=20_000).contains(&c),
                "node {node} owns {c} of 40000 keys"
            );
        }
    }

    #[test]
    fn different_seeds_route_differently() {
        let a = HashRing::new(4, RingConfig::default());
        let b = HashRing::new(
            4,
            RingConfig {
                seed: 0xDEAD_BEEF,
                ..RingConfig::default()
            },
        );
        let moved = (0..10_000u64)
            .map(|i| 0x400 + i * 0x40)
            .filter(|&ip| a.node_of(ip) != b.node_of(ip))
            .count();
        assert!(moved > 2_000, "only {moved} of 10000 keys moved");
    }

    #[test]
    fn adding_a_member_moves_only_keys_it_wins() {
        // The minimal-movement property resizing relies on: every key
        // either stays where it was or moves to the *new* member.
        let before = HashRing::new(4, RingConfig::default());
        let after = HashRing::with_members(&[0, 1, 2, 3, 4], RingConfig::default());
        let mut moved = 0usize;
        for ip in (0..20_000u64).map(|i| 0x400 + i * 0x28) {
            let (a, b) = (before.node_of(ip), after.node_of(ip));
            if a != b {
                assert_eq!(b, 4, "key {ip:#x} moved {a}→{b}, not to the new member");
                moved += 1;
            }
        }
        // The new member should win roughly a fifth of the keyspace.
        assert!((1_000..=9_000).contains(&moved), "moved {moved} of 20000");
    }

    #[test]
    fn removing_a_member_strands_only_its_keys() {
        let before = HashRing::with_members(&[0, 1, 2, 3], RingConfig::default());
        let after = HashRing::with_members(&[0, 1, 3], RingConfig::default());
        for ip in (0..20_000u64).map(|i| 0x400 + i * 0x28) {
            let (a, b) = (before.node_of(ip), after.node_of(ip));
            if a != 2 {
                assert_eq!(
                    a, b,
                    "key {ip:#x} moved {a}→{b} though member 2 owned neither"
                );
            } else {
                assert_ne!(b, 2);
            }
        }
        assert!(!after.contains(2));
        assert_eq!(after.members(), &[0, 1, 3]);
    }

    #[test]
    fn successors_are_distinct_ordered_and_stable() {
        let ring = HashRing::new(5, RingConfig::default());
        for node in 0..5 {
            let succ = ring.successors(node, 2);
            assert_eq!(succ.len(), 2, "node {node}");
            assert!(!succ.contains(&node));
            assert_ne!(succ[0], succ[1]);
            assert_eq!(
                succ,
                HashRing::new(5, RingConfig::default()).successors(node, 2)
            );
        }
        // Asking for more successors than exist returns all others.
        let small = HashRing::new(2, RingConfig::default());
        assert_eq!(small.successors(0, 3), vec![1]);
        assert_eq!(small.successors(0, 0), Vec::<usize>::new());
        // A member not on the ring has no successors.
        assert_eq!(small.successors(7, 2), Vec::<usize>::new());
    }

    #[test]
    fn resize_bumps_the_epoch_with_the_new_ring() {
        let mut table = RoutingTable::new(HashRing::new(2, RingConfig::default()));
        assert_eq!(table.epoch(), 0);
        let epoch = table.resize(HashRing::with_members(&[0, 1, 2], RingConfig::default()));
        assert_eq!(epoch, 1);
        assert_eq!(table.ring().nodes(), 3);
        let routed: std::collections::BTreeSet<usize> =
            (0..10_000u64).map(|ip| table.route(ip).0).collect();
        assert_eq!(routed, [0, 1, 2].into_iter().collect());
    }

    #[test]
    fn epoch_flips_do_not_move_keys() {
        let mut table = RoutingTable::new(HashRing::new(3, RingConfig::default()));
        let before: Vec<usize> = (0..1_000u64).map(|ip| table.route(ip).0).collect();
        assert_eq!(table.epoch(), 0);
        assert_eq!(table.flip_epoch(), 1);
        let after: Vec<usize> = (0..1_000u64).map(|ip| table.route(ip).0).collect();
        assert_eq!(before, after, "a flip changes the epoch, never routing");
        assert_eq!(table.route(42).1, 1, "answers carry the new epoch");
    }
}
