//! Consistent-hash ring and the epoch-stamped routing table.
//!
//! IPs are placed on a 64-bit ring by a splitmix scramble; each node
//! contributes [`RingConfig::vnodes`] virtual points so the keyspace
//! splits evenly without coordination. Routing answers are stamped with
//! the table's **epoch** — a counter bumped on every node promotion —
//! so concurrent operations can tell pre-flip from post-flip decisions.
//! The ring itself never changes shape during failover or migration:
//! a replacement node takes over its predecessor's index, which is what
//! makes "drain → ship → flip" a pure handoff with no key remapping.

/// Tuning for ring construction.
#[derive(Debug, Clone, Copy)]
pub struct RingConfig {
    /// Virtual points per node. More points → smoother key split at the
    /// cost of a larger (still tiny) routing array.
    pub vnodes: usize,
    /// Seed for point placement; the same seed always yields the same
    /// ring, so every router instance over a fleet agrees on routing.
    pub seed: u64,
}

impl Default for RingConfig {
    fn default() -> Self {
        Self {
            vnodes: 64,
            seed: 0xC0A5_7A17,
        }
    }
}

/// The splitmix64 finalizer — the same scramble family the service uses
/// for worker routing, so the two layers hash independently (different
/// constants) but with the same avalanche quality.
fn scramble(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A fixed consistent-hash ring over node indices `0..nodes`.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(ring position, node index)`, sorted by position.
    points: Vec<(u64, usize)>,
    nodes: usize,
}

impl HashRing {
    /// Builds the ring. Every instance built from the same `(nodes,
    /// config)` routes identically.
    ///
    /// # Panics
    ///
    /// With zero nodes or zero vnodes — an unroutable ring is a
    /// construction bug, not a runtime condition.
    #[must_use]
    pub fn new(nodes: usize, config: RingConfig) -> Self {
        assert!(nodes >= 1, "a ring needs at least one node");
        assert!(config.vnodes >= 1, "a node needs at least one point");
        let mut points = Vec::with_capacity(nodes * config.vnodes);
        for node in 0..nodes {
            for v in 0..config.vnodes {
                let pos = scramble(
                    config
                        .seed
                        .wrapping_add((node as u64) << 32)
                        .wrapping_add(v as u64),
                );
                points.push((pos, node));
            }
        }
        points.sort_unstable();
        Self { points, nodes }
    }

    /// Number of nodes the ring routes across.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The node owning `ip`: the first ring point at or after the IP's
    /// scrambled position, wrapping at the top.
    #[must_use]
    pub fn node_of(&self, ip: u64) -> usize {
        let pos = scramble(ip);
        let i = self.points.partition_point(|&(p, _)| p < pos);
        self.points[if i == self.points.len() { 0 } else { i }].1
    }
}

/// A [`HashRing`] plus the routing **epoch**: bumped on every node
/// promotion (failover or migration flip), never on plain traffic.
#[derive(Debug, Clone)]
pub struct RoutingTable {
    ring: HashRing,
    epoch: u64,
}

impl RoutingTable {
    /// Starts at epoch 0 over a fresh ring.
    #[must_use]
    pub fn new(ring: HashRing) -> Self {
        Self { ring, epoch: 0 }
    }

    /// Routes `ip`, returning `(node index, epoch the answer is valid
    /// for)`.
    #[must_use]
    pub fn route(&self, ip: u64) -> (usize, u64) {
        (self.ring.node_of(ip), self.epoch)
    }

    /// The current epoch.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Records a topology flip (a promotion). Routing is unchanged —
    /// the new node holds the old index — but every decision after this
    /// carries the new epoch.
    pub fn flip_epoch(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }

    /// The underlying ring.
    #[must_use]
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_across_instances() {
        let a = HashRing::new(5, RingConfig::default());
        let b = HashRing::new(5, RingConfig::default());
        for ip in (0..10_000u64).map(|i| 0x400 + i * 0x40) {
            assert_eq!(a.node_of(ip), b.node_of(ip));
            assert!(a.node_of(ip) < 5);
        }
    }

    #[test]
    fn keyspace_splits_roughly_evenly() {
        let ring = HashRing::new(4, RingConfig::default());
        let mut counts = [0usize; 4];
        for ip in (0..40_000u64).map(|i| 0x1000 + i * 8) {
            counts[ring.node_of(ip)] += 1;
        }
        for (node, &c) in counts.iter().enumerate() {
            // 64 vnodes keeps every node within a loose 2x band of the
            // fair share — enough to prove the split is real without
            // making the test a statistics lottery.
            assert!(
                (5_000..=20_000).contains(&c),
                "node {node} owns {c} of 40000 keys"
            );
        }
    }

    #[test]
    fn different_seeds_route_differently() {
        let a = HashRing::new(4, RingConfig::default());
        let b = HashRing::new(
            4,
            RingConfig {
                seed: 0xDEAD_BEEF,
                ..RingConfig::default()
            },
        );
        let moved = (0..10_000u64)
            .map(|i| 0x400 + i * 0x40)
            .filter(|&ip| a.node_of(ip) != b.node_of(ip))
            .count();
        assert!(moved > 2_000, "only {moved} of 10000 keys moved");
    }

    #[test]
    fn epoch_flips_do_not_move_keys() {
        let mut table = RoutingTable::new(HashRing::new(3, RingConfig::default()));
        let before: Vec<usize> = (0..1_000u64).map(|ip| table.route(ip).0).collect();
        assert_eq!(table.epoch(), 0);
        assert_eq!(table.flip_epoch(), 1);
        let after: Vec<usize> = (0..1_000u64).map(|ip| table.route(ip).0).collect();
        assert_eq!(before, after, "a flip changes the epoch, never routing");
        assert_eq!(table.route(42).1, 1, "answers carry the new epoch");
    }
}
