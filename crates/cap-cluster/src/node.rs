//! One router→node link: a lazily-(re)connected TCP client that
//! classifies every failure for the accounting layer.
//!
//! The link owns the *trust boundary* translation: a structured error
//! frame from the node passes through as [`ClusterError::Remote`] with
//! its original code; anything transport-shaped — refused connect,
//! reset mid-call, an undecodable or mismatched reply — collapses to
//! [`ClusterError::NodeUnavailable`] and drops the cached connection so
//! the next call reconnects from scratch.

use crate::error::ClusterError;
use cap_service::net::TcpClient;
use cap_service::service::{Request, Response};
use cap_service::wire::WireResponse;
use std::net::SocketAddr;
use std::time::Duration;

/// A reconnecting client for one fleet node.
#[derive(Debug)]
pub struct NodeLink {
    node: usize,
    addr: SocketAddr,
    client: Option<TcpClient>,
}

impl NodeLink {
    /// A link to node `node` at `addr`. Nothing connects until the
    /// first call.
    #[must_use]
    pub fn new(node: usize, addr: SocketAddr) -> Self {
        Self {
            node,
            addr,
            client: None,
        }
    }

    /// The address this link dials.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Re-points the link (promotion installed a replacement node) and
    /// drops any cached connection to the old address.
    pub fn retarget(&mut self, addr: SocketAddr) {
        self.addr = addr;
        self.client = None;
    }

    fn unavailable(&mut self, reason: impl std::fmt::Display) -> ClusterError {
        self.client = None;
        ClusterError::NodeUnavailable {
            node: self.node,
            reason: reason.to_string(),
        }
    }

    fn client(&mut self) -> Result<&mut TcpClient, ClusterError> {
        if self.client.is_none() {
            match TcpClient::connect(self.addr) {
                Ok(c) => self.client = Some(c),
                Err(e) => return Err(self.unavailable(format_args!("connect: {e}"))),
            }
        }
        Ok(self.client.as_mut().expect("client just installed"))
    }

    /// Forwards one prediction request.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Remote`] for the node's own structured errors;
    /// [`ClusterError::NodeUnavailable`] for transport-level death.
    pub fn serve(
        &mut self,
        request: Request,
        budget: Option<Duration>,
    ) -> Result<Response, ClusterError> {
        let node = self.node;
        match self.client()?.serve(request, budget) {
            Ok(WireResponse::Response(resp)) => Ok(resp),
            Ok(WireResponse::Error { code, message }) => {
                Err(ClusterError::Remote { node, code, message })
            }
            Ok(other) => Err(self.unavailable(format_args!("mismatched reply {other:?}"))),
            Err(e) => Err(self.unavailable(e)),
        }
    }

    /// Pulls a live warm-restart archive (replica shipping / the final
    /// ship of a migration).
    ///
    /// # Errors
    ///
    /// As for [`NodeLink::serve`]; a truncated or lying ship surfaces
    /// as [`ClusterError::NodeUnavailable`], never a panic.
    pub fn pull_snapshot(&mut self) -> Result<Vec<u8>, ClusterError> {
        match self.client()?.pull_snapshot() {
            Ok(bytes) => Ok(bytes),
            Err(e) => Err(self.unavailable(e)),
        }
    }

    /// Fetches the node's telemetry snapshot.
    ///
    /// # Errors
    ///
    /// As for [`NodeLink::serve`].
    pub fn obs_stats(&mut self) -> Result<cap_obs::StatsSnapshot, ClusterError> {
        match self.client()?.obs_stats() {
            Ok(snap) => Ok(snap),
            Err(e) => Err(self.unavailable(e)),
        }
    }

    /// A cheap liveness probe (an obs-stats roundtrip — read-only and
    /// always answerable, even by a node with no exporter).
    ///
    /// # Errors
    ///
    /// As for [`NodeLink::serve`].
    pub fn probe(&mut self) -> Result<(), ClusterError> {
        self.obs_stats().map(|_| ())
    }

    /// Asks the node to drain under `drain`, snapshot, and exit.
    ///
    /// # Errors
    ///
    /// As for [`NodeLink::serve`].
    pub fn shutdown(&mut self, drain: Duration) -> Result<(), ClusterError> {
        let result = match self.client()?.shutdown(drain) {
            Ok(WireResponse::ShutdownAck) => Ok(()),
            Ok(other) => Err(self.unavailable(format_args!("mismatched reply {other:?}"))),
            Err(e) => Err(self.unavailable(e)),
        };
        // The node is exiting either way; never reuse the connection.
        self.client = None;
        result
    }
}
