//! One router→node link: a lazily-(re)connected TCP client that
//! classifies every failure for the accounting layer.
//!
//! The link owns the *trust boundary* translation: a structured error
//! frame from the node passes through as [`ClusterError::Remote`] with
//! its original code; anything transport-shaped — refused connect,
//! reset mid-call, an undecodable or mismatched reply — collapses to
//! [`ClusterError::NodeUnavailable`] and drops the cached connection so
//! the next call reconnects from scratch. The `NodeUnavailable` kind
//! records *how* the transport died: a refused connect reads as "node
//! dead", while a **read timeout** on an established connection is the
//! partition signature (frames swallowed in flight, node possibly alive
//! on the far side) and is counted separately by the router.
//!
//! Every frame read carries the link's read timeout, so a stalled peer
//! can no longer hold the link mutex indefinitely — which previously
//! also stalled the replica ships that share that mutex.

use crate::error::{ClusterError, UnavailableKind};
use cap_service::error::ServiceError;
use cap_service::net::TcpClient;
use cap_service::service::{Request, Response};
use cap_service::wire::WireResponse;
use std::net::SocketAddr;
use std::time::Duration;

/// Default inactivity bound on one reply read. Generous against real
/// work (a loopback roundtrip is microseconds; a snapshot pull streams
/// continuously and keeps resetting it) but finite, so a black-holed
/// link surfaces as a structured timeout instead of a wedged mutex.
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(2);

/// A reconnecting client for one fleet node.
#[derive(Debug)]
pub struct NodeLink {
    node: usize,
    addr: SocketAddr,
    client: Option<TcpClient>,
    read_timeout: Option<Duration>,
}

impl NodeLink {
    /// A link to node `node` at `addr` with the default read timeout.
    /// Nothing connects until the first call.
    #[must_use]
    pub fn new(node: usize, addr: SocketAddr) -> Self {
        Self {
            node,
            addr,
            client: None,
            read_timeout: Some(DEFAULT_READ_TIMEOUT),
        }
    }

    /// Overrides the per-read inactivity timeout (`None` = block
    /// forever, the pre-partition-tolerance behavior). Applies from the
    /// next (re)connect.
    #[must_use]
    pub fn with_read_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.read_timeout = timeout;
        self.client = None;
        self
    }

    /// The address this link dials.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Re-points the link (promotion installed a replacement node) and
    /// drops any cached connection to the old address.
    pub fn retarget(&mut self, addr: SocketAddr) {
        self.addr = addr;
        self.client = None;
    }

    fn unavailable(
        &mut self,
        kind: UnavailableKind,
        reason: impl std::fmt::Display,
    ) -> ClusterError {
        // Always drop the connection: after a timeout the late reply
        // may still arrive and would desync the next roundtrip.
        self.client = None;
        ClusterError::NodeUnavailable {
            node: self.node,
            kind,
            reason: reason.to_string(),
        }
    }

    /// Collapses a client-side [`ServiceError`] into the right
    /// unavailable kind: a reply timeout is the partition signature,
    /// everything else transport death.
    fn transport(&mut self, e: ServiceError) -> ClusterError {
        let kind = match e {
            ServiceError::ReplyTimeout { .. } => UnavailableKind::Timeout,
            _ => UnavailableKind::Transport,
        };
        self.unavailable(kind, e)
    }

    fn client(&mut self) -> Result<&mut TcpClient, ClusterError> {
        if self.client.is_none() {
            match TcpClient::connect(self.addr) {
                Ok(mut c) => {
                    if let Err(e) = c.set_read_timeout(self.read_timeout) {
                        return Err(
                            self.unavailable(UnavailableKind::Connect, format_args!("socket: {e}"))
                        );
                    }
                    self.client = Some(c);
                }
                Err(e) => {
                    return Err(
                        self.unavailable(UnavailableKind::Connect, format_args!("connect: {e}"))
                    )
                }
            }
        }
        Ok(self.client.as_mut().expect("client just installed"))
    }

    /// Forwards one prediction request, stamped with the routing epoch
    /// when the caller is a router (`epoch: Some`) — a fenced node
    /// refuses stale epochs before training. Direct traffic passes
    /// `None` and is never fenced out.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Remote`] for the node's own structured errors
    /// (including a fence rejection, code
    /// [`ServiceError::FENCED_CODE`]);
    /// [`ClusterError::NodeUnavailable`] for transport-level death.
    pub fn serve(
        &mut self,
        request: Request,
        budget: Option<Duration>,
        epoch: Option<u64>,
    ) -> Result<Response, ClusterError> {
        let node = self.node;
        let result = match epoch {
            Some(e) => self.client()?.serve_routed(request, budget, e),
            None => self.client()?.serve(request, budget),
        };
        match result {
            Ok(WireResponse::Response(resp)) => Ok(resp),
            Ok(WireResponse::Error { code, message }) => Err(ClusterError::Remote {
                node,
                code,
                message,
            }),
            Ok(other) => Err(self.unavailable(
                UnavailableKind::Transport,
                format_args!("mismatched reply {other:?}"),
            )),
            Err(e) => Err(self.transport(e)),
        }
    }

    /// Pulls a live warm-restart archive (replica shipping / the final
    /// ship of a migration).
    ///
    /// # Errors
    ///
    /// As for [`NodeLink::serve`]; a truncated or lying ship surfaces
    /// as [`ClusterError::NodeUnavailable`], never a panic.
    pub fn pull_snapshot(&mut self) -> Result<Vec<u8>, ClusterError> {
        match self.client()?.pull_snapshot() {
            Ok(bytes) => Ok(bytes),
            Err(e) => Err(self.transport(e)),
        }
    }

    /// Pins the routing epoch the node accepts forwards under. Routers
    /// fence every node on each epoch flip; a node that misses the
    /// broadcast (partitioned) keeps its old fence and rejects stale
    /// *and* post-heal traffic until re-fenced.
    ///
    /// # Errors
    ///
    /// As for [`NodeLink::serve`].
    pub fn fence(&mut self, epoch: u64) -> Result<(), ClusterError> {
        match self.client()?.fence(epoch) {
            Ok(()) => Ok(()),
            Err(e) => Err(self.transport(e)),
        }
    }

    /// Stores a warm replica of shard `shard` on this node (the R>1
    /// placement push). Returns whether the push won the generation
    /// race.
    ///
    /// # Errors
    ///
    /// As for [`NodeLink::serve`].
    pub fn replica_push(
        &mut self,
        shard: u64,
        generation: u64,
        bytes: Vec<u8>,
    ) -> Result<bool, ClusterError> {
        match self.client()?.replica_push(shard, generation, bytes) {
            Ok(stored) => Ok(stored),
            Err(e) => Err(self.transport(e)),
        }
    }

    /// Fetches the newest replica this node holds for shard `shard`.
    ///
    /// # Errors
    ///
    /// As for [`NodeLink::serve`].
    pub fn replica_fetch(&mut self, shard: u64) -> Result<Option<(u64, Vec<u8>)>, ClusterError> {
        match self.client()?.replica_fetch(shard) {
            Ok(held) => Ok(held),
            Err(e) => Err(self.transport(e)),
        }
    }

    /// Fetches the node's telemetry snapshot.
    ///
    /// # Errors
    ///
    /// As for [`NodeLink::serve`].
    pub fn obs_stats(&mut self) -> Result<cap_obs::StatsSnapshot, ClusterError> {
        match self.client()?.obs_stats() {
            Ok(snap) => Ok(snap),
            Err(e) => Err(self.transport(e)),
        }
    }

    /// A cheap liveness probe (an obs-stats roundtrip — read-only and
    /// always answerable, even by a node with no exporter).
    ///
    /// # Errors
    ///
    /// As for [`NodeLink::serve`].
    pub fn probe(&mut self) -> Result<(), ClusterError> {
        self.obs_stats().map(|_| ())
    }

    /// Asks the node to drain under `drain`, snapshot, and exit.
    ///
    /// # Errors
    ///
    /// As for [`NodeLink::serve`].
    pub fn shutdown(&mut self, drain: Duration) -> Result<(), ClusterError> {
        let result = match self.client()?.shutdown(drain) {
            Ok(WireResponse::ShutdownAck) => Ok(()),
            Ok(other) => Err(self.unavailable(
                UnavailableKind::Transport,
                format_args!("mismatched reply {other:?}"),
            )),
            Err(e) => Err(self.transport(e)),
        };
        // The node is exiting either way; never reuse the connection.
        self.client = None;
        result
    }
}
