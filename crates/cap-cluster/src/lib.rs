//! # cap-cluster — the sharded multi-node prediction fleet
//!
//! Composes the per-node robustness primitives the workspace already
//! has — `cap-service`'s breakers and degradation ladder, bit-identical
//! `cap-snapshot` restore, `cap-obs` export — into a fleet that
//! survives node loss:
//!
//! - **[`ring`]** — consistent-hash placement of IPs across N nodes,
//!   with an epoch-stamped routing table. The paper's predictors are
//!   pure functions of per-IP state, which is exactly what makes an IP
//!   a clean shard unit: no cross-IP state ever needs to move.
//! - **[`router`]** — the front door. Forwards over the existing
//!   length-prefixed TCP protocol, guards each node with a three-state
//!   breaker fed by health probes, ships warm replicas over
//!   `OP_SNAPSHOT_PULL`, promotes replacements with a measured drift
//!   bound, and proves live migrations drift-free with a differential
//!   twin byte-compare. Maintains the request-accounting invariant
//!   `accepted == answered + shed + failover + other`.
//! - **[`node`]** — one reconnecting router→node link with the
//!   trust-boundary error classification.
//! - **[`local`]** — in-process nodes (service + TCP server + registry)
//!   for tests and benches; the chaos soak uses real processes.
//!
//! The cardinal rule inherited from `cap-service` scales up one level:
//! every accepted request terminates in exactly one accounted outcome,
//! no matter which node dies mid-flight.

pub mod error;
pub mod local;
pub mod node;
pub mod ring;
pub mod router;

/// Telemetry names the router emits, mirroring [`router::Accounting`]
/// one for one plus the shipping/probe/epoch counters.
pub mod names {
    /// Requests entering the router.
    pub const ACCEPTED: &str = "cluster.accepted";
    /// Requests answered with a prediction response.
    pub const ANSWERED: &str = "cluster.answered";
    /// Requests a node shed under backpressure.
    pub const SHED: &str = "cluster.shed";
    /// Requests refused for node-loss or migration reasons.
    pub const FAILOVER: &str = "cluster.failover_attributed";
    /// Every other structured failure.
    pub const OTHER_ERROR: &str = "cluster.error.other";
    /// Replica ships completed.
    pub const SHIP_COUNT: &str = "cluster.ship.count";
    /// Total replica bytes shipped.
    pub const SHIP_BYTES: &str = "cluster.ship.bytes";
    /// Health probes that failed (breaker charged).
    pub const PROBE_FAIL: &str = "cluster.probe.fail";
    /// Routing-epoch flips (promotions).
    pub const EPOCH_FLIP: &str = "cluster.epoch_flip";
    /// Failures carrying the partition signature (an established link
    /// going silent past its read timeout).
    pub const PARTITION_SUSPECTED: &str = "cluster.partition_suspected";
    /// Failover promotions from a surviving replica (as opposed to
    /// drift-proven migrations).
    pub const REPLICA_PROMOTIONS: &str = "cluster.replica_promotions";
    /// Forwards a node refused because their routing epoch was stale
    /// relative to its fence.
    pub const EPOCH_FENCED: &str = "cluster.epoch_fenced";
    /// Replica pushes accepted by a ring successor.
    pub const REPLICA_PUSHED: &str = "cluster.replica.pushed";
    /// Replica pushes that failed in transport.
    pub const REPLICA_PUSH_FAIL: &str = "cluster.replica.push_fail";
    /// Ring rebuilds (member added or removed at runtime).
    pub const RING_RESIZE: &str = "cluster.ring_resize";
    /// Fence broadcasts that could not reach a node (it will be
    /// re-fenced on first contact instead).
    pub const FENCE_FAIL: &str = "cluster.fence.fail";

    /// Gauge name for the router's breaker opinion of one node
    /// (0 = closed, 1 = half-open, 2 = open).
    #[must_use]
    pub fn breaker_state_gauge(node: usize) -> String {
        format!("cluster.node.{node}.breaker_state")
    }
}

/// The working set for fleet callers.
pub mod prelude {
    pub use crate::error::{ClusterError, UnavailableKind};
    pub use crate::local::LocalNode;
    pub use crate::node::NodeLink;
    pub use crate::ring::{HashRing, RingConfig, RoutingTable};
    pub use crate::router::{Accounting, Router, RouterConfig};
}
