//! Router integration: a real in-process fleet behind real sockets —
//! routing, accounting, failover from shipped replicas, zero-drift
//! live migration, and a lying node on the snapshot-ship path.

use cap_cluster::prelude::*;
use cap_service::prelude::{Request, Response, ServiceConfig};
use std::sync::Arc;
use std::time::Duration;

fn node_config() -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        queue_capacity: 64,
        ..ServiceConfig::default()
    }
}

fn start_fleet(n: usize) -> (Vec<LocalNode>, Router) {
    let nodes: Vec<LocalNode> = (0..n)
        .map(|_| LocalNode::start(node_config()).expect("start node"))
        .collect();
    let addrs: Vec<_> = nodes.iter().map(LocalNode::addr).collect();
    let router = Router::new(&addrs, RouterConfig::default()).expect("router");
    (nodes, router)
}

fn observe(ip: u64, actual: u64) -> Request {
    Request::Observe {
        ip,
        offset: 0,
        ghr: 0,
        actual,
    }
}

/// IPs that the router currently maps to `node`.
fn ips_owned_by(router: &Router, node: usize, want: usize) -> Vec<u64> {
    (0..100_000u64)
        .map(|i| 0x400 + i * 0x40)
        .filter(|&ip| router.node_for_ip(ip).0 == node)
        .take(want)
        .collect()
}

#[test]
fn fleet_routes_deterministically_and_accounts_every_request() {
    let (nodes, router) = start_fleet(3);

    // Train a stride per IP across the whole fleet.
    let ips: Vec<u64> = (0..60u64).map(|i| 0x1000 + i * 0x100).collect();
    let mut sent = 0u64;
    for round in 0..50u64 {
        for &ip in &ips {
            let resp = router
                .call(observe(ip, 0x8000 + ip + round * 8), Some(Duration::from_secs(2)))
                .expect("routed observe");
            assert!(matches!(resp, Response::Observed { .. }));
            sent += 1;
        }
    }

    // Same IP, same node, every time; answers span more than one node.
    let owners: Vec<usize> = ips.iter().map(|&ip| router.node_for_ip(ip).0).collect();
    assert_eq!(
        owners,
        ips.iter().map(|&ip| router.node_for_ip(ip).0).collect::<Vec<_>>()
    );
    let distinct: std::collections::BTreeSet<_> = owners.iter().copied().collect();
    assert!(distinct.len() > 1, "60 IPs must spread across the fleet");

    let acct = router.accounting();
    assert!(acct.balances(), "accounting must balance: {acct:?}");
    assert_eq!(acct.accepted, sent);
    assert_eq!(acct.answered, sent, "a healthy fleet answers everything");

    // The fleet obs view is the sum of the per-node views.
    let (merged, reporting) = router.fleet_obs();
    assert_eq!(reporting, 3);
    assert_eq!(
        merged.counter(cap_service::names::SERVED),
        Some(sent),
        "merged fleet telemetry accounts every served request"
    );

    for node in nodes {
        node.stop(Duration::from_millis(200)).expect("stop node");
    }
}

#[test]
fn failover_promotes_the_shipped_replica_with_an_exact_drift_bound() {
    let (mut nodes, router) = start_fleet(3);
    let router = Arc::new(router);
    let victim = 0usize;
    let ips = ips_owned_by(&router, victim, 8);
    assert_eq!(ips.len(), 8);

    // Phase 1: traffic, then ship replicas of the whole fleet.
    for round in 0..30u64 {
        for &ip in &ips {
            router.call(observe(ip, 0x5000 + round * 8), None).expect("observe");
        }
    }
    for shipped in router.ship_now() {
        shipped.expect("every node ships");
    }
    assert_eq!(router.drift(victim), 0, "a ship resets the drift counter");

    // Phase 2: exactly 24 more requests land on the victim → drift 24.
    for round in 0..3u64 {
        for &ip in &ips {
            router.call(observe(ip, 0x6000 + round * 8), None).expect("observe");
        }
    }
    assert_eq!(router.drift(victim), 24);

    // The victim dies (stopped out from under the router).
    let dead = nodes.remove(victim);
    dead.stop(Duration::from_millis(200)).expect("victim exits");

    // Calls to its shards now fail, attributed to failover — and the
    // accounting still balances.
    let before = router.accounting();
    let err = router.call(observe(ips[0], 0x7000), None).expect_err("dead node");
    assert!(err.is_failover(), "got {err:?}");
    let after = router.accounting();
    assert_eq!(after.failover_attributed, before.failover_attributed + 1);
    assert!(after.balances());

    // Promote the shipped replica: bounded, measured drift.
    let (replica, drift) = router.replica(victim).expect("replica was shipped");
    assert_eq!(drift, 24, "drift bound is exact, not estimated");
    let replacement = LocalNode::start_restored(node_config(), &replica).expect("warm replica");
    let epoch_before = router.epoch();
    let epoch = router
        .promote(victim, replacement.addr(), None)
        .expect("promotion");
    assert_eq!(epoch, epoch_before + 1, "promotion flips the routing epoch");

    // Traffic to the victim's shards flows again, same routing.
    for &ip in &ips {
        router.call(observe(ip, 0x9000), None).expect("served by replacement");
        assert_eq!(router.node_for_ip(ip).0, victim, "routing never moved");
    }
    assert!(router.accounting().balances());

    replacement.stop(Duration::from_millis(200)).expect("stop replacement");
    for node in nodes {
        node.stop(Duration::from_millis(200)).expect("stop node");
    }
}

#[test]
fn live_migration_is_provably_zero_drift() {
    let (mut nodes, router) = start_fleet(3);
    let moving = 1usize;
    let ips = ips_owned_by(&router, moving, 6);

    for round in 0..40u64 {
        for &ip in &ips {
            router.call(observe(ip, 0x4000 + round * 16), None).expect("observe");
        }
    }

    // Drain: the final archive is pulled with the node quiesced, and
    // requests meanwhile get the retryable Migrating error without ever
    // touching the node.
    let final_archive = router.drain_node(moving).expect("drain");
    match router.call(observe(ips[0], 0xA000), None) {
        Err(ClusterError::Migrating { node }) => assert_eq!(node, moving),
        other => panic!("expected Migrating, got {other:?}"),
    }
    assert!(
        router.call(observe(ips[0], 0xA000), None).expect_err("still gated").retry_is_exactly_once(),
        "migration errors must be safe to retry"
    );

    // A *cold* replacement fails the differential-twin proof...
    let impostor = LocalNode::start(node_config()).expect("cold node");
    match router.promote(moving, impostor.addr(), Some(&final_archive)) {
        Err(ClusterError::DriftDetected { node, .. }) => assert_eq!(node, moving),
        other => panic!("expected DriftDetected, got {other:?}"),
    }
    assert!(
        matches!(
            router.call(observe(ips[0], 0xA000), None),
            Err(ClusterError::Migrating { .. })
        ),
        "a failed proof leaves the node gated"
    );

    // ...and the restored twin passes it: bit-identical, zero drift.
    let replacement =
        LocalNode::start_restored(node_config(), &final_archive).expect("restored twin");
    let epoch = router
        .promote(moving, replacement.addr(), Some(&final_archive))
        .expect("zero-drift promotion");
    assert_eq!(epoch, 1);

    // The old node is retired only after the flip; traffic never gaps.
    let old = nodes.remove(moving);
    old.stop(Duration::from_millis(200)).expect("retire old node");
    for &ip in &ips {
        router.call(observe(ip, 0xB000), None).expect("served post-flip");
    }
    assert!(router.accounting().balances());

    impostor.stop(Duration::from_millis(200)).expect("stop impostor");
    replacement.stop(Duration::from_millis(200)).expect("stop replacement");
    for node in nodes {
        node.stop(Duration::from_millis(200)).expect("stop node");
    }
}

#[test]
fn a_lying_node_cannot_break_the_shipping_path() {
    // A "node" that answers every frame with a torn reply: announces a
    // big payload, sends half, hangs up.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind liar");
    let addr = listener.local_addr().expect("liar addr");
    let liar = std::thread::spawn(move || {
        for stream in listener.incoming().take(2) {
            let Ok(mut stream) = stream else { continue };
            let mut len = [0u8; 4];
            use std::io::{Read, Write};
            if stream.read_exact(&mut len).is_err() {
                continue;
            }
            let announced = u32::from_le_bytes(len) as usize;
            let mut payload = vec![0u8; announced];
            let _ = stream.read_exact(&mut payload);
            // Announce 4 KiB, deliver half, vanish mid-archive.
            let _ = stream.write_all(&4096u32.to_le_bytes());
            let _ = stream.write_all(&[0u8; 2048]);
        }
    });

    let router = Router::new(&[addr], RouterConfig::default()).expect("router");
    match router.ship_now().remove(0) {
        Err(ClusterError::NodeUnavailable { node, .. }) => assert_eq!(node, 0),
        other => panic!("expected NodeUnavailable, got {other:?}"),
    }
    // The call path survives the same liar with a structured error.
    let err = router.call(observe(1, 2), None).expect_err("liar cannot serve");
    assert!(err.is_failover());
    assert!(router.accounting().balances());
    drop(router);
    let _ = liar.join();
}
