//! Router integration: a real in-process fleet behind real sockets —
//! routing, accounting, failover from shipped replicas, zero-drift
//! live migration, runtime ring resizing, epoch fencing, replica
//! placement on ring successors, partition-shaped failures through a
//! chaos proxy, and hostile peers on the snapshot-ship path.

use cap_cluster::prelude::*;
use cap_faults::prelude::{ChaosProxy, NetFaultConfig, NetFaultPlan, PartitionMode};
use cap_service::prelude::{Request, Response, ServiceConfig};
use std::sync::Arc;
use std::time::Duration;

fn node_config() -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        queue_capacity: 64,
        ..ServiceConfig::default()
    }
}

fn start_fleet(n: usize) -> (Vec<LocalNode>, Router) {
    let nodes: Vec<LocalNode> = (0..n)
        .map(|_| LocalNode::start(node_config()).expect("start node"))
        .collect();
    let addrs: Vec<_> = nodes.iter().map(LocalNode::addr).collect();
    let router = Router::new(&addrs, RouterConfig::default()).expect("router");
    (nodes, router)
}

fn observe(ip: u64, actual: u64) -> Request {
    Request::Observe {
        ip,
        offset: 0,
        ghr: 0,
        actual,
    }
}

/// IPs that the router currently maps to `node`.
fn ips_owned_by(router: &Router, node: usize, want: usize) -> Vec<u64> {
    (0..100_000u64)
        .map(|i| 0x400 + i * 0x40)
        .filter(|&ip| router.node_for_ip(ip).0 == node)
        .take(want)
        .collect()
}

#[test]
fn fleet_routes_deterministically_and_accounts_every_request() {
    let (nodes, router) = start_fleet(3);

    // Train a stride per IP across the whole fleet.
    let ips: Vec<u64> = (0..60u64).map(|i| 0x1000 + i * 0x100).collect();
    let mut sent = 0u64;
    for round in 0..50u64 {
        for &ip in &ips {
            let resp = router
                .call(
                    observe(ip, 0x8000 + ip + round * 8),
                    Some(Duration::from_secs(2)),
                )
                .expect("routed observe");
            assert!(matches!(resp, Response::Observed { .. }));
            sent += 1;
        }
    }

    // Same IP, same node, every time; answers span more than one node.
    let owners: Vec<usize> = ips.iter().map(|&ip| router.node_for_ip(ip).0).collect();
    assert_eq!(
        owners,
        ips.iter()
            .map(|&ip| router.node_for_ip(ip).0)
            .collect::<Vec<_>>()
    );
    let distinct: std::collections::BTreeSet<_> = owners.iter().copied().collect();
    assert!(distinct.len() > 1, "60 IPs must spread across the fleet");

    let acct = router.accounting();
    assert!(acct.balances(), "accounting must balance: {acct:?}");
    assert_eq!(acct.accepted, sent);
    assert_eq!(acct.answered, sent, "a healthy fleet answers everything");

    // The fleet obs view is the sum of the per-node views.
    let (merged, reporting) = router.fleet_obs();
    assert_eq!(reporting, 3);
    assert_eq!(
        merged.counter(cap_service::names::SERVED),
        Some(sent),
        "merged fleet telemetry accounts every served request"
    );

    for node in nodes {
        node.stop(Duration::from_millis(200)).expect("stop node");
    }
}

#[test]
fn failover_promotes_the_shipped_replica_with_an_exact_drift_bound() {
    let (mut nodes, router) = start_fleet(3);
    let router = Arc::new(router);
    let victim = 0usize;
    let ips = ips_owned_by(&router, victim, 8);
    assert_eq!(ips.len(), 8);

    // Phase 1: traffic, then ship replicas of the whole fleet.
    for round in 0..30u64 {
        for &ip in &ips {
            router
                .call(observe(ip, 0x5000 + round * 8), None)
                .expect("observe");
        }
    }
    for shipped in router.ship_now() {
        shipped.expect("every node ships");
    }
    assert_eq!(router.drift(victim), 0, "a ship resets the drift counter");

    // Phase 2: exactly 24 more requests land on the victim → drift 24.
    for round in 0..3u64 {
        for &ip in &ips {
            router
                .call(observe(ip, 0x6000 + round * 8), None)
                .expect("observe");
        }
    }
    assert_eq!(router.drift(victim), 24);

    // The victim dies (stopped out from under the router).
    let dead = nodes.remove(victim);
    dead.stop(Duration::from_millis(200)).expect("victim exits");

    // Calls to its shards now fail, attributed to failover — and the
    // accounting still balances.
    let before = router.accounting();
    let err = router
        .call(observe(ips[0], 0x7000), None)
        .expect_err("dead node");
    assert!(err.is_failover(), "got {err:?}");
    let after = router.accounting();
    assert_eq!(after.failover_attributed, before.failover_attributed + 1);
    assert!(after.balances());

    // Promote the shipped replica: bounded, measured drift.
    let (replica, drift) = router.replica(victim).expect("replica was shipped");
    assert_eq!(drift, 24, "drift bound is exact, not estimated");
    let replacement = LocalNode::start_restored(node_config(), &replica).expect("warm replica");
    let epoch_before = router.epoch();
    let epoch = router
        .promote(victim, replacement.addr(), None)
        .expect("promotion");
    assert_eq!(epoch, epoch_before + 1, "promotion flips the routing epoch");

    // Traffic to the victim's shards flows again, same routing.
    for &ip in &ips {
        router
            .call(observe(ip, 0x9000), None)
            .expect("served by replacement");
        assert_eq!(router.node_for_ip(ip).0, victim, "routing never moved");
    }
    assert!(router.accounting().balances());

    replacement
        .stop(Duration::from_millis(200))
        .expect("stop replacement");
    for node in nodes {
        node.stop(Duration::from_millis(200)).expect("stop node");
    }
}

#[test]
fn live_migration_is_provably_zero_drift() {
    let (mut nodes, router) = start_fleet(3);
    let moving = 1usize;
    let ips = ips_owned_by(&router, moving, 6);

    for round in 0..40u64 {
        for &ip in &ips {
            router
                .call(observe(ip, 0x4000 + round * 16), None)
                .expect("observe");
        }
    }

    // Drain: the final archive is pulled with the node quiesced, and
    // requests meanwhile get the retryable Migrating error without ever
    // touching the node.
    let final_archive = router.drain_node(moving).expect("drain");
    match router.call(observe(ips[0], 0xA000), None) {
        Err(ClusterError::Migrating { node }) => assert_eq!(node, moving),
        other => panic!("expected Migrating, got {other:?}"),
    }
    assert!(
        router
            .call(observe(ips[0], 0xA000), None)
            .expect_err("still gated")
            .retry_is_exactly_once(),
        "migration errors must be safe to retry"
    );

    // A *cold* replacement fails the differential-twin proof...
    let impostor = LocalNode::start(node_config()).expect("cold node");
    match router.promote(moving, impostor.addr(), Some(&final_archive)) {
        Err(ClusterError::DriftDetected { node, .. }) => assert_eq!(node, moving),
        other => panic!("expected DriftDetected, got {other:?}"),
    }
    assert!(
        matches!(
            router.call(observe(ips[0], 0xA000), None),
            Err(ClusterError::Migrating { .. })
        ),
        "a failed proof leaves the node gated"
    );

    // ...and the restored twin passes it: bit-identical, zero drift.
    let replacement =
        LocalNode::start_restored(node_config(), &final_archive).expect("restored twin");
    let epoch = router
        .promote(moving, replacement.addr(), Some(&final_archive))
        .expect("zero-drift promotion");
    assert_eq!(epoch, 1);

    // The old node is retired only after the flip; traffic never gaps.
    let old = nodes.remove(moving);
    old.stop(Duration::from_millis(200))
        .expect("retire old node");
    for &ip in &ips {
        router
            .call(observe(ip, 0xB000), None)
            .expect("served post-flip");
    }
    assert!(router.accounting().balances());

    impostor
        .stop(Duration::from_millis(200))
        .expect("stop impostor");
    replacement
        .stop(Duration::from_millis(200))
        .expect("stop replacement");
    for node in nodes {
        node.stop(Duration::from_millis(200)).expect("stop node");
    }
}

#[test]
fn a_lying_node_cannot_break_the_shipping_path() {
    // A "node" that answers every frame with a torn reply: announces a
    // big payload, sends half, hangs up.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind liar");
    let addr = listener.local_addr().expect("liar addr");
    let liar = std::thread::spawn(move || {
        for stream in listener.incoming().take(2) {
            let Ok(mut stream) = stream else { continue };
            let mut len = [0u8; 4];
            use std::io::{Read, Write};
            if stream.read_exact(&mut len).is_err() {
                continue;
            }
            let announced = u32::from_le_bytes(len) as usize;
            let mut payload = vec![0u8; announced];
            let _ = stream.read_exact(&mut payload);
            // Announce 4 KiB, deliver half, vanish mid-archive.
            let _ = stream.write_all(&4096u32.to_le_bytes());
            let _ = stream.write_all(&[0u8; 2048]);
        }
    });

    let router = Router::new(&[addr], RouterConfig::default()).expect("router");
    match router.ship_now().remove(0) {
        Err(ClusterError::NodeUnavailable { node, .. }) => assert_eq!(node, 0),
        other => panic!("expected NodeUnavailable, got {other:?}"),
    }
    // The call path survives the same liar with a structured error.
    let err = router
        .call(observe(1, 2), None)
        .expect_err("liar cannot serve");
    assert!(err.is_failover());
    assert!(router.accounting().balances());
    drop(router);
    let _ = liar.join();
}

/// A hostile "node" that answers control frames correctly but tears
/// every `OP_SNAPSHOT_PULL` reply mid-stream: announces a 4 KiB
/// archive, delivers half, hangs up. Everything else gets a structured
/// protocol refusal.
fn spawn_hostile_pull_peer() -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    use cap_service::wire::{read_frame, write_frame, WireRequest, WireResponse};
    use std::io::Write;
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind hostile peer");
    let addr = listener.local_addr().expect("hostile addr");
    let join = std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { continue };
            while let Ok(Some(payload)) = read_frame(&mut stream) {
                match WireRequest::decode(&payload) {
                    Ok(WireRequest::Fence { .. }) => {
                        if write_frame(&mut stream, &WireResponse::FenceAck.encode()).is_err() {
                            break;
                        }
                    }
                    Ok(WireRequest::SnapshotPull) => {
                        let _ = stream.write_all(&4096u32.to_le_bytes());
                        let _ = stream.write_all(&[0u8; 2048]);
                        return; // mid-stream reset: drop listener and all
                    }
                    Ok(WireRequest::Shutdown { .. }) => {
                        let _ = write_frame(&mut stream, &WireResponse::ShutdownAck.encode());
                        return;
                    }
                    _ => {
                        let refuse = WireResponse::from_error(
                            &cap_service::prelude::ServiceError::Protocol("no".into()),
                        );
                        if write_frame(&mut stream, &refuse.encode()).is_err() {
                            break;
                        }
                    }
                }
            }
        }
    });
    (addr, join)
}

#[test]
fn a_mid_stream_reset_during_snapshot_pull_discards_the_partial_archive() {
    let (nodes, router) = start_fleet(1);
    let ips = ips_owned_by(&router, 0, 4);

    // A healthy ship first: the router holds a good replica.
    for round in 0..20u64 {
        for &ip in &ips {
            router
                .call(observe(ip, 0x3000 + round * 8), None)
                .expect("observe");
        }
    }
    router.ship_now().remove(0).expect("healthy ship");
    let (good, _) = router.replica(0).expect("good replica stored");

    // The node "goes hostile": a peer that acks fences but tears every
    // snapshot pull mid-archive. (Promotion reaches it because the
    // fence roundtrip — its reachability proof — succeeds.)
    let (hostile_addr, hostile) = spawn_hostile_pull_peer();
    nodes.into_iter().for_each(|n| {
        n.stop(Duration::from_millis(200))
            .expect("retire real node");
    });
    router
        .promote(0, hostile_addr, None)
        .expect("hostile acks the fence");

    // The migration pull tears mid-stream → a structured transport
    // failure, never a panic, never a partial archive.
    match router.drain_node(0) {
        Err(ClusterError::NodeUnavailable { node, .. }) => assert_eq!(node, 0),
        other => panic!("expected NodeUnavailable, got {other:?}"),
    }

    // The partial archive was discarded: the router still holds the
    // pre-reset replica byte for byte, and the node stays gated.
    let (still, _) = router.replica(0).expect("replica survives the torn pull");
    assert_eq!(
        still, good,
        "a torn pull must never replace the good replica"
    );
    assert!(matches!(
        router.call(observe(ips[0], 0xC000), None),
        Err(ClusterError::Migrating { .. })
    ));

    // Recovery still demands proof: a twin restored from the *good*
    // replica passes the byte-compare and takes over.
    let twin = LocalNode::start_restored(node_config(), &good).expect("twin");
    router
        .promote(0, twin.addr(), Some(&good))
        .expect("proven promotion");
    router
        .call(observe(ips[0], 0xD000), None)
        .expect("served post-promotion");
    assert!(router.accounting().balances());

    twin.stop(Duration::from_millis(200)).expect("stop twin");
    drop(router);
    let _ = hostile.join();
}

#[test]
fn replicas_land_on_ring_successors_and_survive_router_side_loss() {
    let (nodes, router) = start_fleet(3);
    let ips = ips_owned_by(&router, 0, 6);

    for round in 0..25u64 {
        for &ip in &ips {
            router
                .call(observe(ip, 0x2000 + round * 8), None)
                .expect("observe");
        }
    }
    for shipped in router.ship_now() {
        shipped.expect("every node ships");
    }

    // R = 2 (the default): shard 0's archive must be fetchable from its
    // ring successor, identical to the router-held copy, with the same
    // exact drift bound (the fetched generation is the newest ship).
    let (local, drift_local) = router.replica(0).expect("router-held replica");
    let (fetched, drift) = router
        .replica_from_successors(0)
        .expect("successor holds shard 0's replica");
    assert_eq!(fetched, local, "successor copy is byte-identical");
    assert_eq!(
        drift,
        Some(drift_local),
        "newest generation carries the exact bound"
    );
    assert_eq!(router.replica_any(0).expect("some copy survives").0, local);

    for node in nodes {
        node.stop(Duration::from_millis(200)).expect("stop node");
    }
}

#[test]
fn runtime_resize_moves_keys_minimally_and_fences_stale_epochs() {
    let (mut nodes, router) = start_fleet(3);
    let probe_ips: Vec<u64> = (0..2_000u64).map(|i| 0x400 + i * 0x40).collect();
    let owners_before: Vec<usize> = probe_ips
        .iter()
        .map(|&ip| router.node_for_ip(ip).0)
        .collect();

    // Grow: the new member takes over only the keys it wins.
    let grown = LocalNode::start(node_config()).expect("fourth node");
    let (new_index, epoch) = router.add_node(grown.addr()).expect("add node");
    assert_eq!((new_index, epoch), (3, 1));
    assert_eq!(router.live_node_count(), 4);
    let mut moved = 0usize;
    for (&ip, &before) in probe_ips.iter().zip(&owners_before) {
        let now = router.node_for_ip(ip).0;
        if now != before {
            assert_eq!(
                now, new_index,
                "key {ip:#x} moved {before}→{now}, not to the new node"
            );
            moved += 1;
        }
    }
    assert!(moved > 0, "a grown ring must hand the new member some keys");
    nodes.push(grown);

    // Traffic flows across the resized ring, including to the new node.
    for &ip in probe_ips.iter().take(200) {
        router
            .call(observe(ip, 0xE000), None)
            .expect("served post-grow");
    }

    // The resize re-fenced the fleet: a frame stamped with the old
    // epoch is refused by the node *before* training.
    let stale_victim = router.node_for_ip(probe_ips[0]).0;
    let mut stale = NodeLink::new(stale_victim, nodes[stale_victim].addr());
    match stale.serve(observe(probe_ips[0], 0xF000), None, Some(0)) {
        Err(ClusterError::Remote { code, .. }) => {
            assert_eq!(code, cap_service::prelude::ServiceError::FENCED_CODE);
        }
        other => panic!("expected a fence rejection, got {other:?}"),
    }
    // The router itself always stamps the current epoch, so its own
    // traffic still flows.
    router
        .call(observe(probe_ips[0], 0xF100), None)
        .expect("current epoch flows");

    // Shrink: removing a member strands only its keys and returns its
    // drift-free final archive.
    let owners_mid: Vec<usize> = probe_ips
        .iter()
        .map(|&ip| router.node_for_ip(ip).0)
        .collect();
    let (archive, epoch) = router.remove_node(1).expect("remove node");
    assert_eq!(epoch, 2);
    assert!(
        archive
            .expect("reachable node yields a final archive")
            .len()
            > 8
    );
    assert_eq!(router.live_node_count(), 3);
    for (&ip, &mid) in probe_ips.iter().zip(&owners_mid) {
        let now = router.node_for_ip(ip).0;
        assert_ne!(now, 1, "retired members own nothing");
        if mid != 1 {
            assert_eq!(
                now, mid,
                "key {ip:#x} moved though member 1 owned neither end"
            );
        }
    }
    for &ip in probe_ips.iter().take(200) {
        router
            .call(observe(ip, 0xF200), None)
            .expect("served post-shrink");
    }
    assert!(router.accounting().balances());

    for node in nodes {
        // Node 1 was removed from the ring but its process is still
        // running; a plain stop covers all of them.
        node.stop(Duration::from_millis(200)).expect("stop node");
    }
}

#[test]
fn a_black_hole_partition_reads_as_timeouts_and_the_breaker_recovers_after_heal() {
    // One real node reached only through a chaos proxy. Latency just
    // *below* the read deadline must not trip anything; a black-hole
    // partition must surface as the timeout signature, trip the
    // breaker, and heal cleanly through the half-open probe.
    let node = LocalNode::start(node_config()).expect("node");
    let proxy = ChaosProxy::start(
        node.addr(),
        NetFaultPlan::new(0xB1AC, NetFaultConfig::quiet()),
    )
    .expect("proxy");
    let config = RouterConfig {
        read_timeout: Some(Duration::from_millis(250)),
        breaker: cap_service::breaker::BreakerConfig {
            failure_threshold: 2,
            close_after: 1,
            cooldown: Duration::from_millis(100),
            jitter: Duration::from_millis(0),
        },
        ..RouterConfig::default()
    };
    let router = Router::new(&[proxy.addr()], config).expect("router");

    router
        .call(observe(0x1000, 0x11), None)
        .expect("clean pipe serves");

    // Latency just below the deadline: slow but healthy.
    let slow = ChaosProxy::start(
        node.addr(),
        NetFaultPlan::new(
            0x0510,
            NetFaultConfig {
                p_latency: 1.0,
                latency_ms: (100, 100),
                ..NetFaultConfig::quiet()
            },
        ),
    )
    .expect("slow proxy");
    let slow_router = Router::new(
        &[slow.addr()],
        RouterConfig {
            read_timeout: Some(Duration::from_millis(250)),
            ..RouterConfig::default()
        },
    )
    .expect("slow router");
    for i in 0..3u64 {
        slow_router
            .call(observe(0x2000 + i, 0x22), None)
            .expect("sub-deadline latency still serves");
    }
    slow.stop();

    // Black hole: frames are swallowed before forwarding → the timeout
    // signature, twice → breaker open → refusals without an attempt.
    proxy.set_partition(PartitionMode::BlackHole);
    for _ in 0..2 {
        let err = router
            .call(observe(0x1000, 0x33), None)
            .expect_err("black-holed");
        assert!(err.is_partition_suspect(), "got {err:?}");
    }
    match router
        .call(observe(0x1000, 0x44), None)
        .expect_err("breaker open")
    {
        ClusterError::NodeUnavailable { kind, .. } => {
            assert_eq!(kind, UnavailableKind::Breaker);
        }
        other => panic!("expected a breaker refusal, got {other:?}"),
    }
    let dropped = proxy.stats().frames_dropped_partition;
    assert!(
        dropped >= 2,
        "the proxy swallowed {dropped} frames pre-forward"
    );

    // Heal → cooldown → the half-open probe succeeds → traffic flows.
    proxy.heal();
    std::thread::sleep(Duration::from_millis(150));
    let probed = router.probe_now().remove(0);
    assert!(probed.is_ok(), "half-open probe after heal: {probed:?}");
    router
        .call(observe(0x1000, 0x55), None)
        .expect("served after heal");
    assert!(router.accounting().balances());

    proxy.stop();
    node.stop(Duration::from_millis(200)).expect("stop node");
}

#[test]
fn latency_above_the_deadline_is_the_partition_signature() {
    let node = LocalNode::start(node_config()).expect("node");
    let proxy = ChaosProxy::start(
        node.addr(),
        NetFaultPlan::new(
            0xDEAD,
            NetFaultConfig {
                p_latency: 1.0,
                latency_ms: (600, 600),
                ..NetFaultConfig::quiet()
            },
        ),
    )
    .expect("proxy");
    let router = Router::new(
        &[proxy.addr()],
        RouterConfig {
            read_timeout: Some(Duration::from_millis(150)),
            ..RouterConfig::default()
        },
    )
    .expect("router");
    let err = router
        .call(observe(0x9999, 0x1), None)
        .expect_err("over deadline");
    assert!(err.is_partition_suspect(), "got {err:?}");
    assert!(router.accounting().balances());
    proxy.stop();
    node.stop(Duration::from_millis(200)).expect("stop node");
}
