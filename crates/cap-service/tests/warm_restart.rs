//! Warm-restart differential: drain → snapshot → restore → serve must
//! be invisible to the predictors. A service that serves a trace in one
//! uninterrupted run and a service that is shut down mid-trace and
//! restored from its snapshot must end with **bit-identical** predictor
//! metrics — same loads, same predictions, same hits.

use cap_service::prelude::*;
use std::time::Duration;

const TRACE_LEN: u64 = 4_000;
const SPLIT: u64 = 1_700; // deliberately not a round fraction

fn config() -> ServiceConfig {
    ServiceConfig {
        workers: 3,
        queue_capacity: 32,
        seed: 0x0DD_B17,
        ..ServiceConfig::default()
    }
}

/// A deterministic trace with real structure: a few stride streams and
/// a pointer-chasing stream whose addresses depend on the index.
fn event(i: u64) -> Request {
    let lane = i % 5;
    let ip = 0x400 + lane * 0x40;
    let actual = match lane {
        0 => 0x1_0000 + i * 8,                      // unit stride
        1 => 0x2_0000 + i * 24,                     // wide stride
        2 => 0x3_0000 + (i % 7) * 0x100,            // short period
        3 => 0x4_0000 + i.wrapping_mul(0x9E37) % 0x800, // scrambled
        _ => 0x5_0000 + (i / 5) * 16,               // per-lane stride
    };
    Request::Observe {
        ip,
        offset: 0,
        ghr: i & 0x3F,
        actual,
    }
}

fn drive(handle: &ServiceHandle, range: std::ops::Range<u64>) {
    for i in range {
        handle
            .call(event(i), None)
            .expect("deterministic fault-free serving cannot fail");
    }
}

#[test]
fn restored_service_is_bit_identical_to_an_uninterrupted_one() {
    // Reference: one service serves the whole trace.
    let reference = Service::start(config());
    drive(&reference.handle(), 0..TRACE_LEN);
    let expected = reference.handle().stats().expect("reference stats");
    let _ = reference.shutdown(Duration::from_millis(200));

    // Subject: serve a prefix, drain + snapshot, restore, serve the rest.
    let first = Service::start(config());
    drive(&first.handle(), 0..SPLIT);
    let report = first.shutdown(Duration::from_secs(1));
    assert_eq!(report.drain_rejected, 0, "nothing was in flight at drain");

    let second =
        Service::start_restored(config(), &report.snapshot).expect("snapshot restores");
    drive(&second.handle(), SPLIT..TRACE_LEN);
    let restored = second.handle().stats().expect("restored stats");

    // The differential: merged predictor metrics are bit-identical,
    // and so is every per-worker breakdown (routing is deterministic).
    assert_eq!(
        expected.merged_predictor(),
        restored.merged_predictor(),
        "warm restart changed predictor behavior"
    );
    for (e, r) in expected.workers.iter().zip(&restored.workers) {
        assert_eq!(e.predictor, r.predictor, "worker {} diverged", e.worker);
    }

    // And the restored service keeps learning: a second restart chains.
    let report2 = second.shutdown(Duration::from_secs(1));
    let third =
        Service::start_restored(config(), &report2.snapshot).expect("snapshot chains");
    let after = third.handle().stats().expect("chained stats");
    assert_eq!(after.merged_predictor(), restored.merged_predictor());
    let _ = third.shutdown(Duration::from_millis(200));
}

#[test]
fn every_corrupt_snapshot_degrades_to_cold_start() {
    // Build one genuine snapshot, then mangle it in assorted ways; the
    // tolerant path must always produce a *working* cold service.
    let donor = Service::start(config());
    drive(&donor.handle(), 0..64);
    let good = donor.shutdown(Duration::from_millis(200)).snapshot;

    let mut mangled: Vec<Vec<u8>> = vec![
        Vec::new(),                      // empty
        b"not a snapshot".to_vec(),      // garbage
        good[..good.len() / 2].to_vec(), // truncated
    ];
    let mut flipped = good.clone();
    flipped[good.len() / 3] ^= 0xFF; // CRC-detectable corruption
    mangled.push(flipped);

    for bytes in mangled {
        let (service, used_snapshot) = Service::restore_or_cold(config(), Some(&bytes));
        assert!(!used_snapshot, "corrupt snapshot must not be trusted");
        // Cold but alive: it serves and reports zeroed metrics.
        service.handle().call(event(0), None).expect("cold service serves");
        let stats = service.handle().stats().expect("cold stats");
        assert_eq!(stats.merged_predictor().loads, 1);
        let _ = service.shutdown(Duration::from_millis(200));
    }

    // The pristine snapshot, by contrast, is used.
    let (warm, used_snapshot) = Service::restore_or_cold(config(), Some(&good));
    assert!(used_snapshot);
    assert_eq!(warm.handle().stats().expect("warm stats").merged_predictor().loads, 64);
    let _ = warm.shutdown(Duration::from_millis(200));
}
