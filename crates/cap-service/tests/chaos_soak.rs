//! Chaos soak: hammer the service from many client threads while a
//! seeded fault plan injects worker panics, latency spikes, and queue
//! stalls, then prove the three load-bearing claims:
//!
//! 1. **No deadlocks** — every one of the ≥10k calls returns (the test
//!    finishing at all is the proof; `ReplyTimeout`/`WorkerLost` would
//!    flag a wedged or dead worker and must be zero).
//! 2. **No silent drops** — replies (ok + structured errors) exactly
//!    equal requests, and the server-side accounting agrees.
//! 3. **Recovery** — the ladder demoted under fire and climbs back to
//!    the top rung once the chaos stops.

use cap_faults::service::ServiceFaultConfig;
use cap_service::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CLIENTS: usize = 8;
const PER_CLIENT: u64 = 1_500;
const TOTAL: u64 = CLIENTS as u64 * PER_CLIENT; // 12k ≥ the 10k floor

/// Tallies of every way a call can end.
#[derive(Default)]
struct Tally {
    ok: AtomicU64,
    shed: AtomicU64,
    deadline: AtomicU64,
    panicked: AtomicU64,
    shutting_down: AtomicU64,
    reply_timeout: AtomicU64,
    worker_lost: AtomicU64,
    other: AtomicU64,
}

impl Tally {
    fn count(&self, outcome: &Result<Response, ServiceError>) {
        let cell = match outcome {
            Ok(_) => &self.ok,
            Err(ServiceError::Shed { .. }) => &self.shed,
            Err(ServiceError::DeadlineExceeded { .. }) => &self.deadline,
            Err(ServiceError::BackendPanicked { .. }) => &self.panicked,
            Err(ServiceError::ShuttingDown) => &self.shutting_down,
            Err(ServiceError::ReplyTimeout { .. }) => &self.reply_timeout,
            Err(ServiceError::WorkerLost { .. }) => &self.worker_lost,
            Err(_) => &self.other,
        };
        cell.fetch_add(1, Ordering::Relaxed);
    }

    fn total(&self) -> u64 {
        self.ok.load(Ordering::Relaxed)
            + self.shed.load(Ordering::Relaxed)
            + self.deadline.load(Ordering::Relaxed)
            + self.panicked.load(Ordering::Relaxed)
            + self.shutting_down.load(Ordering::Relaxed)
            + self.reply_timeout.load(Ordering::Relaxed)
            + self.worker_lost.load(Ordering::Relaxed)
            + self.other.load(Ordering::Relaxed)
    }
}

fn soak_config() -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        // Tight queue so stalls genuinely push depth into shedding
        // territory under 8 concurrent clients.
        queue_capacity: 4,
        breaker: BreakerConfig {
            // Aggressive: trips become common enough to drive real
            // ladder movement inside a 12k-request soak.
            failure_threshold: 3,
            close_after: 2,
            cooldown: Duration::from_millis(20),
            jitter: Duration::from_millis(5),
        },
        ladder: LadderConfig {
            promote_after: 16,
            pressure_high: 3,
            pressure_low: 1,
        },
        seed: 0xC4A0_5EED,
        ..ServiceConfig::default()
    }
}

fn chaos() -> ServiceFaultConfig {
    ServiceFaultConfig {
        // High enough that 3-consecutive-panic breaker trips happen
        // (0.15^3 ≈ 3.4e-3 per request → dozens over 12k requests).
        p_panic: 0.15,
        p_latency: 0.02,
        p_stall: 0.005,
        latency_ms: (1, 2),
        stall_ms: (1, 3),
    }
}

#[test]
fn soak_under_chaos_never_drops_and_recovers_to_the_top_rung() {
    // Injected panics are contained by design; keep hundreds of them
    // from flooding the test log while letting real failures print.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|s| s.contains("injected worker panic"));
        if !injected {
            default_hook(info);
        }
    }));

    let mut config = soak_config();
    config.chaos = Some((0xD150_4DE3, chaos()));
    let registry = Arc::new(cap_obs::Registry::new());
    config.obs = registry.obs();
    let service = Service::start(config);
    let handle = service.handle();
    let tally = Arc::new(Tally::default());

    let start = Instant::now();
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let handle = handle.clone();
            let tally = Arc::clone(&tally);
            std::thread::spawn(move || {
                for i in 0..PER_CLIENT {
                    let ip = 0x400 + ((c as u64 * PER_CLIENT + i) % 64) * 4;
                    let request = Request::Observe {
                        ip,
                        offset: 0,
                        ghr: i & 0xFF,
                        actual: 0x0010_0000 + ip * 0x100 + (i % 16) * 8,
                    };
                    // Every 7th request carries a tight budget so the
                    // deadline machinery sees real expiries under
                    // injected latency.
                    let budget = (i % 7 == 0).then(|| Duration::from_millis(2));
                    tally.count(&handle.call(request, budget));
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client threads themselves never panic");
    }
    let soak_elapsed = start.elapsed();

    // Claim 2: nothing dropped — one reply per request, and the server
    // agrees about what it admitted and shed.
    assert_eq!(tally.total(), TOTAL, "every request got exactly one reply");
    assert_eq!(tally.reply_timeout.load(Ordering::Relaxed), 0, "no wedged worker");
    assert_eq!(tally.worker_lost.load(Ordering::Relaxed), 0, "no dead worker");
    assert_eq!(tally.other.load(Ordering::Relaxed), 0, "no unexpected error kinds");
    assert_eq!(tally.shutting_down.load(Ordering::Relaxed), 0, "nobody saw shutdown");

    let stats = handle.stats().expect("stats after soak");
    assert_eq!(
        stats.accepted + stats.shed,
        TOTAL + stats.workers.len() as u64, // the stats call itself probes each worker
        "admission accounting covers every submission"
    );
    assert_eq!(stats.shed, tally.shed.load(Ordering::Relaxed), "shed counts agree");

    // The chaos was real: panics were contained and charged, breakers
    // tripped, the ladder demoted.
    let panics: u64 = stats.workers.iter().map(|w| w.backend_panics).sum();
    let trips: u64 = stats
        .workers
        .iter()
        .flat_map(|w| w.breakers.iter().map(|b| b.trips))
        .sum();
    let demotions: u64 = stats.workers.iter().map(|w| w.demotions).sum();
    assert!(panics > 100, "expected heavy injected panics, saw {panics}");
    assert!(trips > 0, "breakers never tripped — chaos too gentle");
    assert!(demotions > 0, "ladder never demoted — soak exercised nothing");
    assert!(
        tally.panicked.load(Ordering::Relaxed) > 0,
        "panic containment surfaced as structured errors"
    );

    // Claim 3: recovery. Chaos off, healthy traffic in, every worker
    // must climb back to the top rung.
    handle.set_chaos(None);
    let recovery_deadline = Instant::now() + Duration::from_secs(30);
    loop {
        for i in 0..200u64 {
            let _ = handle.call(
                Request::Observe {
                    ip: 0x400 + (i % 64) * 4,
                    offset: 0,
                    ghr: 0,
                    actual: 0x0020_0000 + i * 8,
                },
                None,
            );
        }
        let now = handle.stats().expect("stats during recovery");
        if now.worst_rung() == Rung::Hybrid {
            break;
        }
        assert!(
            Instant::now() < recovery_deadline,
            "ladder failed to return to hybrid; stuck at {:?}",
            now.worst_rung()
        );
    }

    // The telemetry registry is a *view* over the same events the
    // legacy counters witnessed — after a 12k-request chaos soak plus
    // the recovery traffic, the two accountings must still agree
    // exactly, counter for counter.
    let stats = handle.stats().expect("final stats");
    let snap = registry.snapshot();
    let counter = |name: &str| snap.counter(name).unwrap_or(0);
    assert_eq!(counter(cap_service::names::ACCEPTED), stats.accepted);
    assert_eq!(counter(cap_service::names::SHED), stats.shed);
    assert_eq!(
        counter(cap_service::names::REJECTED_SHUTDOWN),
        stats.rejected_shutdown
    );
    let served: u64 = stats.workers.iter().map(|w| w.served).sum();
    assert_eq!(counter(cap_service::names::SERVED), served);
    assert_eq!(
        counter(cap_service::names::BACKEND_PANIC),
        stats.workers.iter().map(|w| w.backend_panics).sum::<u64>()
    );
    for rung in Rung::ALL {
        let by_rung: u64 = stats
            .workers
            .iter()
            .map(|w| w.served_by_rung[rung.index()])
            .sum();
        let hist_count = snap
            .histogram(cap_service::names::LATENCY_BY_RUNG[rung.index()])
            .map_or(0, |h| h.count);
        assert_eq!(hist_count, by_rung, "latency histogram count for {rung:?}");
    }
    assert_eq!(
        cap_predictor::metrics::PredictorStats::from_obs_snapshot(&snap),
        stats.merged_predictor(),
        "pred.* registry counters reconcile with the merged legacy view"
    );

    // Graceful exit with nothing in flight drains cleanly.
    let report = service.shutdown(Duration::from_millis(500));
    assert_eq!(report.drain_rejected, 0);
    assert!(!report.snapshot.is_empty());

    // Sanity on wall-clock: the soak is bounded work, not a hang that
    // happened to finish (12k requests with millisecond faults).
    assert!(
        soak_elapsed < Duration::from_secs(120),
        "soak took {soak_elapsed:?}; something is serializing"
    );
}
