//! TCP front-end integration: a real socket server over a real
//! service, exercised by real clients — including a hostile one.

use cap_service::prelude::*;
use cap_service::wire::{write_frame, MAX_FRAME_LEN, WIRE_VERSION};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

fn spawn_server() -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<ShutdownReport>,
) {
    let service = Service::start(ServiceConfig {
        workers: 2,
        queue_capacity: 32,
        ..ServiceConfig::default()
    });
    let server = TcpServer::bind(
        ("127.0.0.1", 0),
        service.handle(),
        debug_stats_renderer(),
    )
    .expect("bind on loopback");
    let addr = server.local_addr().expect("resolved addr");
    let join = std::thread::spawn(move || {
        let drain = server.run().expect("accept loop");
        service.shutdown(drain)
    });
    (addr, join)
}

#[test]
fn tcp_clients_observe_predict_stat_and_shut_down() {
    let (addr, join) = spawn_server();

    // A well-behaved client teaches the service a stride and watches it
    // become predictable over the wire.
    let mut client = TcpClient::connect(addr).expect("connect");
    let mut last_correct = false;
    for i in 0..300u64 {
        let resp = client
            .serve(
                Request::Observe {
                    ip: 0x400,
                    offset: 0,
                    ghr: 0,
                    actual: 0x8000 + i * 8,
                },
                Some(Duration::from_secs(1)),
            )
            .expect("observe over tcp");
        match resp {
            WireResponse::Response(Response::Observed { correct, rung, .. }) => {
                last_correct = correct;
                assert_eq!(rung, Rung::Hybrid);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert!(last_correct, "stride learned over the wire");

    // A second concurrent connection reads predictions and stats.
    let mut other = TcpClient::connect(addr).expect("second connect");
    match other
        .serve(
            Request::Predict {
                ip: 0x400,
                offset: 0,
                ghr: 0,
            },
            None,
        )
        .expect("predict over tcp")
    {
        WireResponse::Response(Response::Predicted { addr, .. }) => {
            assert!(addr.is_some(), "trained load predicts an address");
        }
        resp => panic!("unexpected response {resp:?}"),
    }
    match other.stats().expect("stats over tcp") {
        WireResponse::Stats(doc) => assert!(doc.contains("accepted"), "got {doc}"),
        resp => panic!("unexpected response {resp:?}"),
    }

    // Graceful shutdown over the wire: ack, then the server drains and
    // snapshots.
    match client.shutdown(Duration::from_millis(300)).expect("shutdown") {
        WireResponse::ShutdownAck => {}
        resp => panic!("unexpected response {resp:?}"),
    }
    let report = join.join().expect("server thread");
    assert!(!report.snapshot.is_empty());
    let stats_loads = report
        .workers
        .iter()
        .map(|w| w.predictor.loads)
        .sum::<u64>();
    assert_eq!(stats_loads, 300, "every observed load landed in the final state");
}

#[test]
fn obs_stats_frame_carries_per_rung_latency_over_the_wire() {
    let registry = std::sync::Arc::new(cap_obs::Registry::new());
    let service = Service::start(ServiceConfig {
        workers: 2,
        queue_capacity: 32,
        obs: registry.obs(),
        ..ServiceConfig::default()
    });
    let exporter: ObsExporter = {
        let registry = std::sync::Arc::clone(&registry);
        std::sync::Arc::new(move || registry.snapshot().encode())
    };
    let server = TcpServer::bind(("127.0.0.1", 0), service.handle(), debug_stats_renderer())
        .expect("bind on loopback")
        .with_obs_exporter(exporter);
    let addr = server.local_addr().expect("resolved addr");
    let join = std::thread::spawn(move || {
        let drain = server.run().expect("accept loop");
        service.shutdown(drain)
    });

    let mut client = TcpClient::connect(addr).expect("connect");
    for i in 0..200u64 {
        client
            .serve(
                Request::Observe {
                    ip: 0x400 + (i % 8) * 4,
                    offset: 0,
                    ghr: 0,
                    actual: 0x8000 + i * 8,
                },
                Some(Duration::from_secs(1)),
            )
            .expect("observe over tcp");
    }

    let snap = client.obs_stats().expect("obs stats over the wire");
    assert_eq!(
        snap.counter(cap_service::names::SERVED),
        Some(200),
        "every served request is visible in the wire snapshot"
    );
    let hybrid = snap
        .histogram(cap_service::names::LATENCY_BY_RUNG[Rung::Hybrid.index()])
        .expect("per-rung latency histogram travels the wire");
    assert_eq!(hybrid.count, 200);
    assert!(hybrid.p50() <= hybrid.p99(), "quantiles are ordered");
    assert!(hybrid.p99() <= hybrid.max);

    let _ = client.shutdown(Duration::from_millis(200));
    let _ = join.join();
}

#[test]
fn server_without_exporter_answers_with_an_empty_snapshot() {
    let (addr, join) = spawn_server();
    let mut client = TcpClient::connect(addr).expect("connect");
    let snap = client.obs_stats().expect("obs stats probe");
    assert!(snap.is_empty(), "no exporter → empty snapshot, not an error");
    let _ = client.shutdown(Duration::from_millis(100));
    let _ = join.join();
}

#[test]
fn snapshot_pull_over_tcp_restores_a_live_twin() {
    let (addr, join) = spawn_server();
    let mut client = TcpClient::connect(addr).expect("connect");
    for i in 0..250u64 {
        client
            .serve(
                Request::Observe {
                    ip: 0x400 + (i % 4) * 0x40,
                    offset: 0,
                    ghr: 0,
                    actual: 0x8000 + i * 8,
                },
                Some(Duration::from_secs(1)),
            )
            .expect("observe over tcp");
    }

    // Pull a live archive; the server keeps serving afterwards.
    let archive = client.pull_snapshot().expect("snapshot pull");
    assert!(!archive.is_empty());
    client
        .serve(
            Request::Predict {
                ip: 0x400,
                offset: 0,
                ghr: 0,
            },
            None,
        )
        .expect("server still serves after a pull");

    // The pulled bytes start a twin whose state matches the donor at
    // pull time.
    let twin = Service::start_restored(
        ServiceConfig {
            workers: 2,
            queue_capacity: 32,
            ..ServiceConfig::default()
        },
        &archive,
    )
    .expect("pulled archive restores");
    let loads = twin.handle().stats().unwrap().merged_predictor().loads;
    assert_eq!(loads, 250, "twin carries every observe up to the pull");
    let _ = twin.shutdown(Duration::from_millis(100));

    let _ = client.shutdown(Duration::from_millis(100));
    let _ = join.join();
}

#[test]
fn hostile_peers_get_structured_errors_not_crashes() {
    let (addr, join) = spawn_server();

    // Unknown opcode (behind a valid version byte): a structured
    // protocol error comes back and the connection stays usable.
    let mut stream = TcpStream::connect(addr).expect("connect raw");
    write_frame(&mut stream, &[WIRE_VERSION, 0xEE, 1, 2, 3]).expect("send junk opcode");
    let payload = cap_service::wire::read_frame(&mut stream)
        .expect("read")
        .expect("a reply, not a hangup");
    match WireResponse::decode(&payload).expect("decodable error") {
        WireResponse::Error { code, message } => {
            assert_eq!(code, ServiceError::Protocol(String::new()).code());
            assert!(message.contains("opcode"), "got {message}");
        }
        resp => panic!("unexpected response {resp:?}"),
    }

    // Wrong protocol version: refused by name, same connection usable.
    write_frame(&mut stream, &[WIRE_VERSION + 1, 2, 0, 0, 0, 0]).expect("send wrong version");
    let payload = cap_service::wire::read_frame(&mut stream)
        .expect("read")
        .expect("a reply, not a hangup");
    match WireResponse::decode(&payload).expect("decodable error") {
        WireResponse::Error { code, message } => {
            assert_eq!(code, ServiceError::Protocol(String::new()).code());
            assert!(message.contains("wire version"), "got {message}");
        }
        resp => panic!("unexpected response {resp:?}"),
    }

    // Oversized announced length: the server hangs up instead of
    // allocating; later clients are unaffected.
    let mut evil = TcpStream::connect(addr).expect("connect evil");
    evil.write_all(&((MAX_FRAME_LEN as u32) + 1).to_le_bytes())
        .expect("announce absurd frame");
    evil.write_all(&[0u8; 64]).expect("some bytes");
    // Torn frame on another connection: also just a disconnect.
    let mut torn = TcpStream::connect(addr).expect("connect torn");
    torn.write_all(&[9, 0, 0, 0, 1]).expect("partial frame");
    drop(torn);

    let mut healthy = TcpClient::connect(addr).expect("healthy client");
    match healthy
        .serve(
            Request::Predict {
                ip: 1,
                offset: 0,
                ghr: 0,
            },
            None,
        )
        .expect("service survived hostile peers")
    {
        WireResponse::Response(Response::Predicted { .. }) => {}
        resp => panic!("unexpected response {resp:?}"),
    }

    let _ = healthy.shutdown(Duration::from_millis(100));
    let _ = join.join();
}
