//! The structured error surface of the service.
//!
//! Every request submitted to the service terminates in exactly one of
//! two ways: a [`crate::service::Response`] or a [`ServiceError`]. There
//! is no third outcome — no silent drop, no hang — and the chaos soak
//! test holds the service to that contract under injected worker panics,
//! latency spikes, and queue stalls.

use cap_obs::{Classify, ErrorClass};
use std::fmt;
use std::time::Duration;

/// Why a request did not produce a normal response.
///
/// Each variant is *actionable* for a caller: shed and pressure errors
/// say "back off and retry", deadline errors say "your budget was too
/// small or the service too slow", shutdown errors say "stop sending".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// Admission control rejected the request: the worker's ingress
    /// queue was full. This is the explicit backpressure signal — the
    /// caller should slow down or retry later.
    Shed {
        /// Queue capacity that was exhausted.
        capacity: usize,
    },
    /// The request's deadline budget expired before a worker finished
    /// it. `stage` names where the budget ran out.
    DeadlineExceeded {
        /// Pipeline stage that observed the expiry (`"queued"` when the
        /// request aged out before processing, `"backend"` after).
        stage: &'static str,
        /// The budget the request carried.
        budget: Duration,
    },
    /// The service is draining or has shut down; no new work is
    /// accepted. Queued requests that could not be served within the
    /// drain deadline also get this error rather than vanishing.
    ShuttingDown,
    /// The worker thread processing this request panicked outside the
    /// backend sandbox and its reply channel was lost. The caller got
    /// this structured error instead of a hang.
    WorkerLost {
        /// Index of the worker that died.
        worker: usize,
    },
    /// A backend call panicked. The panic was contained, the breaker
    /// for that component recorded the failure, and the request was
    /// answered with this error.
    BackendPanicked {
        /// Name of the backend component that panicked.
        component: &'static str,
    },
    /// No reply arrived within the caller's patience window — a
    /// belt-and-braces bound so a caller can never block forever even
    /// if a worker wedges.
    ReplyTimeout {
        /// How long the caller waited.
        waited: Duration,
    },
    /// The service snapshot could not be decoded (warm restart refused
    /// it). Carries the underlying decode failure rendered as text.
    BadSnapshot(String),
    /// A wire-protocol frame was malformed.
    Protocol(String),
    /// A routed serve frame carried a stale routing epoch: this node is
    /// fenced at `fence` and refuses to train under anything else. The
    /// request was rejected *before* touching the backend, so a resend
    /// under the current epoch is exactly-once safe.
    Fenced {
        /// The epoch this node is fenced at.
        fence: u64,
        /// The stale epoch the frame carried.
        sent: u64,
    },
}

impl ServiceError {
    /// Stable wire code for the error class (used by the TCP protocol).
    #[must_use]
    pub fn code(&self) -> u8 {
        match self {
            ServiceError::Shed { .. } => 1,
            ServiceError::DeadlineExceeded { .. } => 2,
            ServiceError::ShuttingDown => 3,
            ServiceError::WorkerLost { .. } => 4,
            ServiceError::BackendPanicked { .. } => 5,
            ServiceError::ReplyTimeout { .. } => 6,
            ServiceError::BadSnapshot(_) => 7,
            ServiceError::Protocol(_) => 8,
            ServiceError::Fenced { .. } => 9,
        }
    }

    /// Stable wire code of [`ServiceError::Fenced`], for callers
    /// classifying structured errors that crossed the wire.
    pub const FENCED_CODE: u8 = 9;

    /// True for errors a caller may simply retry after backing off
    /// (shed, deadline, reply-timeout, contained panic); false for
    /// terminal ones. This is a view over [`Classify::error_class`].
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        self.error_class().is_retryable()
    }
}

impl Classify for ServiceError {
    fn error_class(&self) -> ErrorClass {
        match self {
            ServiceError::Shed { .. } => ErrorClass::Shed,
            ServiceError::DeadlineExceeded { .. }
            | ServiceError::ReplyTimeout { .. }
            | ServiceError::BackendPanicked { .. } => ErrorClass::Transient,
            // `WorkerLost` is permanent from the caller's perspective:
            // the request may have partially trained the backend, so a
            // blind resend can double-count.
            // `Fenced` is permanent *for the frame as sent*: the same
            // stale epoch will bounce forever. The router re-routes
            // under the current epoch instead of blind-resending.
            ServiceError::ShuttingDown
            | ServiceError::WorkerLost { .. }
            | ServiceError::Protocol(_)
            | ServiceError::Fenced { .. } => ErrorClass::Permanent,
            ServiceError::BadSnapshot(_) => ErrorClass::Corrupt,
        }
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Shed { capacity } => {
                write!(f, "request shed: ingress queue full (capacity {capacity})")
            }
            ServiceError::DeadlineExceeded { stage, budget } => {
                write!(f, "deadline exceeded in stage '{stage}' (budget {budget:?})")
            }
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::WorkerLost { worker } => {
                write!(f, "worker {worker} lost before replying")
            }
            ServiceError::BackendPanicked { component } => {
                write!(f, "backend '{component}' panicked (contained)")
            }
            ServiceError::ReplyTimeout { waited } => {
                write!(f, "no reply within {waited:?}")
            }
            ServiceError::BadSnapshot(why) => write!(f, "bad service snapshot: {why}"),
            ServiceError::Protocol(why) => write!(f, "protocol error: {why}"),
            ServiceError::Fenced { fence, sent } => {
                write!(f, "stale routing epoch {sent}: node is fenced at epoch {fence}")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_distinct() {
        let all = [
            ServiceError::Shed { capacity: 8 },
            ServiceError::DeadlineExceeded {
                stage: "queued",
                budget: Duration::from_millis(1),
            },
            ServiceError::ShuttingDown,
            ServiceError::WorkerLost { worker: 0 },
            ServiceError::BackendPanicked { component: "hybrid" },
            ServiceError::ReplyTimeout {
                waited: Duration::from_secs(1),
            },
            ServiceError::BadSnapshot("x".into()),
            ServiceError::Protocol("y".into()),
            ServiceError::Fenced { fence: 2, sent: 1 },
        ];
        let mut codes: Vec<u8> = all.iter().map(ServiceError::code).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), all.len());
    }

    #[test]
    fn retryability_classifies() {
        assert!(ServiceError::Shed { capacity: 1 }.is_retryable());
        assert!(!ServiceError::ShuttingDown.is_retryable());
        assert!(!ServiceError::Protocol("p".into()).is_retryable());
    }

    #[test]
    fn error_classes_span_the_taxonomy() {
        assert_eq!(ServiceError::Shed { capacity: 1 }.error_class(), ErrorClass::Shed);
        assert_eq!(
            ServiceError::ReplyTimeout { waited: Duration::from_secs(1) }.error_class(),
            ErrorClass::Transient
        );
        assert_eq!(ServiceError::ShuttingDown.error_class(), ErrorClass::Permanent);
        assert_eq!(ServiceError::BadSnapshot("x".into()).error_class(), ErrorClass::Corrupt);
        // The legacy predicate and the class-derived one agree on every
        // variant.
        for e in [
            ServiceError::Shed { capacity: 8 },
            ServiceError::DeadlineExceeded { stage: "queued", budget: Duration::from_millis(1) },
            ServiceError::ShuttingDown,
            ServiceError::WorkerLost { worker: 0 },
            ServiceError::BackendPanicked { component: "hybrid" },
            ServiceError::ReplyTimeout { waited: Duration::from_secs(1) },
            ServiceError::BadSnapshot("x".into()),
            ServiceError::Protocol("y".into()),
            ServiceError::Fenced { fence: 2, sent: 1 },
        ] {
            assert_eq!(e.is_retryable(), e.error_class().is_retryable(), "{e}");
        }
        assert_eq!(ServiceError::Fenced { fence: 2, sent: 1 }.code(), ServiceError::FENCED_CODE);
    }

    #[test]
    fn display_names_the_cause() {
        let e = ServiceError::DeadlineExceeded {
            stage: "backend",
            budget: Duration::from_millis(5),
        };
        assert!(e.to_string().contains("backend"));
        assert!(ServiceError::Shed { capacity: 64 }.to_string().contains("64"));
    }
}
