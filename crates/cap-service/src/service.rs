//! The multi-worker prediction service.
//!
//! Requests enter through a [`ServiceHandle`], are routed by load IP to
//! one of N worker threads over a **bounded** MPSC queue (admission
//! control sheds with a structured [`ServiceError::Shed`] instead of
//! queueing unboundedly), carry an optional **deadline budget** that is
//! honored at every pipeline stage, and are served on whatever rung of
//! the [`crate::ladder`] the worker currently trusts. Backend calls run
//! inside `catch_unwind` sandboxes charged to per-component
//! [`crate::breaker::CircuitBreaker`]s.
//!
//! The cardinal invariant, enforced structurally and proven by the
//! chaos soak test: **every accepted request terminates in exactly one
//! reply** — a response or a structured error — no matter what panics,
//! stalls, or deadline expiries happen on the way.

use crate::backend::BackendKind;
use crate::breaker::{BreakerConfig, CircuitBreaker};
use crate::error::ServiceError;
use crate::ladder::{Ladder, LadderConfig, LadderInputs, Rung};
use crate::names;
use cap_obs::Obs;
use cap_faults::service::{ServiceFault, ServiceFaultConfig, ServiceFaultPlan};
use cap_predictor::metrics::PredictorStats;
use cap_predictor::types::{LoadContext, Prediction, SharedPredictor};
use cap_snapshot::{
    Restorable, SectionReader, SectionWriter, Snapshot, SnapshotArchive, SnapshotBuilder,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Snapshot format version of the service archive.
const SERVICE_SNAPSHOT_VERSION: u32 = 1;
const SEC_SERVICE: &str = "service";

/// Everything the service needs to start.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker (shard) count; requests are routed by load IP.
    pub workers: usize,
    /// Per-worker ingress queue capacity — the backpressure bound.
    pub queue_capacity: usize,
    /// Primary backend (top rung).
    pub primary: BackendKind,
    /// Fallback backend (middle rung).
    pub fallback: BackendKind,
    /// Ladder tuning (promotion streak, pressure watermarks).
    pub ladder: LadderConfig,
    /// Breaker tuning (thresholds, cooldown, jitter).
    pub breaker: BreakerConfig,
    /// Seed for every random stream the service owns (breaker jitter);
    /// worker `i`'s streams derive from `seed + i`.
    pub seed: u64,
    /// Pin every worker to one rung and disable ladder movement
    /// (benches pricing a rung; operational overrides).
    pub pin_rung: Option<Rung>,
    /// Initial chaos plan per worker (worker `i` draws from
    /// `chaos_seed + i`); also settable at runtime via
    /// [`ServiceHandle::set_chaos`].
    pub chaos: Option<(u64, ServiceFaultConfig)>,
    /// Upper bound on how long a caller waits for any reply — the
    /// belt-and-braces guarantee that a caller can never hang.
    pub reply_patience: Duration,
    /// Telemetry sink shared by admission control, every worker, their
    /// breakers, the ladder, and the backends. The default
    /// [`Obs::off`] keeps every hot-path mirror at a single branch.
    /// Never snapshotted: a warm restart comes up with whatever `obs`
    /// its own config carries.
    pub obs: Obs,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 64,
            primary: BackendKind::Hybrid,
            fallback: BackendKind::Stride,
            ladder: LadderConfig::default(),
            breaker: BreakerConfig::default(),
            seed: 0x5EB5_1CE5,
            pin_rung: None,
            chaos: None,
            reply_patience: Duration::from_secs(30),
            obs: Obs::off(),
        }
    }
}

/// A request to the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// Predict, then train with the resolved address — the serving
    /// analogue of one trace event through the batch driver.
    Observe {
        /// Static IP of the load.
        ip: u64,
        /// Immediate offset from the opcode.
        offset: i32,
        /// Global branch-history register at fetch.
        ghr: u64,
        /// The load's actual effective address.
        actual: u64,
    },
    /// Predict only; trains nothing.
    Predict {
        /// Static IP of the load.
        ip: u64,
        /// Immediate offset from the opcode.
        offset: i32,
        /// Global branch-history register at fetch.
        ghr: u64,
    },
}

impl Request {
    fn ip(&self) -> u64 {
        match self {
            Request::Observe { ip, .. } | Request::Predict { ip, .. } => *ip,
        }
    }
}

/// A successful reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Reply to [`Request::Observe`].
    Observed {
        /// Predicted address, if the active rung produced one.
        addr: Option<u64>,
        /// Whether confidence allowed speculation.
        speculate: bool,
        /// Whether the prediction matched the actual address.
        correct: bool,
        /// Rung the request was served on.
        rung: Rung,
    },
    /// Reply to [`Request::Predict`].
    Predicted {
        /// Predicted address, if the active rung produced one.
        addr: Option<u64>,
        /// Whether confidence allowed speculation.
        speculate: bool,
        /// Rung the request was served on.
        rung: Rung,
    },
}

/// The state of one breaker, as reported in stats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerStat {
    /// Backend component the breaker guards.
    pub component: &'static str,
    /// Current state name (`closed` / `open` / `half-open`).
    pub state: &'static str,
    /// Lifetime Closed→Open transitions.
    pub trips: u64,
}

/// One worker's view of the world.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerStats {
    /// Worker index.
    pub worker: usize,
    /// Rung the worker is currently serving on.
    pub rung: Rung,
    /// Prediction requests served with a normal response.
    pub served: u64,
    /// Served requests per rung, [`Rung::ALL`] order.
    pub served_by_rung: [u64; 3],
    /// Requests that aged out in the queue.
    pub deadline_queued: u64,
    /// Requests whose budget expired during backend work.
    pub deadline_backend: u64,
    /// Backend panics contained by the sandbox.
    pub backend_panics: u64,
    /// Injected latency faults absorbed.
    pub faults_latency: u64,
    /// Injected queue stalls absorbed.
    pub faults_stall: u64,
    /// Ladder step-downs.
    pub demotions: u64,
    /// Ladder step-ups.
    pub promotions: u64,
    /// Primary and fallback breaker states.
    pub breakers: Vec<BreakerStat>,
    /// Queue depth at the instant stats were taken.
    pub queue_depth: usize,
    /// Prediction metrics of the active rung's answers.
    pub predictor: PredictorStats,
}

/// Service-wide stats: handle-side admission counters plus every
/// worker's [`WorkerStats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests admitted past backpressure control.
    pub accepted: u64,
    /// Requests shed by admission control (queue full).
    pub shed: u64,
    /// Requests refused because the service was shutting down.
    pub rejected_shutdown: u64,
    /// Per-worker detail.
    pub workers: Vec<WorkerStats>,
}

impl ServiceStats {
    /// All workers' predictor metrics merged.
    #[must_use]
    pub fn merged_predictor(&self) -> PredictorStats {
        let mut all = PredictorStats::new();
        for w in &self.workers {
            all.merge(&w.predictor);
        }
        all
    }

    /// The worst rung any worker currently sits on.
    #[must_use]
    pub fn worst_rung(&self) -> Rung {
        self.workers
            .iter()
            .map(|w| w.rung)
            .max()
            .unwrap_or(Rung::Hybrid)
    }
}

/// What [`Service::shutdown`] produced.
#[derive(Debug)]
pub struct ShutdownReport {
    /// Crash-consistent snapshot of every worker's predictor state and
    /// metrics, restorable via [`Service::start_restored`].
    pub snapshot: Vec<u8>,
    /// Requests answered `ShuttingDown` during the drain (queued work
    /// the drain deadline did not cover — answered, never dropped).
    pub drain_rejected: u64,
    /// Final per-worker stats at the instant each worker exited.
    pub workers: Vec<WorkerStats>,
}

// ---------------------------------------------------------------------
// Internal plumbing
// ---------------------------------------------------------------------

enum Job {
    Serve(Request),
    Stats,
    Snapshot,
    Stop,
}

struct Envelope {
    job: Job,
    deadline: Option<(Instant, Duration)>,
    reply: SyncSender<Result<Reply, ServiceError>>,
}

enum Reply {
    Response(Response),
    Stats(Box<WorkerStats>),
    SnapshotSection(Vec<u8>),
    Stopped,
}

struct WorkerPort {
    tx: SyncSender<Envelope>,
    depth: Arc<AtomicUsize>,
    chaos: Arc<Mutex<Option<ServiceFaultPlan>>>,
}

struct Inner {
    ports: Vec<WorkerPort>,
    primary: BackendKind,
    fallback: BackendKind,
    accepting: AtomicBool,
    drain_deadline: Arc<Mutex<Option<Instant>>>,
    accepted: AtomicU64,
    shed: AtomicU64,
    rejected_shutdown: AtomicU64,
    queue_capacity: usize,
    reply_patience: Duration,
    obs: Obs,
}

/// Cheap cloneable submission handle to a running [`Service`].
#[derive(Clone)]
pub struct ServiceHandle {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for ServiceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceHandle")
            .field("workers", &self.inner.ports.len())
            .field("accepting", &self.inner.accepting.load(Ordering::Relaxed))
            .finish()
    }
}

/// Stable IP→worker routing (splitmix-style scramble, then modulo).
fn route(ip: u64, workers: usize) -> usize {
    (ip.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % workers.max(1)
}

impl ServiceHandle {
    fn submit(
        &self,
        job: Job,
        worker: usize,
        budget: Option<Duration>,
    ) -> Result<Receiver<Result<Reply, ServiceError>>, ServiceError> {
        let inner = &self.inner;
        if !inner.accepting.load(Ordering::Acquire) {
            inner.rejected_shutdown.fetch_add(1, Ordering::Relaxed);
            inner.obs.incr(names::REJECTED_SHUTDOWN);
            return Err(ServiceError::ShuttingDown);
        }
        let (tx, rx) = sync_channel(1);
        let env = Envelope {
            job,
            deadline: budget.map(|b| (Instant::now() + b, b)),
            reply: tx,
        };
        let port = &inner.ports[worker];
        port.depth.fetch_add(1, Ordering::AcqRel);
        match port.tx.try_send(env) {
            Ok(()) => {
                inner.accepted.fetch_add(1, Ordering::Relaxed);
                inner.obs.incr(names::ACCEPTED);
                Ok(rx)
            }
            Err(TrySendError::Full(_)) => {
                port.depth.fetch_sub(1, Ordering::AcqRel);
                inner.shed.fetch_add(1, Ordering::Relaxed);
                inner.obs.incr(names::SHED);
                Err(ServiceError::Shed {
                    capacity: inner.queue_capacity,
                })
            }
            Err(TrySendError::Disconnected(_)) => {
                port.depth.fetch_sub(1, Ordering::AcqRel);
                Err(ServiceError::WorkerLost { worker })
            }
        }
    }

    fn wait(
        &self,
        rx: &Receiver<Result<Reply, ServiceError>>,
        worker: usize,
    ) -> Result<Reply, ServiceError> {
        let patience = self.inner.reply_patience;
        match rx.recv_timeout(patience) {
            Ok(reply) => reply,
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                Err(ServiceError::ReplyTimeout { waited: patience })
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                Err(ServiceError::WorkerLost { worker })
            }
        }
    }

    /// Submits one request and waits for its outcome. `budget` is the
    /// request's total deadline; `None` means no deadline.
    ///
    /// # Errors
    ///
    /// Every failure mode is a structured [`ServiceError`]; this method
    /// cannot block longer than the configured reply patience.
    pub fn call(
        &self,
        request: Request,
        budget: Option<Duration>,
    ) -> Result<Response, ServiceError> {
        let worker = route(request.ip(), self.inner.ports.len());
        let rx = self.submit(Job::Serve(request), worker, budget)?;
        match self.wait(&rx, worker)? {
            Reply::Response(r) => Ok(r),
            Reply::Stats(_) | Reply::SnapshotSection(_) | Reply::Stopped => {
                Err(ServiceError::Protocol(
                    "mismatched reply kind for serve request".into(),
                ))
            }
        }
    }

    /// Collects service-wide stats (one stats probe through every
    /// worker's queue, so the answer reflects each worker's own view).
    ///
    /// # Errors
    ///
    /// Structured [`ServiceError`] if any worker cannot answer.
    pub fn stats(&self) -> Result<ServiceStats, ServiceError> {
        let mut workers = Vec::with_capacity(self.inner.ports.len());
        for w in 0..self.inner.ports.len() {
            let rx = self.submit(Job::Stats, w, None)?;
            match self.wait(&rx, w)? {
                Reply::Stats(s) => workers.push(*s),
                Reply::Response(_) | Reply::SnapshotSection(_) | Reply::Stopped => {
                    return Err(ServiceError::Protocol(
                        "mismatched reply kind for stats request".into(),
                    ))
                }
            }
        }
        Ok(ServiceStats {
            accepted: self.inner.accepted.load(Ordering::Relaxed),
            shed: self.inner.shed.load(Ordering::Relaxed),
            rejected_shutdown: self.inner.rejected_shutdown.load(Ordering::Relaxed),
            workers,
        })
    }

    /// Takes a live warm-restart snapshot without stopping the service:
    /// one snapshot probe through every worker's queue, so each worker's
    /// section is serialized between requests and is internally
    /// consistent. Cross-worker skew is harmless — state is per-IP and
    /// an IP never spans workers. The bytes are restorable via
    /// [`Service::start_restored`] under the same config, and are what
    /// the cluster layer ships to warm replicas over `OP_SNAPSHOT_PULL`.
    ///
    /// # Errors
    ///
    /// Structured [`ServiceError`] if any worker cannot answer (shed
    /// under full queues, shutting down, worker lost).
    pub fn snapshot_live(&self) -> Result<Vec<u8>, ServiceError> {
        let mut sections = Vec::with_capacity(self.inner.ports.len());
        for w in 0..self.inner.ports.len() {
            let rx = self.submit(Job::Snapshot, w, None)?;
            match self.wait(&rx, w)? {
                Reply::SnapshotSection(bytes) => sections.push(bytes),
                Reply::Response(_) | Reply::Stats(_) | Reply::Stopped => {
                    return Err(ServiceError::Protocol(
                        "mismatched reply kind for snapshot request".into(),
                    ))
                }
            }
        }
        Ok(assemble_service_snapshot(
            self.inner.primary,
            self.inner.fallback,
            sections,
        ))
    }

    /// Replaces every worker's chaos plan. `None` stops injection;
    /// `Some((seed, config))` gives worker `i` a plan seeded `seed + i`.
    pub fn set_chaos(&self, chaos: Option<(u64, ServiceFaultConfig)>) {
        for (i, port) in self.inner.ports.iter().enumerate() {
            let plan = chaos.map(|(seed, config)| {
                ServiceFaultPlan::new(seed.wrapping_add(i as u64), config)
            });
            *port.chaos.lock().expect("chaos lock") = plan;
        }
    }

    /// True while the service accepts new requests.
    #[must_use]
    pub fn is_accepting(&self) -> bool {
        self.inner.accepting.load(Ordering::Acquire)
    }
}

// ---------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------

struct Slot {
    kind: BackendKind,
    backend: Box<dyn SharedPredictor>,
    breaker: CircuitBreaker,
}

struct Counters {
    served: u64,
    served_by_rung: [u64; 3],
    deadline_queued: u64,
    deadline_backend: u64,
    backend_panics: u64,
    faults_latency: u64,
    faults_stall: u64,
}

struct Worker {
    index: usize,
    slots: [Slot; 2],
    ladder: Ladder,
    pin_rung: Option<Rung>,
    stats: PredictorStats,
    counters: Counters,
    depth: Arc<AtomicUsize>,
    chaos: Arc<Mutex<Option<ServiceFaultPlan>>>,
    drain_deadline: Arc<Mutex<Option<Instant>>>,
    obs: Obs,
}

/// What a worker leaves behind when it exits: everything a warm restart
/// needs, plus its final stats.
struct WorkerFinal {
    slots: [Slot; 2],
    stats: PredictorStats,
    final_stats: WorkerStats,
    drain_rejected: u64,
}

/// Outcome of one guarded backend call.
enum Guarded {
    Ok(Prediction),
    Panicked,
}

impl Worker {
    /// Runs `predict` + optional `update` on one slot inside a panic
    /// sandbox, charging the slot's breaker. `fault` carries the
    /// injected failure for this call, if any.
    fn guarded_call(
        slot: &mut Slot,
        ctx: &LoadContext,
        actual: Option<u64>,
        fault: Option<ServiceFault>,
        now: Instant,
    ) -> Guarded {
        let result = catch_unwind(AssertUnwindSafe(|| {
            match fault {
                Some(ServiceFault::WorkerPanic) => {
                    panic!("injected worker panic (chaos)");
                }
                Some(ServiceFault::Latency(d)) => std::thread::sleep(d),
                _ => {}
            }
            let pred = slot.backend.predict(ctx);
            if let Some(actual) = actual {
                slot.backend.update(ctx, actual, &pred);
            }
            pred
        }));
        match result {
            Ok(pred) => {
                slot.breaker.on_success(now);
                Guarded::Ok(pred)
            }
            Err(_) => {
                slot.breaker.on_failure(now);
                Guarded::Panicked
            }
        }
    }

    fn worker_stats(&mut self, now: Instant) -> WorkerStats {
        WorkerStats {
            worker: self.index,
            rung: self.pin_rung.unwrap_or_else(|| self.ladder.rung()),
            served: self.counters.served,
            served_by_rung: self.counters.served_by_rung,
            deadline_queued: self.counters.deadline_queued,
            deadline_backend: self.counters.deadline_backend,
            backend_panics: self.counters.backend_panics,
            faults_latency: self.counters.faults_latency,
            faults_stall: self.counters.faults_stall,
            demotions: self.ladder.demotions(),
            promotions: self.ladder.promotions(),
            breakers: self
                .slots
                .iter_mut()
                .map(|s| BreakerStat {
                    component: s.kind.name(),
                    state: s.breaker.state(now).name(),
                    trips: s.breaker.trips(),
                })
                .collect(),
            queue_depth: self.depth.load(Ordering::Acquire),
            predictor: self.stats,
        }
    }

    /// Serves one prediction request; must reply exactly once (the
    /// caller sends whatever this returns).
    fn serve(&mut self, request: Request, deadline: Option<(Instant, Duration)>)
        -> Result<Response, ServiceError> {
        // Draw this request's injected fault (worker-panic and latency
        // land inside the backend sandbox; stalls were already applied
        // by the dispatch loop before the deadline check).
        let fault = self
            .chaos
            .lock()
            .expect("chaos lock")
            .as_mut()
            .and_then(ServiceFaultPlan::draw);
        let fault = match fault {
            Some(ServiceFault::QueueStall(d)) => {
                // Stall the whole worker: everything behind this
                // request backs up, which is the point.
                self.counters.faults_stall += 1;
                self.obs.incr(names::FAULT_STALL);
                std::thread::sleep(d);
                None
            }
            Some(ServiceFault::Latency(d)) => {
                self.counters.faults_latency += 1;
                self.obs.incr(names::FAULT_LATENCY);
                Some(ServiceFault::Latency(d))
            }
            other => other,
        };

        let now = Instant::now();
        // Rung decision: pinned, or reassessed from breaker + queue
        // health.
        let rung = match self.pin_rung {
            Some(r) => r,
            None => {
                let inputs = LadderInputs {
                    hybrid_available: self.slots[0].breaker.call_permitted(now),
                    stride_available: self.slots[1].breaker.call_permitted(now),
                    queue_depth: self.depth.load(Ordering::Acquire),
                };
                self.ladder.reassess(&inputs)
            }
        };

        let (ctx, actual) = match request {
            Request::Observe {
                ip,
                offset,
                ghr,
                actual,
            } => (LoadContext::new(ip, offset, ghr), Some(actual)),
            Request::Predict { ip, offset, ghr } => (LoadContext::new(ip, offset, ghr), None),
        };

        // Serve on the chosen rung. On Hybrid the fallback slot trains
        // too (shadow training keeps the next rung warm, the same way
        // the paper's hybrid trains both components); on StrideOnly the
        // tripped primary is left alone; on Bypass nothing runs.
        let (active_pred, healthy) = match rung {
            Rung::Bypass => (Prediction::none(), true),
            Rung::StrideOnly => {
                match Self::guarded_call(&mut self.slots[1], &ctx, actual, fault, now) {
                    Guarded::Ok(p) => (p, true),
                    Guarded::Panicked => {
                        self.counters.backend_panics += 1;
                        self.obs.incr(names::BACKEND_PANIC);
                        self.ladder.note_outcome(false);
                        return Err(ServiceError::BackendPanicked {
                            component: self.slots[1].kind.name(),
                        });
                    }
                }
            }
            Rung::Hybrid => {
                let primary =
                    Self::guarded_call(&mut self.slots[0], &ctx, actual, fault, now);
                // Shadow-train the fallback (never fault-injected: the
                // injected fault was spent on the active call).
                if actual.is_some() {
                    match Self::guarded_call(&mut self.slots[1], &ctx, actual, None, now) {
                        Guarded::Ok(_) | Guarded::Panicked => {}
                    }
                }
                match primary {
                    Guarded::Ok(p) => (p, true),
                    Guarded::Panicked => {
                        self.counters.backend_panics += 1;
                        self.obs.incr(names::BACKEND_PANIC);
                        self.ladder.note_outcome(false);
                        return Err(ServiceError::BackendPanicked {
                            component: self.slots[0].kind.name(),
                        });
                    }
                }
            }
        };

        // Budget check after the backend stage: work past the deadline
        // is reported as such, not passed off as on-time.
        if let Some((at, budget)) = deadline {
            if Instant::now() > at {
                self.counters.deadline_backend += 1;
                self.obs.incr(names::DEADLINE_BACKEND);
                self.ladder.note_outcome(false);
                return Err(ServiceError::DeadlineExceeded {
                    stage: "backend",
                    budget,
                });
            }
        }

        self.ladder.note_outcome(healthy);
        self.counters.served += 1;
        self.counters.served_by_rung[rung.index()] += 1;
        self.obs.incr(names::SERVED);
        if self.obs.enabled() {
            self.obs
                .record(names::LATENCY_BY_RUNG[rung.index()], now.elapsed().as_micros() as u64);
        }

        Ok(match request {
            Request::Observe { actual, .. } => {
                self.stats.record_with(&active_pred, actual, &self.obs);
                Response::Observed {
                    addr: active_pred.addr,
                    speculate: active_pred.speculate,
                    correct: active_pred.is_correct(actual),
                    rung,
                }
            }
            Request::Predict { .. } => Response::Predicted {
                addr: active_pred.addr,
                speculate: active_pred.speculate,
                rung,
            },
        })
    }

    fn handle_envelope(&mut self, env: Envelope) -> ControlFlow {
        // Drain mode: past the drain deadline every queued request is
        // answered ShuttingDown — answered, never dropped.
        let draining_expired = self
            .drain_deadline
            .lock()
            .expect("drain lock")
            .is_some_and(|d| Instant::now() > d);

        match env.job {
            Job::Stop => {
                let _ = env.reply.send(Ok(Reply::Stopped));
                ControlFlow::Stop
            }
            Job::Stats => {
                let stats = self.worker_stats(Instant::now());
                let _ = env.reply.send(Ok(Reply::Stats(Box::new(stats))));
                ControlFlow::Continue
            }
            Job::Snapshot => {
                // A live snapshot section: the worker serializes its own
                // state between requests, so the section is internally
                // consistent without stopping the service. Same layout
                // as the shutdown snapshot's worker sections.
                let mut w = SectionWriter::new();
                for slot in &self.slots {
                    slot.backend.write_state(&mut w);
                }
                self.stats.write_state(&mut w);
                let _ = env.reply.send(Ok(Reply::SnapshotSection(w.into_bytes())));
                ControlFlow::Continue
            }
            Job::Serve(request) => {
                let outcome = if draining_expired {
                    Err(ServiceError::ShuttingDown)
                } else if let Some((at, budget)) = env.deadline {
                    // Queued-stage deadline: the request may have aged
                    // out before we ever looked at it.
                    if Instant::now() > at {
                        self.counters.deadline_queued += 1;
                        self.obs.incr(names::DEADLINE_QUEUED);
                        Err(ServiceError::DeadlineExceeded {
                            stage: "queued",
                            budget,
                        })
                    } else {
                        self.serve(request, env.deadline)
                    }
                } else {
                    self.serve(request, None)
                };
                let _ = env.reply.send(outcome.map(Reply::Response));
                ControlFlow::Continue
            }
        }
    }

    /// Whether an envelope can join a predict batch: a deadline-free
    /// predict-only request. Observes never batch (their predict+update
    /// pairs must not reorder against each other), and deadline-carrying
    /// requests keep the per-request budget checks of the scalar path.
    fn batchable(env: &Envelope) -> bool {
        env.deadline.is_none() && matches!(env.job, Job::Serve(Request::Predict { .. }))
    }

    /// Serves a run of deadline-free predict-only envelopes through one
    /// `predict_batch` call on the active rung — one rung decision, one
    /// breaker charge, one sandbox, N replies. Each envelope still gets
    /// exactly one reply.
    fn serve_predict_batch(&mut self, batch: Vec<Envelope>) {
        let now = Instant::now();
        let rung = match self.pin_rung {
            Some(r) => r,
            None => {
                let inputs = LadderInputs {
                    hybrid_available: self.slots[0].breaker.call_permitted(now),
                    stride_available: self.slots[1].breaker.call_permitted(now),
                    queue_depth: self.depth.load(Ordering::Acquire),
                };
                self.ladder.reassess(&inputs)
            }
        };
        let ctxs: Vec<LoadContext> = batch
            .iter()
            .filter_map(|env| match env.job {
                Job::Serve(Request::Predict { ip, offset, ghr }) => {
                    Some(LoadContext::new(ip, offset, ghr))
                }
                _ => None,
            })
            .collect();
        debug_assert_eq!(ctxs.len(), batch.len(), "batch must be predict-only");

        let preds = match rung {
            Rung::Bypass => Some(vec![Prediction::none(); ctxs.len()]),
            rung => {
                let slot = &mut self.slots[if rung == Rung::StrideOnly { 1 } else { 0 }];
                let result = catch_unwind(AssertUnwindSafe(|| {
                    let mut out = Vec::with_capacity(ctxs.len());
                    slot.backend.predict_batch(&ctxs, &mut out);
                    out
                }));
                match result {
                    Ok(out) if out.len() == ctxs.len() => {
                        slot.breaker.on_success(now);
                        Some(out)
                    }
                    // A short answer is a backend bug; treat it like a
                    // panic so every caller still gets a reply.
                    Ok(_) | Err(_) => {
                        slot.breaker.on_failure(now);
                        None
                    }
                }
            }
        };

        match preds {
            Some(preds) => {
                for (env, pred) in batch.into_iter().zip(preds) {
                    self.ladder.note_outcome(true);
                    self.counters.served += 1;
                    self.counters.served_by_rung[rung.index()] += 1;
                    self.obs.incr(names::SERVED);
                    if self.obs.enabled() {
                        self.obs.record(
                            names::LATENCY_BY_RUNG[rung.index()],
                            now.elapsed().as_micros() as u64,
                        );
                    }
                    let _ = env.reply.send(Ok(Reply::Response(Response::Predicted {
                        addr: pred.addr,
                        speculate: pred.speculate,
                        rung,
                    })));
                }
            }
            None => {
                let component =
                    self.slots[if rung == Rung::StrideOnly { 1 } else { 0 }].kind.name();
                self.counters.backend_panics += 1;
                self.obs.incr(names::BACKEND_PANIC);
                self.ladder.note_outcome(false);
                for env in batch {
                    let _ = env
                        .reply
                        .send(Err(ServiceError::BackendPanicked { component }));
                }
            }
        }
    }

    fn run(mut self, rx: &Receiver<Envelope>) -> WorkerFinal {
        /// Upper bound on one batch drain — enough to amortise dispatch,
        /// small enough to keep rung reassessment responsive.
        const BATCH_MAX: usize = 32;
        let mut drain_rejected = 0u64;
        let mut pending: std::collections::VecDeque<Envelope> = std::collections::VecDeque::new();
        loop {
            let env = if let Some(env) = pending.pop_front() {
                env
            } else {
                let Ok(env) = rx.recv() else { break };
                self.depth.fetch_sub(1, Ordering::AcqRel);
                env
            };

            // Batch fast path: a run of deadline-free predict-only
            // requests at the queue head drains through one
            // `predict_batch` call. Chaos and drain mode fall back to
            // the scalar path, whose per-request bookkeeping they need.
            let env = if Self::batchable(&env)
                && pending.is_empty()
                && self.chaos.lock().expect("chaos lock").is_none()
                && !self
                    .drain_deadline
                    .lock()
                    .expect("drain lock")
                    .is_some_and(|d| Instant::now() > d)
            {
                let mut batch = vec![env];
                while batch.len() < BATCH_MAX {
                    match rx.try_recv() {
                        Ok(next) => {
                            self.depth.fetch_sub(1, Ordering::AcqRel);
                            if Self::batchable(&next) {
                                batch.push(next);
                            } else {
                                // Handled right after the batch, in
                                // arrival order.
                                pending.push_back(next);
                                break;
                            }
                        }
                        Err(_) => break,
                    }
                }
                if batch.len() > 1 {
                    self.serve_predict_batch(batch);
                    continue;
                }
                batch.pop().expect("batch holds the head envelope")
            } else {
                env
            };

            let is_stop = matches!(env.job, Job::Stop);
            let was_draining = self
                .drain_deadline
                .lock()
                .expect("drain lock")
                .is_some_and(|d| Instant::now() > d);
            // The outer sandbox: if serving somehow panics outside the
            // backend sandbox, the caller still gets a structured
            // error, and the worker lives on.
            let reply_tx = env.reply.clone();
            let flow = catch_unwind(AssertUnwindSafe(|| self.handle_envelope(env)));
            let flow = match flow {
                Ok(flow) => flow,
                Err(_) => {
                    self.counters.backend_panics += 1;
                    self.obs.incr(names::BACKEND_PANIC);
                    let _ = reply_tx.send(Err(ServiceError::WorkerLost {
                        worker: self.index,
                    }));
                    ControlFlow::Continue
                }
            };
            if was_draining && !is_stop {
                drain_rejected += 1;
            }
            if matches!(flow, ControlFlow::Stop) {
                // Drain the tail: everything still queued gets a
                // structured ShuttingDown reply before the worker
                // exits. (A submit racing the accepting flag can land
                // an envelope here; it is answered, not dropped.)
                for tail in pending.drain(..) {
                    drain_rejected += 1;
                    let _ = tail.reply.send(Err(ServiceError::ShuttingDown));
                }
                while let Ok(tail) = rx.try_recv() {
                    self.depth.fetch_sub(1, Ordering::AcqRel);
                    drain_rejected += 1;
                    let _ = tail.reply.send(Err(ServiceError::ShuttingDown));
                }
                break;
            }
        }
        let final_stats = self.worker_stats(Instant::now());
        WorkerFinal {
            slots: self.slots,
            stats: self.stats,
            final_stats,
            drain_rejected,
        }
    }
}

enum ControlFlow {
    Continue,
    Stop,
}

// ---------------------------------------------------------------------
// Service
// ---------------------------------------------------------------------

/// A running prediction service: owns the worker threads; hand out
/// [`ServiceHandle`]s with [`Service::handle`].
pub struct Service {
    inner: Arc<Inner>,
    joins: Vec<JoinHandle<WorkerFinal>>,
    config: ServiceConfig,
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("workers", &self.joins.len())
            .field("accepting", &self.inner.accepting.load(Ordering::Relaxed))
            .finish()
    }
}

impl Service {
    /// Starts the service with fresh (cold) predictor state.
    #[must_use]
    pub fn start(config: ServiceConfig) -> Self {
        Self::start_with(config, None).expect("cold start cannot fail")
    }

    /// Starts the service from a warm-restart snapshot produced by
    /// [`Service::shutdown`].
    ///
    /// # Errors
    ///
    /// [`ServiceError::BadSnapshot`] when the bytes cannot be decoded
    /// or describe a different topology than `config`.
    pub fn start_restored(config: ServiceConfig, snapshot: &[u8]) -> Result<Self, ServiceError> {
        Self::start_with(config, Some(snapshot))
    }

    /// Warm restart when possible, cold start otherwise: a corrupt or
    /// missing snapshot must degrade to a cold start, never to a dead
    /// service. Returns the service and whether the snapshot was used.
    ///
    /// Degrading on a *present but bad* snapshot is visible to
    /// operators: it bumps [`names::SNAPSHOT_DEGRADED_COLD`] and emits
    /// one structured log line naming the decode failure. A plain cold
    /// start (no snapshot offered) stays silent — that path is routine.
    #[must_use]
    pub fn restore_or_cold(config: ServiceConfig, snapshot: Option<&[u8]>) -> (Self, bool) {
        if let Some(bytes) = snapshot {
            match Self::start_restored(config.clone(), bytes) {
                Ok(service) => return (service, true),
                Err(err) => {
                    config.obs.incr(names::SNAPSHOT_DEGRADED_COLD);
                    eprintln!(
                        "{{\"event\":\"{}\",\"snapshot_bytes\":{},\"reason\":{:?}}}",
                        names::SNAPSHOT_DEGRADED_COLD,
                        bytes.len(),
                        err.to_string()
                    );
                    return (Self::start(config), false);
                }
            }
        }
        (Self::start(config), false)
    }

    fn start_with(config: ServiceConfig, snapshot: Option<&[u8]>) -> Result<Self, ServiceError> {
        assert!(config.workers >= 1, "need at least one worker");
        assert!(config.queue_capacity >= 1, "need a nonempty queue");

        // Decode all worker states up front so a bad snapshot fails
        // before any thread starts.
        let restored: Option<Vec<([Slot; 2], PredictorStats)>> = match snapshot {
            Some(bytes) => Some(decode_service_snapshot(bytes, &config)?),
            None => None,
        };

        let drain_deadline = Arc::new(Mutex::new(None));
        let mut ports = Vec::with_capacity(config.workers);
        let mut joins = Vec::with_capacity(config.workers);
        let states: Vec<Option<([Slot; 2], PredictorStats)>> = match restored {
            Some(v) => v.into_iter().map(Some).collect(),
            None => (0..config.workers).map(|_| None).collect(),
        };

        for (index, state) in states.into_iter().enumerate() {
            let (tx, rx) = sync_channel::<Envelope>(config.queue_capacity);
            let depth = Arc::new(AtomicUsize::new(0));
            let chaos = Arc::new(Mutex::new(config.chaos.map(|(seed, c)| {
                ServiceFaultPlan::new(seed.wrapping_add(index as u64), c)
            })));
            let (mut slots, stats) = match state {
                Some((slots, stats)) => (slots, stats),
                None => (
                    [
                        Slot {
                            kind: config.primary,
                            backend: config.primary.build(),
                            breaker: CircuitBreaker::new(
                                config.breaker,
                                config.seed.wrapping_add(index as u64 * 2),
                            ),
                        },
                        Slot {
                            kind: config.fallback,
                            backend: config.fallback.build(),
                            breaker: CircuitBreaker::new(
                                config.breaker,
                                config.seed.wrapping_add(index as u64 * 2 + 1),
                            ),
                        },
                    ],
                    PredictorStats::new(),
                ),
            };
            // Attach telemetry to everything this worker owns. This
            // runs on the restored path too: snapshots never carry an
            // Obs, so a warm restart re-attaches the live one here.
            if config.obs.enabled() {
                for slot in &mut slots {
                    slot.backend.set_obs(config.obs.clone());
                    slot.breaker.set_obs(config.obs.clone());
                }
            }
            let mut ladder = Ladder::new(config.ladder, config.pin_rung.unwrap_or(Rung::Hybrid));
            ladder.set_obs(config.obs.clone());
            let worker = Worker {
                index,
                slots,
                ladder,
                pin_rung: config.pin_rung,
                stats,
                counters: Counters {
                    served: 0,
                    served_by_rung: [0; 3],
                    deadline_queued: 0,
                    deadline_backend: 0,
                    backend_panics: 0,
                    faults_latency: 0,
                    faults_stall: 0,
                },
                depth: Arc::clone(&depth),
                chaos: Arc::clone(&chaos),
                drain_deadline: Arc::clone(&drain_deadline),
                obs: config.obs.clone(),
            };
            let join = std::thread::Builder::new()
                .name(format!("cap-service-worker-{index}"))
                .spawn(move || worker.run(&rx))
                .expect("spawn worker thread");
            ports.push(WorkerPort { tx, depth, chaos });
            joins.push(join);
        }

        Ok(Self {
            inner: Arc::new(Inner {
                ports,
                primary: config.primary,
                fallback: config.fallback,
                accepting: AtomicBool::new(true),
                drain_deadline,
                accepted: AtomicU64::new(0),
                shed: AtomicU64::new(0),
                rejected_shutdown: AtomicU64::new(0),
                queue_capacity: config.queue_capacity,
                reply_patience: config.reply_patience,
                obs: config.obs.clone(),
            }),
            joins,
            config,
        })
    }

    /// A cloneable submission handle.
    #[must_use]
    pub fn handle(&self) -> ServiceHandle {
        ServiceHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// The config the service was started with.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Graceful shutdown: stop admitting, drain in-flight work under
    /// `drain` (queued requests past the deadline get a structured
    /// `ShuttingDown` reply), join every worker, and return a
    /// warm-restart snapshot of the final predictor state.
    #[must_use]
    pub fn shutdown(self, drain: Duration) -> ShutdownReport {
        self.inner.accepting.store(false, Ordering::Release);
        *self.inner.drain_deadline.lock().expect("drain lock") = Some(Instant::now() + drain);

        // One Stop sentinel per worker. Blocking send: the queue is
        // draining, and past the drain deadline each queued entry is
        // answered in microseconds, so this cannot wedge.
        for port in &self.inner.ports {
            let (tx, _rx) = sync_channel(1);
            let _ = port.tx.send(Envelope {
                job: Job::Stop,
                deadline: None,
                reply: tx,
            });
        }

        let mut finals = Vec::with_capacity(self.joins.len());
        for join in self.joins {
            match join.join() {
                Ok(f) => finals.push(f),
                Err(_) => { /* worker panicked on exit; its state is lost */ }
            }
        }

        let snapshot = encode_service_snapshot(&self.config, &finals);
        ShutdownReport {
            snapshot,
            drain_rejected: finals.iter().map(|f| f.drain_rejected).sum(),
            workers: finals.into_iter().map(|f| f.final_stats).collect(),
        }
    }
}

// ---------------------------------------------------------------------
// Warm-restart snapshot codec
// ---------------------------------------------------------------------

fn worker_section_name(index: usize) -> String {
    format!("worker-{index}")
}

/// Builds a service archive from already-serialized worker sections —
/// the shared tail of the shutdown snapshot and [`ServiceHandle::snapshot_live`].
fn assemble_service_snapshot(
    primary: BackendKind,
    fallback: BackendKind,
    sections: Vec<Vec<u8>>,
) -> Vec<u8> {
    let mut meta = SectionWriter::new();
    meta.put_u32(SERVICE_SNAPSHOT_VERSION);
    meta.put_u64(sections.len() as u64);
    meta.put_u8(primary.tag());
    meta.put_u8(fallback.tag());

    let mut b = SnapshotBuilder::new();
    b.add_raw(SEC_SERVICE, meta.into_bytes());
    for (i, section) in sections.into_iter().enumerate() {
        b.add_raw(&worker_section_name(i), section);
    }
    b.finish()
}

fn encode_service_snapshot(config: &ServiceConfig, finals: &[WorkerFinal]) -> Vec<u8> {
    let sections = finals
        .iter()
        .map(|f| {
            let mut w = SectionWriter::new();
            for slot in &f.slots {
                slot.backend.write_state(&mut w);
            }
            f.stats.write_state(&mut w);
            w.into_bytes()
        })
        .collect();
    assemble_service_snapshot(config.primary, config.fallback, sections)
}

fn decode_service_snapshot(
    bytes: &[u8],
    config: &ServiceConfig,
) -> Result<Vec<([Slot; 2], PredictorStats)>, ServiceError> {
    let bad = |e: &dyn std::fmt::Display| ServiceError::BadSnapshot(e.to_string());

    let archive = SnapshotArchive::parse(bytes).map_err(|e| bad(&e))?;
    let meta_bytes = archive.section(SEC_SERVICE).map_err(|e| bad(&e))?;
    let mut meta = SectionReader::new(meta_bytes, SEC_SERVICE);
    let version = meta.take_u32("service snapshot version").map_err(|e| bad(&e))?;
    if version != SERVICE_SNAPSHOT_VERSION {
        return Err(ServiceError::BadSnapshot(format!(
            "service snapshot version {version}, supported {SERVICE_SNAPSHOT_VERSION}"
        )));
    }
    let workers = meta.take_u64("worker count").map_err(|e| bad(&e))? as usize;
    if workers != config.workers {
        return Err(ServiceError::BadSnapshot(format!(
            "snapshot has {workers} workers, config wants {} — routing would \
             scatter restored state",
            config.workers
        )));
    }
    let primary_tag = meta.take_u8("primary backend tag").map_err(|e| bad(&e))?;
    let fallback_tag = meta.take_u8("fallback backend tag").map_err(|e| bad(&e))?;
    meta.finish().map_err(|e| bad(&e))?;
    let kind_for_tag = |tag: u8, what: &str| {
        BackendKind::from_tag(tag).ok_or_else(|| {
            ServiceError::BadSnapshot(format!(
                "snapshot {what} backend tag {tag} is not registered \
                 (registered backends: {})",
                crate::backend::registered_names().join(", ")
            ))
        })
    };
    let primary = kind_for_tag(primary_tag, "primary")?;
    let fallback = kind_for_tag(fallback_tag, "fallback")?;
    if primary != config.primary || fallback != config.fallback {
        return Err(ServiceError::BadSnapshot(format!(
            "snapshot backends ({}/{}) do not match config ({}/{})",
            primary.name(),
            fallback.name(),
            config.primary.name(),
            config.fallback.name()
        )));
    }

    let mut states = Vec::with_capacity(workers);
    for i in 0..workers {
        let name = worker_section_name(i);
        let section = archive.section(&name).map_err(|e| bad(&e))?;
        let mut r = SectionReader::new(section, SEC_SERVICE);
        let primary_backend = primary.restore(&mut r).map_err(|e| bad(&e))?;
        let fallback_backend = fallback.restore(&mut r).map_err(|e| bad(&e))?;
        let stats = PredictorStats::read_state(&mut r).map_err(|e| bad(&e))?;
        r.finish().map_err(|e| bad(&e))?;
        let seed = config.seed.wrapping_add(i as u64 * 2);
        states.push((
            [
                Slot {
                    kind: primary,
                    backend: primary_backend,
                    breaker: CircuitBreaker::new(config.breaker, seed),
                },
                Slot {
                    kind: fallback,
                    backend: fallback_backend,
                    breaker: CircuitBreaker::new(config.breaker, seed + 1),
                },
            ],
            stats,
        ));
    }
    Ok(states)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> ServiceConfig {
        ServiceConfig {
            workers: 2,
            queue_capacity: 16,
            ..ServiceConfig::default()
        }
    }

    fn observe(ip: u64, actual: u64) -> Request {
        Request::Observe {
            ip,
            offset: 0,
            ghr: 0,
            actual,
        }
    }

    #[test]
    fn serves_and_learns_a_stride_pattern() {
        let service = Service::start(small_config());
        let handle = service.handle();
        let mut last_correct = false;
        for i in 0..200u64 {
            match handle.call(observe(0x400, 0x1000 + i * 8), None).unwrap() {
                Response::Observed { correct, rung, .. } => {
                    last_correct = correct;
                    assert_eq!(rung, Rung::Hybrid);
                }
                other => panic!("unexpected reply {other:?}"),
            }
        }
        assert!(last_correct, "a constant stride must become predictable");
        let report = service.shutdown(Duration::from_secs(1));
        assert_eq!(report.drain_rejected, 0);
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        for workers in 1..8 {
            for ip in [0u64, 1, 0x400, u64::MAX] {
                let w = route(ip, workers);
                assert!(w < workers);
                assert_eq!(w, route(ip, workers));
            }
        }
    }

    #[test]
    fn predict_only_does_not_train() {
        let service = Service::start(small_config());
        let handle = service.handle();
        for _ in 0..100 {
            let r = handle
                .call(
                    Request::Predict {
                        ip: 0x700,
                        offset: 0,
                        ghr: 0,
                    },
                    None,
                )
                .unwrap();
            match r {
                Response::Predicted { addr, .. } => assert_eq!(addr, None),
                other => panic!("unexpected reply {other:?}"),
            }
        }
        let stats = handle.stats().unwrap();
        assert_eq!(stats.merged_predictor().loads, 0, "predict-only never records a load");
        let _ = service.shutdown(Duration::from_millis(100));
    }

    #[test]
    fn tiny_deadline_is_reported_not_ignored() {
        let service = Service::start(small_config());
        let handle = service.handle();
        // A zero budget is already expired by the time a worker sees it.
        let err = handle
            .call(observe(0x400, 0x1000), Some(Duration::ZERO))
            .unwrap_err();
        assert!(
            matches!(err, ServiceError::DeadlineExceeded { .. }),
            "got {err:?}"
        );
        let stats = handle.stats().unwrap();
        let exceeded: u64 = stats
            .workers
            .iter()
            .map(|w| w.deadline_queued + w.deadline_backend)
            .sum();
        assert_eq!(exceeded, 1);
        let _ = service.shutdown(Duration::from_millis(100));
    }

    #[test]
    fn handle_after_shutdown_gets_structured_rejection() {
        let service = Service::start(small_config());
        let handle = service.handle();
        handle.call(observe(0x400, 0x1000), None).unwrap();
        let _ = service.shutdown(Duration::from_millis(200));
        assert!(!handle.is_accepting());
        assert_eq!(
            handle.call(observe(0x400, 0x1008), None).unwrap_err(),
            ServiceError::ShuttingDown
        );
    }

    #[test]
    fn warm_restart_roundtrips_predictor_state() {
        let config = small_config();
        let service = Service::start(config.clone());
        let handle = service.handle();
        for i in 0..300u64 {
            handle.call(observe(0x400 + (i % 4) * 0x40, 0x2000 + i * 16), None).unwrap();
        }
        let before = handle.stats().unwrap().merged_predictor();
        let report = service.shutdown(Duration::from_secs(1));

        let restored = Service::start_restored(config, &report.snapshot).expect("restores");
        let after = restored.handle().stats().unwrap().merged_predictor();
        assert_eq!(before, after, "restored metrics must be bit-identical");
        let _ = restored.shutdown(Duration::from_millis(100));
    }

    #[test]
    fn live_snapshot_restores_bit_identical_without_stopping_the_donor() {
        let config = small_config();
        let service = Service::start(config.clone());
        let handle = service.handle();
        for i in 0..300u64 {
            handle
                .call(observe(0x400 + (i % 4) * 0x40, 0x2000 + i * 16), None)
                .unwrap();
        }
        let at_snapshot = handle.stats().unwrap().merged_predictor();
        let live = handle.snapshot_live().expect("live snapshot");

        // The donor keeps serving after the snapshot — it never stopped.
        handle.call(observe(0x400, 0x9000), None).unwrap();

        let twin = Service::start_restored(config, &live).expect("restores");
        let twin_stats = twin.handle().stats().unwrap().merged_predictor();
        assert_eq!(
            twin_stats, at_snapshot,
            "live snapshot must capture the exact state at snapshot time"
        );
        let _ = twin.shutdown(Duration::from_millis(100));
        let _ = service.shutdown(Duration::from_millis(100));
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_cold_start() {
        let config = small_config();
        let (service, restored) = Service::restore_or_cold(config.clone(), Some(b"garbage"));
        assert!(!restored);
        // The cold service works.
        service.handle().call(observe(0x400, 0x1000), None).unwrap();
        let _ = service.shutdown(Duration::from_millis(100));

        // And a topology mismatch is refused by the strict path with a
        // structured error.
        let donor = Service::start(config);
        let snap = donor.shutdown(Duration::from_millis(100)).snapshot;
        let mut other = small_config();
        other.workers = 3;
        match Service::start_restored(other, &snap) {
            Err(ServiceError::BadSnapshot(why)) => assert!(why.contains("workers")),
            other => panic!("expected BadSnapshot, got {other:?}"),
        }
    }

    #[test]
    fn degrading_to_cold_start_is_counted_not_silent() {
        let registry = Arc::new(cap_obs::Registry::new());
        let mut config = small_config();
        config.obs = registry.obs();

        // No snapshot offered: routine cold start, no degradation count.
        let (cold, used) = Service::restore_or_cold(config.clone(), None);
        assert!(!used);
        let _ = cold.shutdown(Duration::from_millis(100));
        assert_eq!(
            registry.snapshot().counter(names::SNAPSHOT_DEGRADED_COLD),
            None
        );

        // A present-but-corrupt snapshot bumps the counter.
        let (service, used) = Service::restore_or_cold(config, Some(b"not an archive"));
        assert!(!used);
        let _ = service.shutdown(Duration::from_millis(100));
        assert_eq!(
            registry.snapshot().counter(names::SNAPSHOT_DEGRADED_COLD),
            Some(1)
        );
    }

    #[test]
    fn registry_reconciles_with_legacy_stats_views() {
        let registry = Arc::new(cap_obs::Registry::new());
        let mut config = small_config();
        config.obs = registry.obs();
        let service = Service::start(config);
        let handle = service.handle();
        for i in 0..400u64 {
            handle
                .call(observe(0x400 + (i % 8) * 0x40, 0x3000 + i * 8), None)
                .unwrap();
        }
        let stats = handle.stats().unwrap();
        let snap = registry.snapshot();
        let counter = |name: &str| snap.counter(name).unwrap_or(0);

        // Admission and worker counters are exact mirrors (the stats
        // probes themselves go through `submit`, hence `accepted`).
        assert_eq!(counter(names::ACCEPTED), stats.accepted);
        assert_eq!(counter(names::SHED), stats.shed);
        assert_eq!(counter(names::REJECTED_SHUTDOWN), stats.rejected_shutdown);
        let served: u64 = stats.workers.iter().map(|w| w.served).sum();
        assert_eq!(counter(names::SERVED), served);
        for rung in Rung::ALL {
            let by_rung: u64 = stats
                .workers
                .iter()
                .map(|w| w.served_by_rung[rung.index()])
                .sum();
            let hist = snap.histogram(names::LATENCY_BY_RUNG[rung.index()]);
            assert_eq!(hist.map_or(0, |h| h.count), by_rung, "{}", rung.name());
        }

        // The merged predictor metrics are recoverable from the
        // registry alone.
        assert_eq!(
            PredictorStats::from_obs_snapshot(&snap),
            stats.merged_predictor()
        );
        let _ = service.shutdown(Duration::from_millis(200));
    }

    #[test]
    fn predict_floods_drain_in_batches_on_the_packed_backend() {
        // Many concurrent deadline-free predicts against one worker: the
        // queue head becomes a run of batchable envelopes, so the worker
        // drains them through `predict_batch`. The observable contract
        // stays exactly one valid reply per accepted request.
        let config = ServiceConfig {
            workers: 1,
            queue_capacity: 64,
            primary: BackendKind::PackedHybrid,
            ..ServiceConfig::default()
        };
        let service = Service::start(config);
        let handle = service.handle();

        // Train a stride so batched predicts have addresses to produce.
        for i in 0..100u64 {
            handle.call(observe(0x400, 0x1000 + i * 8), None).unwrap();
        }

        let threads: Vec<_> = (0..4)
            .map(|_| {
                let h = handle.clone();
                std::thread::spawn(move || {
                    let mut answered = 0u64;
                    let mut with_addr = 0u64;
                    for _ in 0..200 {
                        loop {
                            match h.call(
                                Request::Predict {
                                    ip: 0x400,
                                    offset: 0,
                                    ghr: 0,
                                },
                                None,
                            ) {
                                Ok(Response::Predicted { addr, .. }) => {
                                    answered += 1;
                                    with_addr += u64::from(addr.is_some());
                                    break;
                                }
                                Ok(other) => panic!("unexpected reply {other:?}"),
                                Err(ServiceError::Shed { .. }) => continue,
                                Err(e) => panic!("unexpected error {e:?}"),
                            }
                        }
                    }
                    (answered, with_addr)
                })
            })
            .collect();
        let mut answered = 0u64;
        let mut with_addr = 0u64;
        for t in threads {
            let (a, w) = t.join().expect("flood thread");
            answered += a;
            with_addr += w;
        }
        assert_eq!(answered, 800, "every accepted predict gets exactly one reply");
        assert_eq!(with_addr, 800, "a trained stride predicts on every rung pass");

        let stats = handle.stats().unwrap();
        assert_eq!(stats.workers[0].served, 900, "100 observes + 800 predicts");
        assert_eq!(
            stats.workers[0].breakers[0].component,
            "packed-hybrid",
            "primary slot is the packed backend"
        );
        // Predict-only traffic records no loads.
        assert_eq!(stats.merged_predictor().loads, 100);
        let report = service.shutdown(Duration::from_secs(1));
        assert_eq!(report.drain_rejected, 0);
    }

    #[test]
    fn pinned_rung_serves_there_and_stays() {
        let mut config = small_config();
        config.pin_rung = Some(Rung::StrideOnly);
        let service = Service::start(config);
        let handle = service.handle();
        for i in 0..50u64 {
            match handle.call(observe(0x900, 0x4000 + i * 8), None).unwrap() {
                Response::Observed { rung, .. } => assert_eq!(rung, Rung::StrideOnly),
                other => panic!("unexpected reply {other:?}"),
            }
        }
        let stats = handle.stats().unwrap();
        assert_eq!(stats.worst_rung(), Rung::StrideOnly);
        for w in &stats.workers {
            assert_eq!(w.served_by_rung[Rung::Hybrid.index()], 0);
        }
        let _ = service.shutdown(Duration::from_millis(100));
    }
}
