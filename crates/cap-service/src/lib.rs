//! # cap-service — a resilient prediction service
//!
//! The paper's predictors run here as a long-lived, multi-worker
//! **service**: prediction/train requests come in over an in-process
//! [`service::ServiceHandle`] or the length-prefixed TCP protocol in
//! [`net`], are routed by load IP to worker threads, and are answered
//! under explicit robustness machinery:
//!
//! * **Backpressure** — each worker's ingress queue is a bounded
//!   `sync_channel`; admission control sheds with a structured
//!   [`error::ServiceError::Shed`] instead of queueing unboundedly
//!   ([`service`]).
//! * **Deadline budgets** — a request may carry a budget; it is checked
//!   when dequeued (`queued` stage) and after backend work (`backend`
//!   stage), and expiry is accounted, never silently ignored.
//! * **Circuit breakers** — every backend slot sits behind a
//!   closed/open/half-open [`breaker::CircuitBreaker`] with seeded,
//!   jittered probe scheduling.
//! * **Graceful degradation** — the [`ladder::Ladder`] steps each
//!   worker down hybrid → stride-only → bypass under breaker trips or
//!   queue pressure and climbs back one rung at a time after sustained
//!   health — the service-granularity analogue of the paper's per-load
//!   confidence fallback, with the same bias: a wrong (late, failing)
//!   answer costs more than no answer.
//! * **Warm restarts** — [`service::Service::shutdown`] drains under a
//!   bounded deadline and emits a `cap-snapshot` archive from which
//!   [`service::Service::start_restored`] resumes with bit-identical
//!   predictor state; [`service::Service::restore_or_cold`] degrades a
//!   corrupt snapshot to a cold start, never a dead service.
//!
//! Chaos comes from `cap_faults::service`: seeded plans of worker
//! panics, latency spikes, and queue stalls that the soak tests drive
//! through the whole stack. The load-bearing invariant — **every
//! accepted request terminates in exactly one reply** — is what those
//! tests prove.
//!
//! ## Quick start
//!
//! ```
//! use cap_service::prelude::*;
//! use std::time::Duration;
//!
//! let service = Service::start(ServiceConfig::default());
//! let handle = service.handle();
//! for i in 0..100u64 {
//!     let r = handle.call(
//!         Request::Observe { ip: 0x400, offset: 0, ghr: 0, actual: 0x1000 + i * 8 },
//!         Some(Duration::from_millis(100)),
//!     );
//!     assert!(r.is_ok());
//! }
//! let report = service.shutdown(Duration::from_millis(500));
//! let warm = Service::start_restored(ServiceConfig::default(), &report.snapshot).unwrap();
//! let _ = warm.shutdown(Duration::from_millis(100));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backend;
pub mod breaker;
pub mod error;
pub mod ladder;
pub mod net;
pub mod service;
pub mod wire;

/// Registry metric names recorded by the service when an
/// [`cap_obs::Obs`] is attached via
/// [`service::ServiceConfig`]`::obs`. Counter names mirror the legacy
/// [`service::ServiceStats`] fields one for one, which is what lets the
/// stats view be reconciled against the registry.
pub mod names {
    /// Requests admitted past admission control.
    pub const ACCEPTED: &str = "service.accepted";
    /// Requests shed by backpressure (queue full).
    pub const SHED: &str = "service.shed";
    /// Requests rejected because the service was draining.
    pub const REJECTED_SHUTDOWN: &str = "service.rejected_shutdown";
    /// Requests served to completion by a worker.
    pub const SERVED: &str = "service.served";
    /// Deadline expiries observed at dequeue ("queued" stage).
    pub const DEADLINE_QUEUED: &str = "service.deadline.queued";
    /// Deadline expiries observed after backend work ("backend" stage).
    pub const DEADLINE_BACKEND: &str = "service.deadline.backend";
    /// Backend panics contained by the sandbox.
    pub const BACKEND_PANIC: &str = "service.backend_panic";
    /// Injected latency faults that fired.
    pub const FAULT_LATENCY: &str = "service.fault.latency";
    /// Injected queue-stall faults that fired.
    pub const FAULT_STALL: &str = "service.fault.stall";
    /// Breaker transitions into `Open`.
    pub const BREAKER_OPEN: &str = "service.breaker.open";
    /// Breaker transitions `Open` -> `HalfOpen` (probe window).
    pub const BREAKER_HALF_OPEN: &str = "service.breaker.half_open";
    /// Breaker transitions `HalfOpen` -> `Closed` (recovery).
    pub const BREAKER_CLOSE: &str = "service.breaker.close";
    /// Degradation-ladder steps down (towards bypass).
    pub const LADDER_DEMOTE: &str = "service.ladder.demote";
    /// Degradation-ladder climbs up (towards hybrid).
    pub const LADDER_PROMOTE: &str = "service.ladder.promote";
    /// Warm restarts that found a snapshot but could not decode it and
    /// degraded to a cold start (state silently lost without this).
    pub const SNAPSHOT_DEGRADED_COLD: &str = "service.snapshot.degraded_cold";
    /// Per-rung service latency histograms (microseconds), indexed by
    /// [`crate::ladder::Rung::index`].
    pub const LATENCY_BY_RUNG: [&str; 3] = [
        "service.latency.hybrid",
        "service.latency.stride_only",
        "service.latency.bypass",
    ];
}

/// Commonly used items, for glob import in binaries and tests.
pub mod prelude {
    pub use crate::backend::{
        registered_names, BackendDescriptor, BackendKind, BackendParseError, BACKEND_REGISTRY,
    };
    pub use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
    pub use crate::error::ServiceError;
    pub use crate::ladder::{Ladder, LadderConfig, LadderInputs, Rung};
    pub use crate::net::{debug_stats_renderer, ObsExporter, StatsRenderer, TcpClient, TcpServer};
    pub use crate::service::{
        Request, Response, Service, ServiceConfig, ServiceHandle, ServiceStats, ShutdownReport,
        WorkerStats,
    };
    pub use crate::wire::{WireRequest, WireResponse};
    pub use cap_obs::{Classify, ErrorClass, Obs};
}
