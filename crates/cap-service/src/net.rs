//! Blocking TCP front end over [`crate::wire`].
//!
//! One thread per connection, frames dispatched straight into a
//! [`ServiceHandle`] — the service's own queues provide all the
//! backpressure, so a flood of connections cannot queue unbounded work;
//! it gets structured `Shed` errors like everyone else. The server
//! never trusts the peer: oversized frames, unknown opcodes, and torn
//! reads all produce structured protocol errors or clean disconnects.
//!
//! Stats rendering is a pluggable callback so the serving binary can
//! supply the workspace's shared JSON emitter without this crate
//! depending on it.

use crate::error::ServiceError;
use crate::service::{ServiceHandle, ServiceStats};
use crate::wire::{
    read_frame_with_cap, write_frame_with_cap, FrameReader, WireRequest, WireResponse,
    MAX_FRAME_LEN, MAX_REPLY_FRAME_LEN,
};
use std::collections::BTreeMap;
use std::io;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Renders a stats document for the wire (the serving binary passes
/// the workspace JSON emitter here).
pub type StatsRenderer = Arc<dyn Fn(&ServiceStats) -> String + Send + Sync>;

/// Produces the encoded [`cap_obs::StatsSnapshot`] frame answering an
/// obs-stats request (typically `move || registry.snapshot().encode()`).
pub type ObsExporter = Arc<dyn Fn() -> Vec<u8> + Send + Sync>;

/// How often connection threads and the accept loop re-check the
/// shutdown flag while blocked on I/O.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Most peer-shard replicas one node will hold. Fleets are small (a
/// handful of shards); the bound exists so a hostile peer cannot grow
/// the store without limit.
const REPLICA_STORE_MAX_SHARDS: usize = 64;

/// Replicas of peer shards held by a fleet node, keyed by ring
/// identity. Only the newest ship generation per shard is kept.
type ReplicaStore = Arc<Mutex<BTreeMap<u64, (u64, Vec<u8>)>>>;

/// A bound TCP server ready to serve one [`ServiceHandle`].
pub struct TcpServer {
    listener: TcpListener,
    handle: ServiceHandle,
    render_stats: StatsRenderer,
    obs_export: Option<ObsExporter>,
    request_cap: usize,
    // Routing-epoch fence, stored as epoch+1 so 0 means "never fenced"
    // (a fresh node accepts any epoch until its router fences it).
    fence: Arc<AtomicU64>,
    replicas: ReplicaStore,
}

impl std::fmt::Debug for TcpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpServer")
            .field("local_addr", &self.listener.local_addr().ok())
            .finish()
    }
}

impl TcpServer {
    /// Binds to `addr` (use port `0` to let the OS pick).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(
        addr: impl ToSocketAddrs,
        handle: ServiceHandle,
        render_stats: StatsRenderer,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        Ok(Self {
            listener,
            handle,
            render_stats,
            obs_export: None,
            request_cap: MAX_FRAME_LEN,
            fence: Arc::new(AtomicU64::new(0)),
            replicas: Arc::new(Mutex::new(BTreeMap::new())),
        })
    }

    /// Answers obs-stats requests with `export`'s frame. Without an
    /// exporter the server replies with an empty snapshot rather than
    /// an error, so clients can always probe.
    #[must_use]
    pub fn with_obs_exporter(mut self, export: ObsExporter) -> Self {
        self.obs_export = Some(export);
        self
    }

    /// Raises the per-request frame cap. Fleet nodes need this: a
    /// replica push carries a whole warm-restart archive, which
    /// outgrows the hostile-tight default of [`MAX_FRAME_LEN`]. Servers
    /// facing untrusted peers keep the default.
    #[must_use]
    pub fn with_request_cap(mut self, cap: usize) -> Self {
        self.request_cap = cap;
        self
    }

    /// The address actually bound (resolves port `0`).
    ///
    /// # Errors
    ///
    /// Propagates the OS lookup failure.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves connections until a client sends a shutdown frame, then
    /// joins every connection thread and returns the requested drain
    /// budget. The caller owns the [`crate::service::Service`] and
    /// performs the actual drain + snapshot.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop setup failures (per-connection I/O errors
    /// only end that connection).
    pub fn run(self) -> io::Result<Duration> {
        self.listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let drain = Arc::new(Mutex::new(Duration::from_millis(500)));
        let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();

        while !stop.load(Ordering::Acquire) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let handle = self.handle.clone();
                    let render = Arc::clone(&self.render_stats);
                    let obs_export = self.obs_export.clone();
                    let stop = Arc::clone(&stop);
                    let drain = Arc::clone(&drain);
                    let request_cap = self.request_cap;
                    let fence = Arc::clone(&self.fence);
                    let replicas = Arc::clone(&self.replicas);
                    conns.push(std::thread::spawn(move || {
                        let shared = ConnShared {
                            request_cap,
                            fence,
                            replicas,
                        };
                        serve_connection(
                            stream,
                            &handle,
                            &render,
                            obs_export.as_ref(),
                            &shared,
                            &stop,
                            &drain,
                        );
                    }));
                    // Reap finished connection threads so a long-lived
                    // server does not accumulate handles.
                    conns.retain(|j| !j.is_finished());
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL_INTERVAL);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        for join in conns {
            let _ = join.join();
        }
        let budget = *drain.lock().expect("drain lock");
        Ok(budget)
    }
}

/// Per-server state shared by every connection thread.
struct ConnShared {
    request_cap: usize,
    fence: Arc<AtomicU64>,
    replicas: ReplicaStore,
}

impl ConnShared {
    /// The fence check run on every routed serve frame, *before* the
    /// request touches the backend. Direct traffic (`epoch: None`)
    /// always passes; routed traffic must match the fence exactly once
    /// one is set.
    fn check_fence(&self, epoch: Option<u64>) -> Result<(), ServiceError> {
        let fence = self.fence.load(Ordering::Acquire);
        match (fence, epoch) {
            (0, _) | (_, None) => Ok(()),
            (f, Some(sent)) if sent + 1 == f => Ok(()),
            (f, Some(sent)) => Err(ServiceError::Fenced { fence: f - 1, sent }),
        }
    }

    fn store_replica(&self, shard: u64, generation: u64, bytes: Vec<u8>) -> bool {
        let mut store = self.replicas.lock().expect("replica store lock");
        match store.get(&shard) {
            Some((held, _)) if *held >= generation => false,
            Some(_) => {
                store.insert(shard, (generation, bytes));
                true
            }
            None if store.len() >= REPLICA_STORE_MAX_SHARDS => false,
            None => {
                store.insert(shard, (generation, bytes));
                true
            }
        }
    }
}

fn serve_connection(
    stream: TcpStream,
    handle: &ServiceHandle,
    render_stats: &StatsRenderer,
    obs_export: Option<&ObsExporter>,
    shared: &ConnShared,
    stop: &AtomicBool,
    drain: &Mutex<Duration>,
) {
    let mut stream = stream;
    // Request/response framing with small frames: Nagle + delayed ACK
    // would add ~40ms to every roundtrip.
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    // The resumable reader keeps partial progress across the read
    // timeout used to poll the stop flag, so a frame trickling in
    // slower than one poll interval (a slow or slow-loris peer) still
    // assembles instead of desyncing the stream.
    let mut reader = FrameReader::new(shared.request_cap);
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        let payload = match reader.read_from(&mut stream) {
            Ok(Some(p)) => p,
            Ok(None) => return, // clean disconnect
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => return, // torn frame or dead socket
        };
        let response = match WireRequest::decode(&payload) {
            Ok(WireRequest::Serve {
                request,
                budget,
                epoch,
            }) => match shared
                .check_fence(epoch)
                .and_then(|()| handle.call(request, budget))
            {
                Ok(resp) => WireResponse::Response(resp),
                Err(err) => WireResponse::from_error(&err),
            },
            Ok(WireRequest::Stats) => match handle.stats() {
                Ok(stats) => WireResponse::Stats(render_stats(&stats)),
                Err(err) => WireResponse::from_error(&err),
            },
            Ok(WireRequest::ObsStats) => WireResponse::ObsStats(match obs_export {
                Some(export) => export(),
                None => cap_obs::StatsSnapshot::default().encode(),
            }),
            Ok(WireRequest::SnapshotPull) => match handle.snapshot_live() {
                Ok(archive) => WireResponse::Snapshot(archive),
                Err(err) => WireResponse::from_error(&err),
            },
            Ok(WireRequest::Fence { epoch }) => {
                shared.fence.store(epoch + 1, Ordering::Release);
                WireResponse::FenceAck
            }
            Ok(WireRequest::ReplicaPush {
                shard,
                generation,
                bytes,
            }) => WireResponse::ReplicaAck {
                stored: shared.store_replica(shard, generation, bytes),
            },
            Ok(WireRequest::ReplicaFetch { shard }) => WireResponse::Replica(
                shared
                    .replicas
                    .lock()
                    .expect("replica store lock")
                    .get(&shard)
                    .cloned(),
            ),
            Ok(WireRequest::Shutdown { drain: budget }) => {
                *drain.lock().expect("drain lock") = budget;
                stop.store(true, Ordering::Release);
                WireResponse::ShutdownAck
            }
            Err(err) => WireResponse::from_error(&err),
        };
        let is_ack = matches!(response, WireResponse::ShutdownAck);
        // Replies get the wide cap: a snapshot archive outgrows the
        // request cap at real table sizes. Requests stay tightly capped.
        if write_frame_with_cap(&mut stream, &response.encode(), MAX_REPLY_FRAME_LEN).is_err() {
            return;
        }
        if is_ack {
            return;
        }
    }
}

/// A blocking client for the TCP front end.
#[derive(Debug)]
pub struct TcpClient {
    stream: TcpStream,
    read_timeout: Option<Duration>,
}

impl TcpClient {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            read_timeout: None,
        })
    }

    /// Bounds how long a reply read may sit idle before the call fails
    /// with [`ServiceError::ReplyTimeout`]. This is an *inactivity*
    /// timeout: a reply trickling in keeps resetting it. After a
    /// timeout the stream may still carry the late reply, so the caller
    /// must drop this client rather than reuse a desynced connection.
    ///
    /// # Errors
    ///
    /// Propagates the socket option failure.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)?;
        self.read_timeout = timeout;
        Ok(())
    }

    fn roundtrip(&mut self, request: &WireRequest) -> Result<WireResponse, ServiceError> {
        let io_err = |e: io::Error| ServiceError::Protocol(format!("transport: {e}"));
        // Replica pushes carry whole archives, so they get the wide
        // write cap; every other request stays small.
        let write_cap = if matches!(request, WireRequest::ReplicaPush { .. }) {
            MAX_REPLY_FRAME_LEN
        } else {
            crate::wire::MAX_FRAME_LEN
        };
        write_frame_with_cap(&mut self.stream, &request.encode(), write_cap).map_err(io_err)?;
        // Replies are read under the wide cap: snapshot-pull answers
        // carry whole archives. We chose this server; the asymmetric
        // trust is deliberate.
        let reply = read_frame_with_cap(&mut self.stream, MAX_REPLY_FRAME_LEN).map_err(|e| {
            if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut {
                ServiceError::ReplyTimeout {
                    waited: self.read_timeout.unwrap_or(Duration::ZERO),
                }
            } else {
                io_err(e)
            }
        })?;
        match reply {
            Some(payload) => WireResponse::decode(&payload),
            None => Err(ServiceError::Protocol(
                "server closed the connection mid-request".into(),
            )),
        }
    }

    /// Sends one prediction request as direct (unrouted, never fenced
    /// out) client traffic.
    ///
    /// # Errors
    ///
    /// Service-side errors come back with their original
    /// [`ServiceError::code`] inside [`WireResponse::Error`]; transport
    /// failures surface as [`ServiceError::Protocol`]; an idle reply
    /// read over the configured timeout as
    /// [`ServiceError::ReplyTimeout`].
    pub fn serve(
        &mut self,
        request: crate::service::Request,
        budget: Option<Duration>,
    ) -> Result<WireResponse, ServiceError> {
        self.roundtrip(&WireRequest::Serve {
            request,
            budget,
            epoch: None,
        })
    }

    /// Sends one prediction request stamped with the routing epoch the
    /// sender's routing table carried. A fenced server refuses stale
    /// epochs with [`ServiceError::Fenced`] before any training.
    ///
    /// # Errors
    ///
    /// As for [`TcpClient::serve`].
    pub fn serve_routed(
        &mut self,
        request: crate::service::Request,
        budget: Option<Duration>,
        epoch: u64,
    ) -> Result<WireResponse, ServiceError> {
        self.roundtrip(&WireRequest::Serve {
            request,
            budget,
            epoch: Some(epoch),
        })
    }

    /// Pins the routing epoch the server accepts routed traffic under.
    ///
    /// # Errors
    ///
    /// As for [`TcpClient::serve`].
    pub fn fence(&mut self, epoch: u64) -> Result<(), ServiceError> {
        match self.roundtrip(&WireRequest::Fence { epoch })? {
            WireResponse::FenceAck => Ok(()),
            WireResponse::Error { code, message } => Err(ServiceError::Protocol(format!(
                "server error {code}: {message}"
            ))),
            other => Err(ServiceError::Protocol(format!(
                "unexpected response to fence: {other:?}"
            ))),
        }
    }

    /// Stores a warm replica of shard `shard` on the server. Returns
    /// whether the push won (a push loses only to a generation at least
    /// as new already held).
    ///
    /// # Errors
    ///
    /// As for [`TcpClient::serve`].
    pub fn replica_push(
        &mut self,
        shard: u64,
        generation: u64,
        bytes: Vec<u8>,
    ) -> Result<bool, ServiceError> {
        match self.roundtrip(&WireRequest::ReplicaPush {
            shard,
            generation,
            bytes,
        })? {
            WireResponse::ReplicaAck { stored } => Ok(stored),
            WireResponse::Error { code, message } => Err(ServiceError::Protocol(format!(
                "server error {code}: {message}"
            ))),
            other => Err(ServiceError::Protocol(format!(
                "unexpected response to replica-push: {other:?}"
            ))),
        }
    }

    /// Fetches the newest stored replica for shard `shard`, if any.
    ///
    /// # Errors
    ///
    /// As for [`TcpClient::serve`].
    pub fn replica_fetch(&mut self, shard: u64) -> Result<Option<(u64, Vec<u8>)>, ServiceError> {
        match self.roundtrip(&WireRequest::ReplicaFetch { shard })? {
            WireResponse::Replica(held) => Ok(held),
            WireResponse::Error { code, message } => Err(ServiceError::Protocol(format!(
                "server error {code}: {message}"
            ))),
            other => Err(ServiceError::Protocol(format!(
                "unexpected response to replica-fetch: {other:?}"
            ))),
        }
    }

    /// Fetches the server-rendered stats JSON.
    ///
    /// # Errors
    ///
    /// As for [`TcpClient::serve`].
    pub fn stats(&mut self) -> Result<WireResponse, ServiceError> {
        self.roundtrip(&WireRequest::Stats)
    }

    /// Fetches and decodes the server's telemetry registry snapshot.
    ///
    /// # Errors
    ///
    /// As for [`TcpClient::serve`]; a frame that does not decode as a
    /// [`cap_obs::StatsSnapshot`] is a [`ServiceError::Protocol`].
    pub fn obs_stats(&mut self) -> Result<cap_obs::StatsSnapshot, ServiceError> {
        match self.roundtrip(&WireRequest::ObsStats)? {
            WireResponse::ObsStats(bytes) => cap_obs::StatsSnapshot::decode(&bytes)
                .map_err(|e| ServiceError::Protocol(format!("obs stats frame: {e}"))),
            WireResponse::Error { code, message } => Err(ServiceError::Protocol(format!(
                "server error {code}: {message}"
            ))),
            other => Err(ServiceError::Protocol(format!(
                "unexpected response to obs-stats: {other:?}"
            ))),
        }
    }

    /// Pulls a live warm-restart snapshot archive from the server (the
    /// cluster layer's replica-shipping primitive). The server keeps
    /// serving; see [`ServiceHandle::snapshot_live`] for consistency.
    ///
    /// # Errors
    ///
    /// As for [`TcpClient::serve`].
    pub fn pull_snapshot(&mut self) -> Result<Vec<u8>, ServiceError> {
        match self.roundtrip(&WireRequest::SnapshotPull)? {
            WireResponse::Snapshot(bytes) => Ok(bytes),
            WireResponse::Error { code, message } => Err(ServiceError::Protocol(format!(
                "server error {code}: {message}"
            ))),
            other => Err(ServiceError::Protocol(format!(
                "unexpected response to snapshot-pull: {other:?}"
            ))),
        }
    }

    /// Asks the server to drain under `drain`, snapshot, and exit.
    ///
    /// # Errors
    ///
    /// As for [`TcpClient::serve`].
    pub fn shutdown(&mut self, drain: Duration) -> Result<WireResponse, ServiceError> {
        self.roundtrip(&WireRequest::Shutdown { drain })
    }
}

/// A plain debug renderer for stats (tests and servers that don't care
/// about the JSON shape).
#[must_use]
pub fn debug_stats_renderer() -> StatsRenderer {
    Arc::new(|stats: &ServiceStats| format!("{stats:?}"))
}
