//! Blocking TCP front end over [`crate::wire`].
//!
//! One thread per connection, frames dispatched straight into a
//! [`ServiceHandle`] — the service's own queues provide all the
//! backpressure, so a flood of connections cannot queue unbounded work;
//! it gets structured `Shed` errors like everyone else. The server
//! never trusts the peer: oversized frames, unknown opcodes, and torn
//! reads all produce structured protocol errors or clean disconnects.
//!
//! Stats rendering is a pluggable callback so the serving binary can
//! supply the workspace's shared JSON emitter without this crate
//! depending on it.

use crate::error::ServiceError;
use crate::service::{ServiceHandle, ServiceStats};
use crate::wire::{
    read_frame, read_frame_with_cap, write_frame, write_frame_with_cap, WireRequest, WireResponse,
    MAX_REPLY_FRAME_LEN,
};
use std::io;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Renders a stats document for the wire (the serving binary passes
/// the workspace JSON emitter here).
pub type StatsRenderer = Arc<dyn Fn(&ServiceStats) -> String + Send + Sync>;

/// Produces the encoded [`cap_obs::StatsSnapshot`] frame answering an
/// obs-stats request (typically `move || registry.snapshot().encode()`).
pub type ObsExporter = Arc<dyn Fn() -> Vec<u8> + Send + Sync>;

/// How often connection threads and the accept loop re-check the
/// shutdown flag while blocked on I/O.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// A bound TCP server ready to serve one [`ServiceHandle`].
pub struct TcpServer {
    listener: TcpListener,
    handle: ServiceHandle,
    render_stats: StatsRenderer,
    obs_export: Option<ObsExporter>,
}

impl std::fmt::Debug for TcpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpServer")
            .field("local_addr", &self.listener.local_addr().ok())
            .finish()
    }
}

impl TcpServer {
    /// Binds to `addr` (use port `0` to let the OS pick).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(
        addr: impl ToSocketAddrs,
        handle: ServiceHandle,
        render_stats: StatsRenderer,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        Ok(Self {
            listener,
            handle,
            render_stats,
            obs_export: None,
        })
    }

    /// Answers obs-stats requests with `export`'s frame. Without an
    /// exporter the server replies with an empty snapshot rather than
    /// an error, so clients can always probe.
    #[must_use]
    pub fn with_obs_exporter(mut self, export: ObsExporter) -> Self {
        self.obs_export = Some(export);
        self
    }

    /// The address actually bound (resolves port `0`).
    ///
    /// # Errors
    ///
    /// Propagates the OS lookup failure.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves connections until a client sends a shutdown frame, then
    /// joins every connection thread and returns the requested drain
    /// budget. The caller owns the [`crate::service::Service`] and
    /// performs the actual drain + snapshot.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop setup failures (per-connection I/O errors
    /// only end that connection).
    pub fn run(self) -> io::Result<Duration> {
        self.listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let drain = Arc::new(Mutex::new(Duration::from_millis(500)));
        let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();

        while !stop.load(Ordering::Acquire) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let handle = self.handle.clone();
                    let render = Arc::clone(&self.render_stats);
                    let obs_export = self.obs_export.clone();
                    let stop = Arc::clone(&stop);
                    let drain = Arc::clone(&drain);
                    conns.push(std::thread::spawn(move || {
                        serve_connection(stream, &handle, &render, obs_export.as_ref(), &stop, &drain);
                    }));
                    // Reap finished connection threads so a long-lived
                    // server does not accumulate handles.
                    conns.retain(|j| !j.is_finished());
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL_INTERVAL);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        for join in conns {
            let _ = join.join();
        }
        let budget = *drain.lock().expect("drain lock");
        Ok(budget)
    }
}

fn serve_connection(
    stream: TcpStream,
    handle: &ServiceHandle,
    render_stats: &StatsRenderer,
    obs_export: Option<&ObsExporter>,
    stop: &AtomicBool,
    drain: &Mutex<Duration>,
) {
    let mut stream = stream;
    // Request/response framing with small frames: Nagle + delayed ACK
    // would add ~40ms to every roundtrip.
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        let payload = match read_frame(&mut stream) {
            Ok(Some(p)) => p,
            Ok(None) => return, // clean disconnect
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => return, // torn frame or dead socket
        };
        let response = match WireRequest::decode(&payload) {
            Ok(WireRequest::Serve { request, budget }) => match handle.call(request, budget) {
                Ok(resp) => WireResponse::Response(resp),
                Err(err) => WireResponse::from_error(&err),
            },
            Ok(WireRequest::Stats) => match handle.stats() {
                Ok(stats) => WireResponse::Stats(render_stats(&stats)),
                Err(err) => WireResponse::from_error(&err),
            },
            Ok(WireRequest::ObsStats) => WireResponse::ObsStats(match obs_export {
                Some(export) => export(),
                None => cap_obs::StatsSnapshot::default().encode(),
            }),
            Ok(WireRequest::SnapshotPull) => match handle.snapshot_live() {
                Ok(archive) => WireResponse::Snapshot(archive),
                Err(err) => WireResponse::from_error(&err),
            },
            Ok(WireRequest::Shutdown { drain: budget }) => {
                *drain.lock().expect("drain lock") = budget;
                stop.store(true, Ordering::Release);
                WireResponse::ShutdownAck
            }
            Err(err) => WireResponse::from_error(&err),
        };
        let is_ack = matches!(response, WireResponse::ShutdownAck);
        // Replies get the wide cap: a snapshot archive outgrows the
        // request cap at real table sizes. Requests stay tightly capped.
        if write_frame_with_cap(&mut stream, &response.encode(), MAX_REPLY_FRAME_LEN).is_err() {
            return;
        }
        if is_ack {
            return;
        }
    }
}

/// A blocking client for the TCP front end.
#[derive(Debug)]
pub struct TcpClient {
    stream: TcpStream,
}

impl TcpClient {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    fn roundtrip(&mut self, request: &WireRequest) -> Result<WireResponse, ServiceError> {
        let io_err = |e: io::Error| ServiceError::Protocol(format!("transport: {e}"));
        write_frame(&mut self.stream, &request.encode()).map_err(io_err)?;
        // Replies are read under the wide cap: snapshot-pull answers
        // carry whole archives. We chose this server; the asymmetric
        // trust is deliberate.
        match read_frame_with_cap(&mut self.stream, MAX_REPLY_FRAME_LEN).map_err(io_err)? {
            Some(payload) => WireResponse::decode(&payload),
            None => Err(ServiceError::Protocol(
                "server closed the connection mid-request".into(),
            )),
        }
    }

    /// Sends one prediction request.
    ///
    /// # Errors
    ///
    /// Service-side errors come back with their original
    /// [`ServiceError::code`] inside [`WireResponse::Error`]; transport
    /// failures surface as [`ServiceError::Protocol`].
    pub fn serve(
        &mut self,
        request: crate::service::Request,
        budget: Option<Duration>,
    ) -> Result<WireResponse, ServiceError> {
        self.roundtrip(&WireRequest::Serve { request, budget })
    }

    /// Fetches the server-rendered stats JSON.
    ///
    /// # Errors
    ///
    /// As for [`TcpClient::serve`].
    pub fn stats(&mut self) -> Result<WireResponse, ServiceError> {
        self.roundtrip(&WireRequest::Stats)
    }

    /// Fetches and decodes the server's telemetry registry snapshot.
    ///
    /// # Errors
    ///
    /// As for [`TcpClient::serve`]; a frame that does not decode as a
    /// [`cap_obs::StatsSnapshot`] is a [`ServiceError::Protocol`].
    pub fn obs_stats(&mut self) -> Result<cap_obs::StatsSnapshot, ServiceError> {
        match self.roundtrip(&WireRequest::ObsStats)? {
            WireResponse::ObsStats(bytes) => cap_obs::StatsSnapshot::decode(&bytes)
                .map_err(|e| ServiceError::Protocol(format!("obs stats frame: {e}"))),
            WireResponse::Error { code, message } => Err(ServiceError::Protocol(format!(
                "server error {code}: {message}"
            ))),
            other => Err(ServiceError::Protocol(format!(
                "unexpected response to obs-stats: {other:?}"
            ))),
        }
    }

    /// Pulls a live warm-restart snapshot archive from the server (the
    /// cluster layer's replica-shipping primitive). The server keeps
    /// serving; see [`ServiceHandle::snapshot_live`] for consistency.
    ///
    /// # Errors
    ///
    /// As for [`TcpClient::serve`].
    pub fn pull_snapshot(&mut self) -> Result<Vec<u8>, ServiceError> {
        match self.roundtrip(&WireRequest::SnapshotPull)? {
            WireResponse::Snapshot(bytes) => Ok(bytes),
            WireResponse::Error { code, message } => Err(ServiceError::Protocol(format!(
                "server error {code}: {message}"
            ))),
            other => Err(ServiceError::Protocol(format!(
                "unexpected response to snapshot-pull: {other:?}"
            ))),
        }
    }

    /// Asks the server to drain under `drain`, snapshot, and exit.
    ///
    /// # Errors
    ///
    /// As for [`TcpClient::serve`].
    pub fn shutdown(&mut self, drain: Duration) -> Result<WireResponse, ServiceError> {
        self.roundtrip(&WireRequest::Shutdown { drain })
    }
}

/// A plain debug renderer for stats (tests and servers that don't care
/// about the JSON shape).
#[must_use]
pub fn debug_stats_renderer() -> StatsRenderer {
    Arc::new(|stats: &ServiceStats| format!("{stats:?}"))
}
