//! The graceful-degradation ladder.
//!
//! The paper's hybrid already degrades *inside* the algorithm: per-load
//! confidence counters make CAP fall back to enhanced stride when
//! context prediction goes cold. The ladder lifts the same shape to
//! service granularity:
//!
//! ```text
//!   Hybrid ──► StrideOnly ──► Bypass
//!   (full)     (cheap, safe)  (no-predict passthrough)
//! ```
//!
//! A worker steps **down** immediately when the rung's breaker trips or
//! the ingress queue crosses its pressure watermark, and steps back
//! **up** only one rung at a time, after `promote_after` consecutive
//! healthy requests *and* only when the better rung's breaker permits
//! calls again — so a flapping backend cannot yank the service straight
//! back to the top and fail again.

use crate::names;
use cap_obs::Obs;

/// A rung of the ladder, best first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rung {
    /// Full hybrid prediction (paper §3.5) — the top rung.
    Hybrid = 0,
    /// Enhanced-stride-only prediction (paper §3.2) — cheaper and
    /// immune to Link Table pathologies.
    StrideOnly = 1,
    /// No prediction at all: requests pass through with an empty
    /// prediction and no training. The safe serial path.
    Bypass = 2,
}

impl Rung {
    /// All rungs, best first.
    pub const ALL: [Rung; 3] = [Rung::Hybrid, Rung::StrideOnly, Rung::Bypass];

    /// Short lowercase name for stats and logs.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Rung::Hybrid => "hybrid",
            Rung::StrideOnly => "stride-only",
            Rung::Bypass => "bypass",
        }
    }

    /// Index into [`Rung::ALL`] (0 = best).
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// One rung worse, saturating at [`Rung::Bypass`].
    #[must_use]
    pub fn down(self) -> Rung {
        match self {
            Rung::Hybrid => Rung::StrideOnly,
            Rung::StrideOnly | Rung::Bypass => Rung::Bypass,
        }
    }

    /// One rung better, saturating at [`Rung::Hybrid`].
    #[must_use]
    pub fn up(self) -> Rung {
        match self {
            Rung::Bypass => Rung::StrideOnly,
            Rung::StrideOnly | Rung::Hybrid => Rung::Hybrid,
        }
    }
}

/// Ladder tuning.
#[derive(Debug, Clone, Copy)]
pub struct LadderConfig {
    /// Consecutive healthy requests required before promoting one rung.
    pub promote_after: u32,
    /// Queue depth at (or above) which the ladder treats the worker as
    /// pressured and steps down.
    pub pressure_high: usize,
    /// Queue depth at (or below) which pressure is considered relieved
    /// (hysteresis: between the watermarks the current verdict holds).
    pub pressure_low: usize,
}

impl Default for LadderConfig {
    fn default() -> Self {
        Self {
            promote_after: 32,
            pressure_high: 48,
            pressure_low: 16,
        }
    }
}

/// Per-worker ladder state machine.
#[derive(Debug)]
pub struct Ladder {
    config: LadderConfig,
    rung: Rung,
    healthy_streak: u32,
    pressured: bool,
    /// Lifetime demotions/promotions, for stats.
    demotions: u64,
    promotions: u64,
    obs: Obs,
}

/// What the ladder needs to know about the world each time it
/// reassesses: which rungs' backends would currently accept a call, and
/// how deep the ingress queue is.
#[derive(Debug, Clone, Copy)]
pub struct LadderInputs {
    /// Hybrid breaker permits calls (closed or half-open).
    pub hybrid_available: bool,
    /// Stride breaker permits calls.
    pub stride_available: bool,
    /// Current ingress queue depth of this worker.
    pub queue_depth: usize,
}

impl Ladder {
    /// A ladder starting on the given rung.
    #[must_use]
    pub fn new(config: LadderConfig, initial: Rung) -> Self {
        Self {
            config,
            rung: initial,
            healthy_streak: 0,
            pressured: false,
            demotions: 0,
            promotions: 0,
            obs: Obs::off(),
        }
    }

    /// Attaches a telemetry sink for the `service.ladder.*` transition
    /// counters. Not part of any snapshot — re-attach after a restore.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// The rung the worker should serve the next request on.
    #[must_use]
    pub fn rung(&self) -> Rung {
        self.rung
    }

    /// Lifetime number of step-downs.
    #[must_use]
    pub fn demotions(&self) -> u64 {
        self.demotions
    }

    /// Lifetime number of step-ups.
    #[must_use]
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    fn availability(inputs: &LadderInputs, rung: Rung) -> bool {
        match rung {
            Rung::Hybrid => inputs.hybrid_available,
            Rung::StrideOnly => inputs.stride_available,
            Rung::Bypass => true,
        }
    }

    /// The best rung whose backend is currently available, starting the
    /// search at `from` and walking down.
    fn best_available_from(inputs: &LadderInputs, from: Rung) -> Rung {
        let mut rung = from;
        while !Self::availability(inputs, rung) {
            rung = rung.down();
        }
        rung
    }

    /// Reassesses the rung before serving one request. Demotions apply
    /// immediately; promotions wait for `promote_after` consecutive
    /// healthy requests (tracked via [`Ladder::note_outcome`]) and
    /// climb one rung at a time.
    pub fn reassess(&mut self, inputs: &LadderInputs) -> Rung {
        // Pressure hysteresis on the ingress queue.
        if inputs.queue_depth >= self.config.pressure_high {
            self.pressured = true;
        } else if inputs.queue_depth <= self.config.pressure_low {
            self.pressured = false;
        }

        // The best rung the world currently allows: best available
        // from the top, minus one under queue pressure — shedding
        // prediction work is exactly the cheap capacity we can
        // reclaim. Computed from the top (not the current rung) so
        // sustained pressure holds the rung rather than ratcheting it
        // down one step per request.
        let mut floor = Self::best_available_from(inputs, Rung::Hybrid);
        if self.pressured {
            floor = floor.down();
        }

        if floor > self.rung {
            // Current rung is better than allowed: step down now.
            self.rung = floor;
            self.healthy_streak = 0;
            self.demotions += 1;
            self.obs.incr(names::LADDER_DEMOTE);
        } else if self.rung > floor && self.healthy_streak >= self.config.promote_after.max(1) {
            // Sustained health below the allowed ceiling: try one rung
            // up, if its backend will have us.
            let candidate = self.rung.up();
            if Self::availability(inputs, candidate) {
                self.rung = candidate;
                self.healthy_streak = 0;
                self.promotions += 1;
                self.obs.incr(names::LADDER_PROMOTE);
            }
        }
        self.rung
    }

    /// Records the outcome of the request just served. Only healthy
    /// outcomes extend the promotion streak; any failure resets it.
    pub fn note_outcome(&mut self, healthy: bool) {
        if healthy {
            self.healthy_streak = self.healthy_streak.saturating_add(1);
        } else {
            self.healthy_streak = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> LadderConfig {
        LadderConfig {
            promote_after: 3,
            pressure_high: 8,
            pressure_low: 2,
        }
    }

    fn calm(hybrid: bool, stride: bool) -> LadderInputs {
        LadderInputs {
            hybrid_available: hybrid,
            stride_available: stride,
            queue_depth: 0,
        }
    }

    #[test]
    fn rung_ordering_and_saturation() {
        assert!(Rung::Hybrid < Rung::StrideOnly);
        assert_eq!(Rung::Hybrid.down(), Rung::StrideOnly);
        assert_eq!(Rung::Bypass.down(), Rung::Bypass);
        assert_eq!(Rung::Bypass.up(), Rung::StrideOnly);
        assert_eq!(Rung::Hybrid.up(), Rung::Hybrid);
        assert_eq!(Rung::ALL[Rung::StrideOnly.index()], Rung::StrideOnly);
    }

    #[test]
    fn breaker_trip_steps_down_immediately() {
        let mut l = Ladder::new(config(), Rung::Hybrid);
        assert_eq!(l.reassess(&calm(true, true)), Rung::Hybrid);
        assert_eq!(l.reassess(&calm(false, true)), Rung::StrideOnly);
        assert_eq!(l.demotions(), 1);
        // Both breakers open: all the way to bypass.
        assert_eq!(l.reassess(&calm(false, false)), Rung::Bypass);
        assert_eq!(l.demotions(), 2);
    }

    #[test]
    fn promotion_needs_sustained_health_and_an_available_backend() {
        let mut l = Ladder::new(config(), Rung::StrideOnly);
        // Healthy but not for long enough: stays put.
        for _ in 0..2 {
            l.note_outcome(true);
            assert_eq!(l.reassess(&calm(true, true)), Rung::StrideOnly);
        }
        l.note_outcome(true);
        assert_eq!(l.reassess(&calm(true, true)), Rung::Hybrid);
        assert_eq!(l.promotions(), 1);
    }

    #[test]
    fn promotion_waits_for_the_breaker() {
        let mut l = Ladder::new(config(), Rung::StrideOnly);
        for _ in 0..10 {
            l.note_outcome(true);
        }
        // Hybrid breaker still open: no promotion no matter the streak.
        assert_eq!(l.reassess(&calm(false, true)), Rung::StrideOnly);
        // Breaker admits probes again: climb.
        assert_eq!(l.reassess(&calm(true, true)), Rung::Hybrid);
    }

    #[test]
    fn failure_resets_the_streak() {
        let mut l = Ladder::new(config(), Rung::StrideOnly);
        l.note_outcome(true);
        l.note_outcome(true);
        l.note_outcome(false);
        l.note_outcome(true);
        assert_eq!(l.reassess(&calm(true, true)), Rung::StrideOnly);
    }

    #[test]
    fn climb_from_bypass_is_one_rung_at_a_time() {
        let mut l = Ladder::new(config(), Rung::Bypass);
        for _ in 0..3 {
            l.note_outcome(true);
        }
        assert_eq!(l.reassess(&calm(true, true)), Rung::StrideOnly);
        for _ in 0..3 {
            l.note_outcome(true);
        }
        assert_eq!(l.reassess(&calm(true, true)), Rung::Hybrid);
        assert_eq!(l.promotions(), 2);
    }

    #[test]
    fn queue_pressure_demotes_with_hysteresis() {
        let mut l = Ladder::new(config(), Rung::Hybrid);
        let mut inputs = calm(true, true);
        inputs.queue_depth = 8; // at the high watermark
        assert_eq!(l.reassess(&inputs), Rung::StrideOnly);
        // Between watermarks: verdict holds even with a long streak.
        inputs.queue_depth = 5;
        for _ in 0..10 {
            l.note_outcome(true);
        }
        assert_eq!(l.reassess(&inputs), Rung::StrideOnly);
        // Below the low watermark: pressure clears, promotion resumes.
        inputs.queue_depth = 2;
        assert_eq!(l.reassess(&inputs), Rung::Hybrid);
    }

    #[test]
    fn pressure_on_a_degraded_rung_pushes_further_down() {
        let mut l = Ladder::new(config(), Rung::Hybrid);
        let mut inputs = calm(false, true);
        inputs.queue_depth = 20;
        // Hybrid unavailable AND pressured: stride-only minus one.
        assert_eq!(l.reassess(&inputs), Rung::Bypass);
    }
}
