//! Prediction backends as shareable trait objects.
//!
//! A worker holds its backends as `Box<dyn SharedPredictor>` — the
//! dyn-compatibility contract [`cap_predictor::types::SharedPredictor`]
//! guarantees — so the primary/fallback pair is data, not a hardcoded
//! enum: a service can serve hybrid-over-stride (the paper's ladder) or
//! cap-over-stride without any new dispatch code. Restore paths decode
//! through [`BackendKind`] tags because `Restorable` is a constructor
//! and cannot ride on the trait object.

use cap_predictor::cap::{CapConfig, CapPredictor};
use cap_predictor::hybrid::{HybridConfig, HybridPredictor};
use cap_predictor::load_buffer::LoadBufferConfig;
use cap_predictor::packed::PackedHybridPredictor;
use cap_predictor::stride::{StrideParams, StridePredictor};
use cap_predictor::types::SharedPredictor;
use cap_snapshot::{SectionReader, Restorable, SnapshotError};

/// Which concrete predictor a backend slot holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// The paper's stride + CAP hybrid (§3.5).
    Hybrid,
    /// Pure CAP (§3.3).
    Cap,
    /// Enhanced stride (§3.2).
    Stride,
    /// The hybrid on the bit-packed flat tables — behaviourally
    /// identical to [`BackendKind::Hybrid`], with a batch predict fast
    /// path and no allocation on the predict path.
    PackedHybrid,
}

impl BackendKind {
    /// Short lowercase name (breaker stats, CLI).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Hybrid => "hybrid",
            BackendKind::Cap => "cap",
            BackendKind::Stride => "stride",
            BackendKind::PackedHybrid => "packed-hybrid",
        }
    }

    /// Parses a CLI/wire name.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "hybrid" => Some(BackendKind::Hybrid),
            "cap" => Some(BackendKind::Cap),
            "stride" => Some(BackendKind::Stride),
            "packed-hybrid" => Some(BackendKind::PackedHybrid),
            _ => None,
        }
    }

    /// Snapshot tag.
    #[must_use]
    pub fn tag(self) -> u8 {
        match self {
            BackendKind::Hybrid => 0,
            BackendKind::Cap => 1,
            BackendKind::Stride => 2,
            BackendKind::PackedHybrid => 3,
        }
    }

    /// Inverse of [`BackendKind::tag`].
    #[must_use]
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(BackendKind::Hybrid),
            1 => Some(BackendKind::Cap),
            2 => Some(BackendKind::Stride),
            3 => Some(BackendKind::PackedHybrid),
            _ => None,
        }
    }

    /// A fresh paper-default backend of this kind.
    #[must_use]
    pub fn build(self) -> Box<dyn SharedPredictor> {
        match self {
            BackendKind::Hybrid => Box::new(HybridPredictor::new(HybridConfig::paper_default())),
            BackendKind::Cap => Box::new(CapPredictor::new(CapConfig::paper_default())),
            BackendKind::Stride => Box::new(StridePredictor::new(
                LoadBufferConfig::paper_default(),
                StrideParams::paper_default(),
            )),
            BackendKind::PackedHybrid => Box::new(PackedHybridPredictor::new(
                HybridConfig::paper_default(),
            )),
        }
    }

    /// Decodes a backend of this kind from a snapshot section.
    ///
    /// # Errors
    ///
    /// Propagates decode failures from the underlying predictor.
    pub fn restore(
        self,
        r: &mut SectionReader<'_>,
    ) -> Result<Box<dyn SharedPredictor>, SnapshotError> {
        Ok(match self {
            BackendKind::Hybrid => Box::new(HybridPredictor::read_state(r)?),
            BackendKind::Cap => Box::new(CapPredictor::read_state(r)?),
            BackendKind::Stride => Box::new(StridePredictor::read_state(r)?),
            BackendKind::PackedHybrid => Box::new(PackedHybridPredictor::read_state(r)?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cap_predictor::types::LoadContext;
    use cap_snapshot::SectionWriter;

    #[test]
    fn names_and_tags_roundtrip() {
        for kind in [
            BackendKind::Hybrid,
            BackendKind::Cap,
            BackendKind::Stride,
            BackendKind::PackedHybrid,
        ] {
            assert_eq!(BackendKind::parse(kind.name()), Some(kind));
            assert_eq!(BackendKind::from_tag(kind.tag()), Some(kind));
        }
        assert_eq!(BackendKind::parse("nope"), None);
        assert_eq!(BackendKind::from_tag(7), None);
    }

    #[test]
    fn build_snapshot_restore_preserves_behavior() {
        for kind in [
            BackendKind::Hybrid,
            BackendKind::Cap,
            BackendKind::Stride,
            BackendKind::PackedHybrid,
        ] {
            let mut original = kind.build();
            // Train a short stride pattern so there is state to carry.
            for i in 0..64u64 {
                let ctx = LoadContext::new(0x500, 0, 0);
                let pred = original.predict(&ctx);
                original.update(&ctx, 0x9000 + i * 8, &pred);
            }
            let mut w = SectionWriter::new();
            original.write_state(&mut w);
            let bytes = w.into_bytes();
            let mut r = SectionReader::new(&bytes, "backend");
            let mut restored = kind.restore(&mut r).expect("restores");
            r.finish().expect("all bytes consumed");

            // Original and restored must predict identically from here.
            let ctx = LoadContext::new(0x500, 0, 0);
            assert_eq!(original.predict(&ctx), restored.predict(&ctx), "{}", kind.name());
        }
    }
}
