//! Prediction backends as shareable trait objects, dispatched through
//! one static registry.
//!
//! A worker holds its backends as `Box<dyn SharedPredictor>` — the
//! dyn-compatibility contract [`cap_predictor::types::SharedPredictor`]
//! guarantees — so the primary/fallback pair is data, not a hardcoded
//! enum. Every per-kind fact (CLI name, snapshot tag, constructor,
//! snapshot decoder) lives in exactly one row of [`BACKEND_REGISTRY`];
//! the [`BackendKind`] methods are thin lookups over it, which is why
//! registering a new backend is a one-row edit and why nothing outside
//! this module is allowed to `match` on `BackendKind` (enforced by
//! `scripts/verify.sh backends`). Restore paths decode through
//! [`BackendKind`] tags because `Restorable` is a constructor and
//! cannot ride on the trait object.

use cap_predictor::cap::{CapConfig, CapPredictor};
use cap_predictor::hybrid::{HybridConfig, HybridPredictor};
use cap_predictor::load_buffer::LoadBufferConfig;
use cap_predictor::packed::PackedHybridPredictor;
use cap_predictor::stride::{StrideParams, StridePredictor};
use cap_predictor::types::SharedPredictor;
use cap_snapshot::{Restorable, SectionReader, SnapshotError};
use cap_uarch::cache_level::{CacheLevelConfig, CacheLevelPredictor};
use cap_uarch::ldbp::{LdbpConfig, LdbpPredictor};
use cap_uarch::pcax::{PcaxConfig, PcaxPredictor};
use std::fmt;

/// Which concrete predictor a backend slot holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// The paper's stride + CAP hybrid (§3.5).
    Hybrid,
    /// Pure CAP (§3.3).
    Cap,
    /// Enhanced stride (§3.2).
    Stride,
    /// The hybrid on the bit-packed flat tables — behaviourally
    /// identical to [`BackendKind::Hybrid`], with a batch predict fast
    /// path and no allocation on the predict path.
    PackedHybrid,
    /// Stride addresses + per-PC cache-level prediction against the
    /// `cap-uarch` hierarchy model (Jalili & Erez).
    CacheLevel,
    /// Hybrid addresses + GHR-correlated early branch resolution
    /// (Sridhar et al., LDBP).
    Ldbp,
    /// Stride addresses + PC-indexed translation assist pre-warming a
    /// modeled TLB (Murthy & Sohi, PCAX).
    Pcax,
}

/// One registered backend: everything the service stack needs to know
/// about a kind, in one row. Adding a backend means adding one row to
/// [`BACKEND_REGISTRY`] (plus the enum variant it names).
pub struct BackendDescriptor {
    /// The kind this row describes.
    pub kind: BackendKind,
    /// Short lowercase name (breaker stats, CLI, wire errors).
    pub name: &'static str,
    /// Snapshot tag (stable across releases — never reuse a value).
    pub tag: u8,
    /// Builds a fresh paper-default instance.
    pub build: fn() -> Box<dyn SharedPredictor>,
    /// Decodes an instance from a snapshot section.
    pub restore: fn(&mut SectionReader<'_>) -> Result<Box<dyn SharedPredictor>, SnapshotError>,
}

impl fmt::Debug for BackendDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BackendDescriptor")
            .field("kind", &self.kind)
            .field("name", &self.name)
            .field("tag", &self.tag)
            .finish_non_exhaustive()
    }
}

fn build_hybrid() -> Box<dyn SharedPredictor> {
    Box::new(HybridPredictor::new(HybridConfig::paper_default()))
}

fn build_cap() -> Box<dyn SharedPredictor> {
    Box::new(CapPredictor::new(CapConfig::paper_default()))
}

fn build_stride() -> Box<dyn SharedPredictor> {
    Box::new(StridePredictor::new(
        LoadBufferConfig::paper_default(),
        StrideParams::paper_default(),
    ))
}

fn build_packed_hybrid() -> Box<dyn SharedPredictor> {
    Box::new(PackedHybridPredictor::new(HybridConfig::paper_default()))
}

fn build_cache_level() -> Box<dyn SharedPredictor> {
    Box::new(CacheLevelPredictor::new(CacheLevelConfig::paper_default()))
}

fn build_ldbp() -> Box<dyn SharedPredictor> {
    Box::new(LdbpPredictor::new(LdbpConfig::paper_default()))
}

fn build_pcax() -> Box<dyn SharedPredictor> {
    Box::new(PcaxPredictor::new(PcaxConfig::paper_default()))
}

fn restore_boxed<P: SharedPredictor + Restorable + 'static>(
    r: &mut SectionReader<'_>,
) -> Result<Box<dyn SharedPredictor>, SnapshotError> {
    Ok(Box::new(P::read_state(r)?))
}

/// The single dispatch table for every selectable backend.
pub static BACKEND_REGISTRY: &[BackendDescriptor] = &[
    BackendDescriptor {
        kind: BackendKind::Hybrid,
        name: "hybrid",
        tag: 0,
        build: build_hybrid,
        restore: restore_boxed::<HybridPredictor>,
    },
    BackendDescriptor {
        kind: BackendKind::Cap,
        name: "cap",
        tag: 1,
        build: build_cap,
        restore: restore_boxed::<CapPredictor>,
    },
    BackendDescriptor {
        kind: BackendKind::Stride,
        name: "stride",
        tag: 2,
        build: build_stride,
        restore: restore_boxed::<StridePredictor>,
    },
    BackendDescriptor {
        kind: BackendKind::PackedHybrid,
        name: "packed-hybrid",
        tag: 3,
        build: build_packed_hybrid,
        restore: restore_boxed::<PackedHybridPredictor>,
    },
    BackendDescriptor {
        kind: BackendKind::CacheLevel,
        name: "cache-level",
        tag: 4,
        build: build_cache_level,
        restore: restore_boxed::<CacheLevelPredictor>,
    },
    BackendDescriptor {
        kind: BackendKind::Ldbp,
        name: "ldbp",
        tag: 5,
        build: build_ldbp,
        restore: restore_boxed::<LdbpPredictor>,
    },
    BackendDescriptor {
        kind: BackendKind::Pcax,
        name: "pcax",
        tag: 6,
        build: build_pcax,
        restore: restore_boxed::<PcaxPredictor>,
    },
];

/// A backend name that matched nothing in [`BACKEND_REGISTRY`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendParseError {
    input: String,
}

impl BackendParseError {
    /// The rejected input.
    #[must_use]
    pub fn input(&self) -> &str {
        &self.input
    }
}

impl fmt::Display for BackendParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown backend '{}' (valid backends: {})",
            self.input,
            registered_names().join(", ")
        )
    }
}

impl std::error::Error for BackendParseError {}

/// Every registered backend name, in registry order.
#[must_use]
pub fn registered_names() -> Vec<&'static str> {
    BACKEND_REGISTRY.iter().map(|d| d.name).collect()
}

impl BackendKind {
    /// This kind's registry row.
    #[must_use]
    pub fn descriptor(self) -> &'static BackendDescriptor {
        BACKEND_REGISTRY
            .iter()
            .find(|d| d.kind == self)
            .expect("every BackendKind variant has a registry row")
    }

    /// Short lowercase name (breaker stats, CLI).
    #[must_use]
    pub fn name(self) -> &'static str {
        self.descriptor().name
    }

    /// Parses a CLI/wire name (case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns a [`BackendParseError`] listing the registered names
    /// when `s` matches none of them.
    pub fn parse(s: &str) -> Result<Self, BackendParseError> {
        BACKEND_REGISTRY
            .iter()
            .find(|d| d.name.eq_ignore_ascii_case(s))
            .map(|d| d.kind)
            .ok_or_else(|| BackendParseError { input: s.to_owned() })
    }

    /// Parses a CLI/wire name.
    #[deprecated(since = "0.2.0", note = "use BackendKind::parse, which reports valid names")]
    #[must_use]
    pub fn parse_opt(s: &str) -> Option<Self> {
        Self::parse(s).ok()
    }

    /// Snapshot tag.
    #[must_use]
    pub fn tag(self) -> u8 {
        self.descriptor().tag
    }

    /// Inverse of [`BackendKind::tag`].
    #[must_use]
    pub fn from_tag(tag: u8) -> Option<Self> {
        BACKEND_REGISTRY.iter().find(|d| d.tag == tag).map(|d| d.kind)
    }

    /// A fresh paper-default backend of this kind.
    #[must_use]
    pub fn build(self) -> Box<dyn SharedPredictor> {
        (self.descriptor().build)()
    }

    /// Decodes a backend of this kind from a snapshot section.
    ///
    /// # Errors
    ///
    /// Propagates decode failures from the underlying predictor.
    pub fn restore(
        self,
        r: &mut SectionReader<'_>,
    ) -> Result<Box<dyn SharedPredictor>, SnapshotError> {
        (self.descriptor().restore)(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cap_predictor::types::LoadContext;
    use cap_snapshot::SectionWriter;

    #[test]
    fn registry_has_no_collisions() {
        for (i, a) in BACKEND_REGISTRY.iter().enumerate() {
            for b in &BACKEND_REGISTRY[i + 1..] {
                assert_ne!(a.kind, b.kind, "duplicate kind row: {:?}", a.kind);
                assert_ne!(
                    a.tag, b.tag,
                    "tag {} claimed by both {} and {}",
                    a.tag, a.name, b.name
                );
                assert!(
                    !a.name.eq_ignore_ascii_case(b.name),
                    "name '{}' collides with '{}' (parsing is case-insensitive)",
                    a.name,
                    b.name
                );
            }
        }
    }

    #[test]
    fn every_registered_backend_roundtrips_name_and_tag() {
        assert!(!BACKEND_REGISTRY.is_empty());
        for d in BACKEND_REGISTRY {
            let kind = d.kind;
            assert_eq!(BackendKind::parse(kind.name()), Ok(kind));
            assert_eq!(BackendKind::from_tag(kind.tag()), Some(kind));
            assert_eq!(kind.descriptor().name, d.name);
            // Case-insensitive: the uppercase spelling parses too.
            assert_eq!(
                BackendKind::parse(&kind.name().to_ascii_uppercase()),
                Ok(kind)
            );
        }
    }

    #[test]
    fn parse_failure_lists_registered_names() {
        let err = BackendKind::parse("nope").expect_err("unknown name");
        assert_eq!(err.input(), "nope");
        let msg = err.to_string();
        for d in BACKEND_REGISTRY {
            assert!(msg.contains(d.name), "error message must list '{}'", d.name);
        }
        assert_eq!(BackendKind::from_tag(200), None);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_option_shim_still_parses() {
        assert_eq!(BackendKind::parse_opt("hybrid"), Some(BackendKind::Hybrid));
        assert_eq!(BackendKind::parse_opt("nope"), None);
    }

    #[test]
    fn build_snapshot_restore_preserves_behavior() {
        // Registry-driven: a new backend is covered the moment its row
        // lands, and can never be forgotten here.
        for d in BACKEND_REGISTRY {
            let kind = d.kind;
            let mut original = kind.build();
            // Train a short stride pattern so there is state to carry.
            for i in 0..64u64 {
                let ctx = LoadContext::new(0x500, 0, 0);
                let pred = original.predict(&ctx);
                original.update(&ctx, 0x9000 + i * 8, &pred);
            }
            let mut w = SectionWriter::new();
            original.write_state(&mut w);
            let bytes = w.into_bytes();
            let mut r = SectionReader::new(&bytes, "backend");
            let mut restored = kind.restore(&mut r).expect("restores");
            r.finish().expect("all bytes consumed");

            // Original and restored must predict identically from here.
            let ctx = LoadContext::new(0x500, 0, 0);
            assert_eq!(original.predict(&ctx), restored.predict(&ctx), "{}", kind.name());
        }
    }
}
