//! Length-prefixed wire protocol for the TCP front end.
//!
//! Every message is one frame: a little-endian `u32` payload length
//! followed by that many payload bytes. Payloads are encoded with the
//! same [`SectionWriter`]/[`SectionReader`] discipline as snapshots, so
//! truncation and bad values surface as structured errors, never as
//! panics on attacker-controlled bytes. Frames are capped at
//! [`MAX_FRAME_LEN`]; a peer announcing a larger payload is cut off
//! before any allocation happens.
//!
//! Every payload opens with a protocol **version byte**
//! ([`WIRE_VERSION`]); a peer speaking a different protocol revision is
//! refused with a structured error naming both versions instead of
//! being misparsed. Request opcodes: `1` observe, `2` predict, `3`
//! stats, `4` shutdown, `5` obs-stats (the binary
//! [`cap_obs::StatsSnapshot`] frame), `6` snapshot-pull (a live
//! warm-restart archive of the whole service — the cluster layer's
//! replica-shipping primitive), `7` fence (pin the routing epoch this
//! node will accept serve traffic under), `8` replica-push (store a
//! peer shard's warm replica), `9` replica-fetch (hand a stored replica
//! back). Response status: `0` ok (payload follows), otherwise a
//! [`ServiceError::code`] with a human-readable message.
//!
//! Serve frames additionally carry an optional **routing epoch**. A
//! router stamps every forwarded request with the epoch of the routing
//! table it used; a fenced node refuses epochs other than its fence
//! with [`ServiceError::Fenced`] *before* any training happens, so a
//! node that was partitioned across a promotion can never be mutated by
//! stale traffic once the partition heals. Direct clients send no epoch
//! and are never fenced out.

use crate::error::ServiceError;
use crate::ladder::Rung;
use crate::service::{Request, Response};
use cap_snapshot::{SectionReader, SectionWriter};
use std::io::{Read, Write};
use std::time::Duration;

/// Protocol revision spoken by this build. Bump on any frame-layout
/// change; decoders refuse other versions with a structured error.
/// Version 2 added the routing epoch on serve frames and the
/// fence/replica opcodes.
pub const WIRE_VERSION: u8 = 2;

/// Hard ceiling on one *request* frame's payload (1 MiB — every
/// request is a few dozen bytes; the cap exists purely to bound what a
/// hostile peer can make the server allocate).
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// Ceiling on one *response* frame as read by a client. Larger than
/// the request cap because a snapshot-pull reply carries a whole
/// warm-restart archive (hundreds of KiB per worker at the paper's
/// table sizes). Servers never read frames this large — only clients,
/// from servers they chose to connect to.
pub const MAX_REPLY_FRAME_LEN: usize = 64 << 20;

const SECTION: &str = "wire";

const OP_OBSERVE: u8 = 1;
const OP_PREDICT: u8 = 2;
const OP_STATS: u8 = 3;
const OP_SHUTDOWN: u8 = 4;
const OP_OBS: u8 = 5;
const OP_SNAPSHOT_PULL: u8 = 6;
const OP_FENCE: u8 = 7;
const OP_REPLICA_PUSH: u8 = 8;
const OP_REPLICA_FETCH: u8 = 9;

const STATUS_OK: u8 = 0;

/// One decoded client→server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireRequest {
    /// Serve a prediction request; `budget` is the deadline the server
    /// starts counting on receipt.
    Serve {
        /// The prediction request.
        request: Request,
        /// Deadline budget (`None` = no deadline).
        budget: Option<Duration>,
        /// Routing epoch stamped by a router (`None` = direct client
        /// traffic, never fenced out). A fenced server refuses other
        /// epochs with [`ServiceError::Fenced`] before training.
        epoch: Option<u64>,
    },
    /// Fetch the stats document (rendered server-side as JSON).
    Stats,
    /// Fetch the telemetry registry as an encoded
    /// [`cap_obs::StatsSnapshot`] frame.
    ObsStats,
    /// Fetch a live warm-restart snapshot of the whole service without
    /// stopping it (the cluster layer ships these to warm replicas).
    SnapshotPull,
    /// Pin the routing epoch this server accepts serve traffic under.
    /// Routers fence every node they promote or re-route around so
    /// stale traffic from before an epoch flip bounces off.
    Fence {
        /// The routing epoch to accept from now on.
        epoch: u64,
    },
    /// Store a warm replica of a peer shard on this node (the R>1
    /// replication primitive — each shard ships to its ring
    /// successors).
    ReplicaPush {
        /// Ring identity of the shard this replica belongs to.
        shard: u64,
        /// Monotonic ship generation; stores keep only the newest.
        generation: u64,
        /// The warm-restart archive, opaque at this layer.
        bytes: Vec<u8>,
    },
    /// Fetch the stored replica (if any) for a peer shard.
    ReplicaFetch {
        /// Ring identity of the shard to look up.
        shard: u64,
    },
    /// Drain under this budget, snapshot, and exit.
    Shutdown {
        /// Drain budget granted to in-flight requests.
        drain: Duration,
    },
}

/// One decoded server→client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireResponse {
    /// Successful prediction reply.
    Response(Response),
    /// Stats document (JSON text rendered by the server).
    Stats(String),
    /// Telemetry registry snapshot, encoded with
    /// [`cap_obs::StatsSnapshot::encode`]. Kept as bytes at this layer
    /// so the wire codec never partially re-interprets the inner frame.
    ObsStats(Vec<u8>),
    /// A live warm-restart archive answering
    /// [`WireRequest::SnapshotPull`]. Opaque bytes at this layer for
    /// the same reason as `ObsStats`.
    Snapshot(Vec<u8>),
    /// Acknowledges a [`WireRequest::Fence`]; the server now refuses
    /// serve traffic under any other epoch.
    FenceAck,
    /// Acknowledges a [`WireRequest::ReplicaPush`]. `stored` is false
    /// when the push lost to a newer generation already held.
    ReplicaAck {
        /// Whether the pushed replica is now the one held.
        stored: bool,
    },
    /// Answers a [`WireRequest::ReplicaFetch`]: the newest stored
    /// generation and archive, or `None` when this node holds no
    /// replica for that shard.
    Replica(Option<(u64, Vec<u8>)>),
    /// Acknowledges a shutdown request; the connection closes after.
    ShutdownAck,
    /// Structured failure: a [`ServiceError::code`] plus its message.
    Error {
        /// Stable wire code of the error.
        code: u8,
        /// Display rendering of the error.
        message: String,
    },
}

fn check_version(found: u8) -> Result<(), ServiceError> {
    if found == WIRE_VERSION {
        Ok(())
    } else {
        Err(ServiceError::Protocol(format!(
            "peer speaks wire version {found}, this build speaks {WIRE_VERSION}"
        )))
    }
}

fn budget_ms(budget: Option<Duration>) -> u32 {
    budget.map_or(0, |b| u32::try_from(b.as_millis()).unwrap_or(u32::MAX))
}

fn parse_budget(ms: u32) -> Option<Duration> {
    (ms != 0).then(|| Duration::from_millis(u64::from(ms)))
}

impl WireRequest {
    /// Encodes this request into one frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = SectionWriter::new();
        w.put_u8(WIRE_VERSION);
        match self {
            WireRequest::Serve {
                request:
                    Request::Observe {
                        ip,
                        offset,
                        ghr,
                        actual,
                    },
                budget,
                epoch,
            } => {
                w.put_u8(OP_OBSERVE);
                w.put_u32(budget_ms(*budget));
                w.put_opt_u64(*epoch);
                w.put_u64(*ip);
                w.put_i32(*offset);
                w.put_u64(*ghr);
                w.put_u64(*actual);
            }
            WireRequest::Serve {
                request: Request::Predict { ip, offset, ghr },
                budget,
                epoch,
            } => {
                w.put_u8(OP_PREDICT);
                w.put_u32(budget_ms(*budget));
                w.put_opt_u64(*epoch);
                w.put_u64(*ip);
                w.put_i32(*offset);
                w.put_u64(*ghr);
            }
            WireRequest::Stats => w.put_u8(OP_STATS),
            WireRequest::ObsStats => w.put_u8(OP_OBS),
            WireRequest::SnapshotPull => w.put_u8(OP_SNAPSHOT_PULL),
            WireRequest::Fence { epoch } => {
                w.put_u8(OP_FENCE);
                w.put_u64(*epoch);
            }
            WireRequest::ReplicaPush {
                shard,
                generation,
                bytes,
            } => {
                w.put_u8(OP_REPLICA_PUSH);
                w.put_u64(*shard);
                w.put_u64(*generation);
                w.put_len(bytes.len());
                w.put_raw(bytes);
            }
            WireRequest::ReplicaFetch { shard } => {
                w.put_u8(OP_REPLICA_FETCH);
                w.put_u64(*shard);
            }
            WireRequest::Shutdown { drain } => {
                w.put_u8(OP_SHUTDOWN);
                w.put_u32(u32::try_from(drain.as_millis()).unwrap_or(u32::MAX));
            }
        }
        w.into_bytes()
    }

    /// Decodes one frame payload.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Protocol`] on unknown opcodes, truncation, or
    /// trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, ServiceError> {
        let proto = |e: &dyn std::fmt::Display| ServiceError::Protocol(e.to_string());
        let mut r = SectionReader::new(payload, SECTION);
        check_version(r.take_u8("wire version").map_err(|e| proto(&e))?)?;
        let op = r.take_u8("opcode").map_err(|e| proto(&e))?;
        let decoded = match op {
            OP_OBSERVE => {
                let budget = parse_budget(r.take_u32("budget").map_err(|e| proto(&e))?);
                let epoch = r.take_opt_u64("epoch").map_err(|e| proto(&e))?;
                WireRequest::Serve {
                    request: Request::Observe {
                        ip: r.take_u64("ip").map_err(|e| proto(&e))?,
                        offset: r.take_i32("offset").map_err(|e| proto(&e))?,
                        ghr: r.take_u64("ghr").map_err(|e| proto(&e))?,
                        actual: r.take_u64("actual").map_err(|e| proto(&e))?,
                    },
                    budget,
                    epoch,
                }
            }
            OP_PREDICT => {
                let budget = parse_budget(r.take_u32("budget").map_err(|e| proto(&e))?);
                let epoch = r.take_opt_u64("epoch").map_err(|e| proto(&e))?;
                WireRequest::Serve {
                    request: Request::Predict {
                        ip: r.take_u64("ip").map_err(|e| proto(&e))?,
                        offset: r.take_i32("offset").map_err(|e| proto(&e))?,
                        ghr: r.take_u64("ghr").map_err(|e| proto(&e))?,
                    },
                    budget,
                    epoch,
                }
            }
            OP_STATS => WireRequest::Stats,
            OP_OBS => WireRequest::ObsStats,
            OP_SNAPSHOT_PULL => WireRequest::SnapshotPull,
            OP_FENCE => WireRequest::Fence {
                epoch: r.take_u64("fence epoch").map_err(|e| proto(&e))?,
            },
            OP_REPLICA_PUSH => {
                let shard = r.take_u64("replica shard").map_err(|e| proto(&e))?;
                let generation = r.take_u64("replica generation").map_err(|e| proto(&e))?;
                let len = r.take_len(1, "replica archive").map_err(|e| proto(&e))?;
                let bytes = r.take_raw(len, "replica archive").map_err(|e| proto(&e))?;
                WireRequest::ReplicaPush {
                    shard,
                    generation,
                    bytes: bytes.to_vec(),
                }
            }
            OP_REPLICA_FETCH => WireRequest::ReplicaFetch {
                shard: r.take_u64("replica shard").map_err(|e| proto(&e))?,
            },
            OP_SHUTDOWN => WireRequest::Shutdown {
                drain: Duration::from_millis(u64::from(
                    r.take_u32("drain").map_err(|e| proto(&e))?,
                )),
            },
            other => {
                return Err(ServiceError::Protocol(format!(
                    "unknown request opcode {other}"
                )))
            }
        };
        r.finish().map_err(|e| proto(&e))?;
        Ok(decoded)
    }
}

fn put_string(w: &mut SectionWriter, s: &str) {
    w.put_len(s.len());
    w.put_raw(s.as_bytes());
}

fn take_string(r: &mut SectionReader<'_>, what: &'static str) -> Result<String, ServiceError> {
    let proto = |e: &dyn std::fmt::Display| ServiceError::Protocol(e.to_string());
    let len = r.take_len(1, what).map_err(|e| proto(&e))?;
    let bytes = r.take_raw(len, what).map_err(|e| proto(&e))?;
    String::from_utf8(bytes.to_vec())
        .map_err(|_| ServiceError::Protocol(format!("{what}: invalid UTF-8")))
}

fn rung_from_u8(v: u8) -> Result<Rung, ServiceError> {
    Rung::ALL
        .into_iter()
        .find(|r| r.index() == usize::from(v))
        .ok_or_else(|| ServiceError::Protocol(format!("bad rung byte {v}")))
}

impl WireResponse {
    /// Encodes this response into one frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = SectionWriter::new();
        w.put_u8(WIRE_VERSION);
        match self {
            WireResponse::Response(Response::Observed {
                addr,
                speculate,
                correct,
                rung,
            }) => {
                w.put_u8(STATUS_OK);
                w.put_u8(OP_OBSERVE);
                w.put_opt_u64(*addr);
                w.put_bool(*speculate);
                w.put_bool(*correct);
                w.put_u8(rung.index() as u8);
            }
            WireResponse::Response(Response::Predicted {
                addr,
                speculate,
                rung,
            }) => {
                w.put_u8(STATUS_OK);
                w.put_u8(OP_PREDICT);
                w.put_opt_u64(*addr);
                w.put_bool(*speculate);
                w.put_u8(rung.index() as u8);
            }
            WireResponse::Stats(json) => {
                w.put_u8(STATUS_OK);
                w.put_u8(OP_STATS);
                put_string(&mut w, json);
            }
            WireResponse::ObsStats(bytes) => {
                w.put_u8(STATUS_OK);
                w.put_u8(OP_OBS);
                w.put_len(bytes.len());
                w.put_raw(bytes);
            }
            WireResponse::Snapshot(bytes) => {
                w.put_u8(STATUS_OK);
                w.put_u8(OP_SNAPSHOT_PULL);
                w.put_len(bytes.len());
                w.put_raw(bytes);
            }
            WireResponse::FenceAck => {
                w.put_u8(STATUS_OK);
                w.put_u8(OP_FENCE);
            }
            WireResponse::ReplicaAck { stored } => {
                w.put_u8(STATUS_OK);
                w.put_u8(OP_REPLICA_PUSH);
                w.put_bool(*stored);
            }
            WireResponse::Replica(held) => {
                w.put_u8(STATUS_OK);
                w.put_u8(OP_REPLICA_FETCH);
                match held {
                    Some((generation, bytes)) => {
                        w.put_bool(true);
                        w.put_u64(*generation);
                        w.put_len(bytes.len());
                        w.put_raw(bytes);
                    }
                    None => w.put_bool(false),
                }
            }
            WireResponse::ShutdownAck => {
                w.put_u8(STATUS_OK);
                w.put_u8(OP_SHUTDOWN);
            }
            WireResponse::Error { code, message } => {
                w.put_u8(*code);
                put_string(&mut w, message);
            }
        }
        w.into_bytes()
    }

    /// Decodes one frame payload.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Protocol`] on malformed payloads.
    pub fn decode(payload: &[u8]) -> Result<Self, ServiceError> {
        let proto = |e: &dyn std::fmt::Display| ServiceError::Protocol(e.to_string());
        let mut r = SectionReader::new(payload, SECTION);
        check_version(r.take_u8("wire version").map_err(|e| proto(&e))?)?;
        let status = r.take_u8("status").map_err(|e| proto(&e))?;
        let decoded = if status == STATUS_OK {
            match r.take_u8("ok kind").map_err(|e| proto(&e))? {
                OP_OBSERVE => WireResponse::Response(Response::Observed {
                    addr: r.take_opt_u64("addr").map_err(|e| proto(&e))?,
                    speculate: r.take_bool("speculate").map_err(|e| proto(&e))?,
                    correct: r.take_bool("correct").map_err(|e| proto(&e))?,
                    rung: rung_from_u8(r.take_u8("rung").map_err(|e| proto(&e))?)?,
                }),
                OP_PREDICT => WireResponse::Response(Response::Predicted {
                    addr: r.take_opt_u64("addr").map_err(|e| proto(&e))?,
                    speculate: r.take_bool("speculate").map_err(|e| proto(&e))?,
                    rung: rung_from_u8(r.take_u8("rung").map_err(|e| proto(&e))?)?,
                }),
                OP_STATS => WireResponse::Stats(take_string(&mut r, "stats json")?),
                OP_OBS => {
                    let len = r.take_len(1, "obs frame").map_err(|e| proto(&e))?;
                    let bytes = r.take_raw(len, "obs frame").map_err(|e| proto(&e))?;
                    WireResponse::ObsStats(bytes.to_vec())
                }
                OP_SNAPSHOT_PULL => {
                    let len = r.take_len(1, "snapshot archive").map_err(|e| proto(&e))?;
                    let bytes = r.take_raw(len, "snapshot archive").map_err(|e| proto(&e))?;
                    WireResponse::Snapshot(bytes.to_vec())
                }
                OP_FENCE => WireResponse::FenceAck,
                OP_REPLICA_PUSH => WireResponse::ReplicaAck {
                    stored: r.take_bool("replica stored").map_err(|e| proto(&e))?,
                },
                OP_REPLICA_FETCH => {
                    if r.take_bool("replica present").map_err(|e| proto(&e))? {
                        let generation = r.take_u64("replica generation").map_err(|e| proto(&e))?;
                        let len = r.take_len(1, "replica archive").map_err(|e| proto(&e))?;
                        let bytes = r.take_raw(len, "replica archive").map_err(|e| proto(&e))?;
                        WireResponse::Replica(Some((generation, bytes.to_vec())))
                    } else {
                        WireResponse::Replica(None)
                    }
                }
                OP_SHUTDOWN => WireResponse::ShutdownAck,
                other => {
                    return Err(ServiceError::Protocol(format!(
                        "unknown ok-response kind {other}"
                    )))
                }
            }
        } else {
            WireResponse::Error {
                code: status,
                message: take_string(&mut r, "error message")?,
            }
        };
        r.finish().map_err(|e| proto(&e))?;
        Ok(decoded)
    }

    /// The structured-error rendering of a [`ServiceError`].
    #[must_use]
    pub fn from_error(err: &ServiceError) -> Self {
        WireResponse::Error {
            code: err.code(),
            message: err.to_string(),
        }
    }
}

/// Writes one frame (length prefix + payload) to `w`.
///
/// # Errors
///
/// Propagates I/O errors; refuses payloads over [`MAX_FRAME_LEN`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    write_frame_with_cap(w, payload, MAX_FRAME_LEN)
}

/// [`write_frame`] with an explicit payload cap. Servers answering a
/// snapshot-pull use [`MAX_REPLY_FRAME_LEN`] here; everything else
/// stays under the request cap.
///
/// # Errors
///
/// Propagates I/O errors; refuses payloads over `cap`.
pub fn write_frame_with_cap(w: &mut impl Write, payload: &[u8], cap: usize) -> std::io::Result<()> {
    if payload.len() > cap {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame payload {} exceeds cap {cap}", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame from `r`. Returns `Ok(None)` on a clean EOF at a
/// frame boundary (the peer hung up between messages).
///
/// # Errors
///
/// Propagates I/O errors; refuses announced lengths over
/// [`MAX_FRAME_LEN`] before allocating.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    read_frame_with_cap(r, MAX_FRAME_LEN)
}

/// [`read_frame`] with an explicit cap on the announced length.
/// Clients reading replies (which may carry a whole snapshot archive)
/// pass [`MAX_REPLY_FRAME_LEN`]; servers reading requests keep the
/// tight [`MAX_FRAME_LEN`] bound against hostile peers.
///
/// # Errors
///
/// Propagates I/O errors; refuses announced lengths over `cap` before
/// allocating.
pub fn read_frame_with_cap(r: &mut impl Read, cap: usize) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        let n = r.read(&mut len_bytes[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None); // clean EOF between frames
            }
            return Err(std::io::ErrorKind::UnexpectedEof.into());
        }
        filled += n;
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > cap {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("peer announced frame of {len} bytes, cap {cap}"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// A resumable frame reader for sockets with a read timeout.
///
/// [`read_frame`] loses any partial progress when the underlying read
/// times out mid-frame, which desyncs the stream against a slow (or
/// deliberately slow-loris) peer. `FrameReader` keeps the partially
/// filled length prefix and payload across `WouldBlock`/`TimedOut`
/// errors, so a server polling its shutdown flag on a 50ms timeout can
/// resume a frame that trickles in over many poll intervals.
#[derive(Debug)]
pub struct FrameReader {
    cap: usize,
    len_bytes: [u8; 4],
    len_filled: usize,
    payload: Vec<u8>,
    payload_filled: usize,
}

impl FrameReader {
    /// A reader refusing announced lengths over `cap`.
    #[must_use]
    pub fn new(cap: usize) -> Self {
        Self {
            cap,
            len_bytes: [0; 4],
            len_filled: 0,
            payload: Vec::new(),
            payload_filled: 0,
        }
    }

    /// True when no bytes of the next frame have arrived yet (a clean
    /// EOF here is a peer hanging up between messages, not a torn
    /// frame).
    #[must_use]
    pub fn at_boundary(&self) -> bool {
        self.len_filled == 0
    }

    /// Reads as much of the next frame as `r` will give. Returns
    /// `Ok(Some(payload))` when a frame completes, `Ok(None)` on a
    /// clean EOF at a frame boundary.
    ///
    /// # Errors
    ///
    /// `WouldBlock`/`TimedOut` errors are safe to retry — partial
    /// progress is kept. Any other error (including `UnexpectedEof`
    /// mid-frame and an announced length over the cap) is fatal to the
    /// stream.
    pub fn read_from(&mut self, r: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
        while self.len_filled < 4 {
            let n = r.read(&mut self.len_bytes[self.len_filled..])?;
            if n == 0 {
                if self.len_filled == 0 {
                    return Ok(None); // clean EOF between frames
                }
                return Err(std::io::ErrorKind::UnexpectedEof.into());
            }
            self.len_filled += n;
            if self.len_filled == 4 {
                let len = u32::from_le_bytes(self.len_bytes) as usize;
                if len > self.cap {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("peer announced frame of {len} bytes, cap {}", self.cap),
                    ));
                }
                self.payload = vec![0u8; len];
                self.payload_filled = 0;
            }
        }
        while self.payload_filled < self.payload.len() {
            let n = r.read(&mut self.payload[self.payload_filled..])?;
            if n == 0 {
                return Err(std::io::ErrorKind::UnexpectedEof.into());
            }
            self.payload_filled += n;
        }
        self.len_filled = 0;
        Ok(Some(std::mem::take(&mut self.payload)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: &WireRequest) {
        let bytes = req.encode();
        assert_eq!(&WireRequest::decode(&bytes).unwrap(), req);
    }

    fn roundtrip_response(resp: &WireResponse) {
        let bytes = resp.encode();
        assert_eq!(&WireResponse::decode(&bytes).unwrap(), resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(&WireRequest::Serve {
            request: Request::Observe {
                ip: 0x400,
                offset: -16,
                ghr: 0b1011,
                actual: 0xDEAD_BEEF,
            },
            budget: Some(Duration::from_millis(250)),
            epoch: Some(3),
        });
        roundtrip_request(&WireRequest::Serve {
            request: Request::Predict {
                ip: u64::MAX,
                offset: i32::MIN,
                ghr: 0,
            },
            budget: None,
            epoch: None,
        });
        roundtrip_request(&WireRequest::Stats);
        roundtrip_request(&WireRequest::ObsStats);
        roundtrip_request(&WireRequest::SnapshotPull);
        roundtrip_request(&WireRequest::Fence { epoch: u64::MAX });
        roundtrip_request(&WireRequest::ReplicaPush {
            shard: 2,
            generation: 17,
            bytes: vec![0xCA, 0x9A, 0x00],
        });
        roundtrip_request(&WireRequest::ReplicaFetch { shard: 0 });
        roundtrip_request(&WireRequest::Shutdown {
            drain: Duration::from_millis(500),
        });
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_response(&WireResponse::Response(Response::Observed {
            addr: Some(0x1000),
            speculate: true,
            correct: false,
            rung: Rung::Hybrid,
        }));
        roundtrip_response(&WireResponse::Response(Response::Predicted {
            addr: None,
            speculate: false,
            rung: Rung::Bypass,
        }));
        roundtrip_response(&WireResponse::Stats("{\"accepted\":3}".to_owned()));
        roundtrip_response(&WireResponse::ObsStats(
            cap_obs::StatsSnapshot::default().encode(),
        ));
        roundtrip_response(&WireResponse::Snapshot(vec![0xCA, 0x9A, 0x00, 0x01]));
        roundtrip_response(&WireResponse::FenceAck);
        roundtrip_response(&WireResponse::ReplicaAck { stored: true });
        roundtrip_response(&WireResponse::ReplicaAck { stored: false });
        roundtrip_response(&WireResponse::Replica(Some((9, vec![1, 2, 3]))));
        roundtrip_response(&WireResponse::Replica(None));
        roundtrip_response(&WireResponse::ShutdownAck);
        roundtrip_response(&WireResponse::from_error(&ServiceError::Shed {
            capacity: 64,
        }));
    }

    #[test]
    fn zero_budget_means_no_deadline_on_the_wire() {
        // ms = 0 is the wire encoding of "no budget", so a Some(0)
        // budget decodes as None — documented flattening, not drift.
        let req = WireRequest::Serve {
            request: Request::Predict {
                ip: 1,
                offset: 0,
                ghr: 0,
            },
            budget: Some(Duration::ZERO),
            epoch: None,
        };
        match WireRequest::decode(&req.encode()).unwrap() {
            WireRequest::Serve { budget, .. } => assert_eq!(budget, None),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn garbage_and_truncation_are_protocol_errors() {
        assert!(matches!(
            WireRequest::decode(&[99]),
            Err(ServiceError::Protocol(_))
        ));
        let good = WireRequest::Serve {
            request: Request::Predict {
                ip: 5,
                offset: 0,
                ghr: 0,
            },
            budget: None,
            epoch: None,
        }
        .encode();
        assert!(matches!(
            WireRequest::decode(&good[..good.len() - 1]),
            Err(ServiceError::Protocol(_))
        ));
        let mut trailing = good;
        trailing.push(0);
        assert!(matches!(
            WireRequest::decode(&trailing),
            Err(ServiceError::Protocol(_))
        ));
        assert!(matches!(
            WireResponse::decode(&[]),
            Err(ServiceError::Protocol(_))
        ));
    }

    #[test]
    fn wrong_wire_version_is_refused_by_name() {
        let mut req = WireRequest::SnapshotPull.encode();
        assert_eq!(req[0], WIRE_VERSION);
        req[0] = WIRE_VERSION + 1;
        match WireRequest::decode(&req) {
            Err(ServiceError::Protocol(msg)) => {
                assert!(msg.contains("wire version"), "got: {msg}");
            }
            other => panic!("unexpected {other:?}"),
        }
        let mut resp = WireResponse::ShutdownAck.encode();
        resp[0] = 0;
        assert!(matches!(
            WireResponse::decode(&resp),
            Err(ServiceError::Protocol(_))
        ));
    }

    #[test]
    fn truncated_snapshot_reply_is_a_protocol_error() {
        // A snapshot ship torn mid-archive must decode to a structured
        // error, never a panic or a short read silently accepted.
        let good = WireResponse::Snapshot(vec![7u8; 64]).encode();
        for cut in [good.len() - 1, good.len() - 32, 3] {
            assert!(matches!(
                WireResponse::decode(&good[..cut]),
                Err(ServiceError::Protocol(_))
            ));
        }
    }

    #[test]
    fn reply_cap_admits_large_snapshots_but_not_monsters() {
        let mut buf = Vec::new();
        let big = vec![0u8; MAX_FRAME_LEN + 1];
        // Over the request cap: refused by the default writer...
        assert!(write_frame(&mut buf, &big).is_err());
        // ...but fine under the reply cap, and readable back.
        write_frame_with_cap(&mut buf, &big, MAX_REPLY_FRAME_LEN).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(
            read_frame_with_cap(&mut cursor, MAX_REPLY_FRAME_LEN)
                .unwrap()
                .unwrap()
                .len(),
            big.len()
        );
        // An announced length over even the reply cap is still refused
        // before any allocation happens.
        let mut evil =
            std::io::Cursor::new(((MAX_REPLY_FRAME_LEN + 1) as u32).to_le_bytes().to_vec());
        assert_eq!(
            read_frame_with_cap(&mut evil, MAX_REPLY_FRAME_LEN)
                .unwrap_err()
                .kind(),
            std::io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn frames_roundtrip_and_enforce_the_cap() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");

        // An announced length over the cap is refused without allocating.
        let mut evil = std::io::Cursor::new(((MAX_FRAME_LEN + 1) as u32).to_le_bytes().to_vec());
        assert_eq!(
            read_frame(&mut evil).unwrap_err().kind(),
            std::io::ErrorKind::InvalidData
        );

        // A torn length prefix is an UnexpectedEof, not a hang or panic.
        let mut torn = std::io::Cursor::new(vec![1u8, 0]);
        assert_eq!(
            read_frame(&mut torn).unwrap_err().kind(),
            std::io::ErrorKind::UnexpectedEof
        );
    }

    /// A reader that yields `chunk` bytes then a WouldBlock, repeating —
    /// models a socket read timeout splitting a frame.
    struct Trickle {
        data: Vec<u8>,
        pos: usize,
        chunk: usize,
        ready: bool,
    }

    impl Read for Trickle {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if !self.ready {
                self.ready = true;
                return Err(std::io::ErrorKind::WouldBlock.into());
            }
            self.ready = false;
            let n = self.chunk.min(buf.len()).min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn frame_reader_survives_timeouts_mid_frame() {
        // A frame trickling in one byte per read timeout must still
        // assemble — `read_frame` would desync here, losing its
        // partial progress on the WouldBlock.
        let mut wire = Vec::new();
        write_frame(&mut wire, b"slow-loris").unwrap();
        write_frame(&mut wire, b"second").unwrap();
        let mut src = Trickle {
            data: wire,
            pos: 0,
            chunk: 1,
            ready: false,
        };
        let mut reader = FrameReader::new(MAX_FRAME_LEN);
        let mut frames = Vec::new();
        while frames.len() < 2 {
            match reader.read_from(&mut src) {
                Ok(Some(p)) => frames.push(p),
                Ok(None) => panic!("unexpected EOF"),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert_eq!(frames, vec![b"slow-loris".to_vec(), b"second".to_vec()]);
        assert!(reader.at_boundary());
    }

    #[test]
    fn frame_reader_flags_torn_frames_and_oversize() {
        // EOF mid-payload is torn, not clean.
        let mut wire = Vec::new();
        write_frame(&mut wire, b"abcdef").unwrap();
        wire.truncate(wire.len() - 2);
        let mut reader = FrameReader::new(MAX_FRAME_LEN);
        let mut cursor = std::io::Cursor::new(wire);
        assert_eq!(
            reader.read_from(&mut cursor).unwrap_err().kind(),
            std::io::ErrorKind::UnexpectedEof
        );
        // An announced length over the cap is refused before allocating.
        let mut reader = FrameReader::new(16);
        let mut evil = std::io::Cursor::new(1024u32.to_le_bytes().to_vec());
        assert_eq!(
            reader.read_from(&mut evil).unwrap_err().kind(),
            std::io::ErrorKind::InvalidData
        );
        // Clean EOF at a boundary is still Ok(None).
        let mut reader = FrameReader::new(16);
        let mut empty = std::io::Cursor::new(Vec::new());
        assert!(reader.read_from(&mut empty).unwrap().is_none());
        assert!(reader.at_boundary());
    }
}
