//! Per-component circuit breakers.
//!
//! A [`CircuitBreaker`] wraps one backend component (hybrid, CAP, or
//! stride) and keeps a three-state machine:
//!
//! ```text
//!            failures >= threshold
//!   Closed ──────────────────────────► Open
//!     ▲                                  │ cooldown + seeded jitter
//!     │ successes >= close_after         ▼
//!     └───────────────────────────── HalfOpen
//!                 (any failure in HalfOpen reopens immediately)
//! ```
//!
//! All transitions are driven by an explicit `now: Instant` so unit
//! tests are fully deterministic, and the probe jitter is drawn from a
//! seeded [`cap_rand`] stream so two breakers with the same seed
//! schedule identical probes — the same replayability discipline every
//! other random stream in this workspace follows.

use crate::names;
use cap_obs::Obs;
use cap_rand::{rngs::StdRng, Rng, SeedableRng};
use std::time::{Duration, Instant};

/// The observable state of a breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: calls flow through, consecutive failures are counted.
    Closed,
    /// Tripped: calls are refused until the jittered cooldown elapses.
    Open,
    /// Probing: a limited number of calls are let through; successes
    /// close the breaker, any failure reopens it.
    HalfOpen,
}

impl BreakerState {
    /// Short lowercase name for stats and logs.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// Tuning knobs for one breaker.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive failures in `Closed` that trip the breaker.
    pub failure_threshold: u32,
    /// Consecutive half-open successes that close the breaker — the
    /// "sustained health" requirement before the ladder may step back
    /// up through this component.
    pub close_after: u32,
    /// Base cooldown between tripping and the first probe.
    pub cooldown: Duration,
    /// Upper bound of the uniform jitter added to every cooldown, so
    /// many breakers tripped by one incident do not probe in lockstep.
    pub jitter: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            failure_threshold: 5,
            close_after: 3,
            cooldown: Duration::from_millis(100),
            jitter: Duration::from_millis(50),
        }
    }
}

/// A closed/open/half-open circuit breaker with seeded probe jitter.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    half_open_successes: u32,
    /// When in `Open`, the instant the next probe is permitted.
    probe_at: Option<Instant>,
    rng: StdRng,
    /// Lifetime count of Closed→Open transitions.
    trips: u64,
    obs: Obs,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning and jitter seed.
    #[must_use]
    pub fn new(config: BreakerConfig, seed: u64) -> Self {
        Self {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            half_open_successes: 0,
            probe_at: None,
            rng: StdRng::seed_from_u64(seed),
            trips: 0,
            obs: Obs::off(),
        }
    }

    /// Attaches a telemetry sink for the `service.breaker.*` transition
    /// counters. Not part of any snapshot — re-attach after a restore.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Current state, after accounting for an elapsed cooldown (an
    /// `Open` breaker whose probe time has arrived reports `HalfOpen`).
    pub fn state(&mut self, now: Instant) -> BreakerState {
        if self.state == BreakerState::Open {
            if let Some(at) = self.probe_at {
                if now >= at {
                    self.state = BreakerState::HalfOpen;
                    self.half_open_successes = 0;
                    self.probe_at = None;
                    self.obs.incr(names::BREAKER_HALF_OPEN);
                }
            }
        }
        self.state
    }

    /// Whether a call may be attempted right now. `Closed` and
    /// `HalfOpen` permit calls; `Open` refuses them until the jittered
    /// cooldown elapses.
    pub fn call_permitted(&mut self, now: Instant) -> bool {
        self.state(now) != BreakerState::Open
    }

    /// Records a successful call.
    pub fn on_success(&mut self, now: Instant) {
        match self.state(now) {
            BreakerState::Closed => self.consecutive_failures = 0,
            BreakerState::HalfOpen => {
                self.half_open_successes += 1;
                if self.half_open_successes >= self.config.close_after.max(1) {
                    self.state = BreakerState::Closed;
                    self.consecutive_failures = 0;
                    self.half_open_successes = 0;
                    self.obs.incr(names::BREAKER_CLOSE);
                }
            }
            BreakerState::Open => {}
        }
    }

    /// Records a failed call; may trip (or re-trip) the breaker.
    pub fn on_failure(&mut self, now: Instant) {
        match self.state(now) {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.config.failure_threshold.max(1) {
                    self.trip(now);
                }
            }
            // One bad probe is enough: reopen immediately.
            BreakerState::HalfOpen => self.trip(now),
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self, now: Instant) {
        self.state = BreakerState::Open;
        self.trips += 1;
        self.obs.incr(names::BREAKER_OPEN);
        self.consecutive_failures = 0;
        self.half_open_successes = 0;
        let jitter_ns = if self.config.jitter.is_zero() {
            0
        } else {
            self.rng.gen_range(0..self.config.jitter.as_nanos() as u64)
        };
        self.probe_at = Some(now + self.config.cooldown + Duration::from_nanos(jitter_ns));
    }

    /// Lifetime number of times this breaker tripped open.
    #[must_use]
    pub fn trips(&self) -> u64 {
        self.trips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            close_after: 2,
            cooldown: Duration::from_millis(100),
            jitter: Duration::from_millis(50),
        }
    }

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let mut b = CircuitBreaker::new(config(), 1);
        let t0 = Instant::now();
        b.on_failure(t0);
        b.on_failure(t0);
        assert_eq!(b.state(t0), BreakerState::Closed);
        b.on_failure(t0);
        assert_eq!(b.state(t0), BreakerState::Open);
        assert!(!b.call_permitted(t0));
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut b = CircuitBreaker::new(config(), 1);
        let t0 = Instant::now();
        b.on_failure(t0);
        b.on_failure(t0);
        b.on_success(t0);
        b.on_failure(t0);
        b.on_failure(t0);
        assert_eq!(b.state(t0), BreakerState::Closed, "streak was broken");
    }

    #[test]
    fn cooldown_plus_jitter_gates_the_probe() {
        let mut b = CircuitBreaker::new(config(), 7);
        let t0 = Instant::now();
        for _ in 0..3 {
            b.on_failure(t0);
        }
        // Before the base cooldown: definitely still open.
        assert!(!b.call_permitted(t0 + Duration::from_millis(99)));
        // After cooldown + max jitter: definitely probing.
        assert!(b.call_permitted(t0 + Duration::from_millis(151)));
        assert_eq!(
            b.state(t0 + Duration::from_millis(151)),
            BreakerState::HalfOpen
        );
    }

    #[test]
    fn half_open_closes_after_sustained_success() {
        let mut b = CircuitBreaker::new(config(), 7);
        let t0 = Instant::now();
        for _ in 0..3 {
            b.on_failure(t0);
        }
        let probe = t0 + Duration::from_millis(151);
        assert_eq!(b.state(probe), BreakerState::HalfOpen);
        b.on_success(probe);
        assert_eq!(b.state(probe), BreakerState::HalfOpen, "needs close_after");
        b.on_success(probe);
        assert_eq!(b.state(probe), BreakerState::Closed);
    }

    #[test]
    fn half_open_failure_reopens_immediately() {
        let mut b = CircuitBreaker::new(config(), 7);
        let t0 = Instant::now();
        for _ in 0..3 {
            b.on_failure(t0);
        }
        let probe = t0 + Duration::from_millis(151);
        assert_eq!(b.state(probe), BreakerState::HalfOpen);
        b.on_failure(probe);
        assert_eq!(b.state(probe), BreakerState::Open);
        assert_eq!(b.trips(), 2);
        // And the new cooldown starts from the re-trip.
        assert!(!b.call_permitted(probe + Duration::from_millis(99)));
    }

    #[test]
    fn transition_counters_follow_the_state_machine() {
        let registry = std::sync::Arc::new(cap_obs::Registry::new());
        let mut b = CircuitBreaker::new(config(), 7);
        b.set_obs(registry.obs());
        let t0 = Instant::now();
        for _ in 0..3 {
            b.on_failure(t0);
        }
        let probe = t0 + Duration::from_millis(151);
        assert_eq!(b.state(probe), BreakerState::HalfOpen);
        b.on_success(probe);
        b.on_success(probe);
        assert_eq!(b.state(probe), BreakerState::Closed);
        let snap = registry.snapshot();
        assert_eq!(snap.counter(names::BREAKER_OPEN), Some(1));
        assert_eq!(snap.counter(names::BREAKER_HALF_OPEN), Some(1));
        assert_eq!(snap.counter(names::BREAKER_CLOSE), Some(1));
    }

    #[test]
    fn same_seed_schedules_identical_probes() {
        let t0 = Instant::now();
        let schedule = |seed: u64| {
            let mut b = CircuitBreaker::new(config(), seed);
            for _ in 0..3 {
                b.on_failure(t0);
            }
            b.probe_at.expect("tripped breakers schedule a probe")
        };
        assert_eq!(schedule(42), schedule(42));
        // Different seeds draw different jitter with overwhelming
        // probability over a 50 ms range at nanosecond granularity.
        assert_ne!(schedule(1), schedule(2));
    }
}
