//! Storage-fault chaos: the crash-point matrix.
//!
//! One full checkpoint + journal + rotation cycle is run on the
//! in-memory [`ChaosVfs`] to count its VFS operations; then, for *every*
//! operation index `k`, a fresh disk is crashed immediately after op `k`,
//! rebooted, and resumed. Recovery must always land on a complete
//! checkpoint (or a clean cold start) and the resumed run must be
//! bit-identical to an uninterrupted control — including when every
//! fsync on the disk lies.
//!
//! Alongside the matrix: the delta journal's loss bound (a kill between
//! checkpoints resumes through journal replay, not a full re-run of the
//! gap) and torn-tail tolerance (a truncated or bit-flipped journal tail
//! is dropped, never trusted, and never fatal).

use cap_faults::fs::{ChaosVfs, FsFaultConfig, RealVfs};
use cap_harness::checkpoint::list_journals_with;
use cap_harness::supervisor::{run, PredictorKind, Resume, RetryPolicy, SupervisorConfig};
use cap_predictor::metrics::PredictorStats;
use cap_trace::io::write_trace;
use cap_trace::suites::catalog;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cap-storage-chaos-{tag}-{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn write_temp_trace(dir: &Path, loads: usize) -> PathBuf {
    let trace = catalog()[1].generate(loads);
    let mut bytes = Vec::new();
    write_trace(&mut bytes, &trace).expect("serialize");
    let path = dir.join("trace.txt");
    fs::write(&path, bytes).expect("write trace");
    path
}

fn assert_stats_eq(a: &PredictorStats, b: &PredictorStats) {
    assert_eq!(a.loads, b.loads);
    assert_eq!(a.predictions, b.predictions);
    assert_eq!(a.correct_predictions, b.correct_predictions);
    assert_eq!(a.spec_accesses, b.spec_accesses);
    assert_eq!(a.correct_spec, b.correct_spec);
    assert_eq!(a.both_predicted_spec, b.both_predicted_spec);
    assert_eq!(a.selector_states, b.selector_states);
    assert_eq!(a.miss_selections, b.miss_selections);
}

/// One attempt, no backoff: a crashed disk should fail fast, not burn
/// wall-clock retrying a machine that is down.
fn no_retry() -> RetryPolicy {
    RetryPolicy {
        attempts: 1,
        base_delay: Duration::ZERO,
        max_elapsed: None,
    }
}

/// The shared shape of every chaos run: checkpoints, a delta journal,
/// rotation pressure (keep = 2), and predictor chaos so the checkpointed
/// RNG stream is load-bearing. The checkpoint directory is a virtual
/// path — it exists only inside the [`ChaosVfs`].
fn chaos_config(trace: &Path, vfs: &ChaosVfs) -> SupervisorConfig {
    let mut cfg = SupervisorConfig::new(trace, PredictorKind::Hybrid);
    cfg.checkpoint_dir = Some(PathBuf::from("/vchaos/ckpts"));
    cfg.checkpoint_every = 300;
    cfg.journal_flush_every = 60;
    cfg.keep = 2;
    cfg.chaos_every = 97;
    cfg.seed = 0xD1CE;
    cfg.retry = no_retry();
    cfg.vfs = Arc::new(vfs.clone());
    cfg
}

/// The matrix itself: crash after every single VFS operation of a full
/// cycle, reboot, resume, and demand bit-identity with the control run.
fn crash_point_matrix(tag: &str, faults: FsFaultConfig) {
    let dir = temp_dir(tag);
    let trace = write_temp_trace(&dir, 500);

    // Control: one uninterrupted run with the same predictor chaos but
    // no storage at all. Storage must never influence the simulation.
    let mut control_cfg = SupervisorConfig::new(&trace, PredictorKind::Hybrid);
    control_cfg.chaos_every = 97;
    control_cfg.seed = 0xD1CE;
    let control = run(&control_cfg).expect("control run");
    assert!(control.stats.loads > 0);

    // Count the cycle's operations on an uncrashed disk; this is the
    // index space of the matrix.
    let counter = ChaosVfs::new(7, faults);
    let counted = run(&chaos_config(&trace, &counter)).expect("uncrashed chaos run completes");
    assert!(counted.checkpoints_written >= 2, "cycle must publish and rotate");
    assert!(counted.journal_appended > 0, "cycle must journal");
    assert_stats_eq(&counted.stats, &control.stats);
    let total = counter.op_count();
    assert!(total > 20, "cycle must exercise a realistic op count, got {total}");

    for k in 1..=total {
        let vfs = ChaosVfs::new(7, faults);
        vfs.set_crash_after(k);
        // The run dies once it touches storage after op k (or finishes,
        // when k lands in the final flush); either way the disk now
        // holds only what was durable at the crash.
        let _ = run(&chaos_config(&trace, &vfs));
        vfs.reboot();

        let mut resume_cfg = chaos_config(&trace, &vfs);
        resume_cfg.resume = Resume::Auto;
        let resumed = run(&resume_cfg).unwrap_or_else(|e| {
            panic!("crash after op {k}/{total}: recovery failed: {e}");
        });
        assert_eq!(
            resumed.events, control.events,
            "crash after op {k}/{total}: resumed run stopped early"
        );
        assert_stats_eq(&resumed.stats, &control.stats);
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_point_matrix_with_faults_off() {
    crash_point_matrix("off", FsFaultConfig::off());
}

#[test]
fn crash_point_matrix_under_half_lying_fsync() {
    crash_point_matrix(
        "half-lie",
        FsFaultConfig {
            p_fsync_lie: 0.5,
            ..FsFaultConfig::off()
        },
    );
}

#[test]
fn crash_point_matrix_under_always_lying_fsync() {
    crash_point_matrix("all-lie", FsFaultConfig::always_lying_fsync());
}

/// The journal's reason to exist: a kill between checkpoints resumes
/// through replay (journal_replayed > 0) and the result is bit-identical
/// to a run that was never interrupted.
#[test]
fn journal_replay_resumes_bit_identical_to_uninterrupted_twin() {
    let dir = temp_dir("twin");
    let trace = write_temp_trace(&dir, 4_000);

    let reference = run(&SupervisorConfig::new(&trace, PredictorKind::Hybrid)).expect("reference");
    assert!(reference.events > 3_000, "trace must outlive the kill point");

    let ckpt_dir = dir.join("ckpts");
    let mut cfg = SupervisorConfig::new(&trace, PredictorKind::Hybrid);
    cfg.checkpoint_dir = Some(ckpt_dir.clone());
    cfg.checkpoint_every = 512;
    cfg.journal_flush_every = 64;
    cfg.kill_after = Some(3_000);
    let killed = run(&cfg).expect("killed run");
    assert!(killed.killed);
    assert!(killed.journal_appended > 0, "the gap past the checkpoint must be journaled");

    let mut cfg2 = SupervisorConfig::new(&trace, PredictorKind::Hybrid);
    cfg2.checkpoint_dir = Some(ckpt_dir);
    cfg2.checkpoint_every = 512;
    cfg2.journal_flush_every = 64;
    cfg2.resume = Resume::Auto;
    let resumed = run(&cfg2).expect("resume");
    assert!(
        resumed.journal_replayed > 0,
        "resume must advance through journal replay, not checkpoint alone"
    );
    assert_eq!(resumed.events, reference.events);
    assert_stats_eq(&resumed.stats, &reference.stats);
    fs::remove_dir_all(&dir).ok();
}

/// Damages the live journal's tail with `mutate` after a kill, then
/// proves resume drops the damage (never trusts it, never dies on it)
/// and still lands bit-identical to the uninterrupted reference.
fn torn_tail_case(tag: &str, mutate: impl FnOnce(&mut Vec<u8>)) {
    let dir = temp_dir(tag);
    let trace = write_temp_trace(&dir, 4_000);
    let reference = run(&SupervisorConfig::new(&trace, PredictorKind::Hybrid)).expect("reference");

    let ckpt_dir = dir.join("ckpts");
    let mut cfg = SupervisorConfig::new(&trace, PredictorKind::Hybrid);
    cfg.checkpoint_dir = Some(ckpt_dir.clone());
    cfg.checkpoint_every = 512;
    cfg.journal_flush_every = 64;
    cfg.kill_after = Some(3_000);
    assert!(run(&cfg).expect("killed run").killed);

    let journals = list_journals_with(&RealVfs, &ckpt_dir).expect("list journals");
    let (_, live) = journals.last().expect("a live journal exists").clone();
    let mut bytes = fs::read(&live).expect("read journal");
    let before = bytes.len();
    mutate(&mut bytes);
    fs::write(&live, &bytes).expect("write damaged journal");

    let mut cfg2 = SupervisorConfig::new(&trace, PredictorKind::Hybrid);
    cfg2.checkpoint_dir = Some(ckpt_dir);
    cfg2.checkpoint_every = 512;
    cfg2.journal_flush_every = 64;
    cfg2.resume = Resume::Auto;
    let resumed = run(&cfg2).expect("a damaged journal tail must not be fatal");
    assert_eq!(resumed.events, reference.events);
    assert_stats_eq(&resumed.stats, &reference.stats);

    // Replay rewrote the journal down to its clean prefix before the
    // resumed run restarted it; either way nothing larger than the
    // damaged file should have been trusted.
    assert!(before > 0);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_journal_tail_is_dropped_not_fatal() {
    // A crash mid-append: the last frame is cut short.
    torn_tail_case("torn-cut", |bytes| {
        let cut = bytes.len().saturating_sub(5);
        bytes.truncate(cut);
    });
}

#[test]
fn bit_flipped_journal_record_is_dropped_not_fatal() {
    // Bitrot in the middle of the record stream: CRC catches it and the
    // valid prefix before the flip is all that replays.
    torn_tail_case("torn-flip", |bytes| {
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
    });
}
