//! Checkpoint-directory robustness: rotation keeps exactly the newest K,
//! and recovery survives every kind of debris a crash can leave behind —
//! leftover `.tmp` files, zero-length checkpoints, torn writes — picking
//! the newest *valid* checkpoint and sweeping the wreckage up.

use cap_faults::fs::{ChaosVfs, FsFaultConfig, Vfs};
use cap_harness::checkpoint::{
    checkpoint_file_name, journal_file_name, list_checkpoints, list_checkpoints_with,
    recover_latest, recover_latest_with, rotate_checkpoints, rotate_checkpoints_with,
    write_checkpoint, write_checkpoint_with,
};
use cap_obs::Obs;
use cap_snapshot::{encode_journal_header, SnapshotBuilder};
use std::fs;
use std::path::{Path, PathBuf};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cap-checkpoint-{tag}-{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// A minimal but *valid* snapshot archive whose payload encodes `n`.
fn valid_archive(n: u64) -> Vec<u8> {
    let mut b = SnapshotBuilder::new();
    b.add_raw("payload", n.to_le_bytes().to_vec());
    b.finish()
}

#[test]
fn write_is_atomic_and_leaves_no_tmp_behind() {
    let dir = temp_dir("atomic");
    let path = write_checkpoint(&dir, 42, &valid_archive(42)).expect("writes");
    assert_eq!(path.file_name().unwrap(), "ckpt-000000000042.capsnap");
    let names: Vec<String> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert_eq!(names, vec!["ckpt-000000000042.capsnap".to_owned()]);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn rotation_keeps_exactly_the_newest_k() {
    let dir = temp_dir("rotate");
    for events in [100u64, 200, 300, 400, 500] {
        write_checkpoint(&dir, events, &valid_archive(events)).expect("writes");
    }
    let removed = rotate_checkpoints(&dir, 2).expect("rotates");
    assert_eq!(removed.removed.len(), 3);
    let remaining: Vec<u64> = list_checkpoints(&dir)
        .unwrap()
        .into_iter()
        .map(|(e, _)| e)
        .collect();
    assert_eq!(remaining, vec![400, 500]);

    // keep = 0 still preserves the newest.
    let _ = rotate_checkpoints(&dir, 0).expect("rotates");
    let remaining: Vec<u64> = list_checkpoints(&dir)
        .unwrap()
        .into_iter()
        .map(|(e, _)| e)
        .collect();
    assert_eq!(remaining, vec![500]);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovery_picks_newest_valid_and_sweeps_the_debris() {
    let dir = temp_dir("recover");
    // Two good checkpoints...
    write_checkpoint(&dir, 1_000, &valid_archive(1)).expect("writes");
    write_checkpoint(&dir, 2_000, &valid_archive(2)).expect("writes");
    // ...then the crash: a zero-length published file, a torn (truncated)
    // newest checkpoint, and a leftover .tmp from an interrupted write.
    fs::write(dir.join(checkpoint_file_name(3_000)), b"").expect("zero-length");
    let torn = &valid_archive(4)[..10];
    fs::write(dir.join(checkpoint_file_name(4_000)), torn).expect("torn");
    fs::write(
        dir.join(format!("{}.tmp", checkpoint_file_name(5_000))),
        b"half-written",
    )
    .expect("tmp orphan");

    let recovery = recover_latest(&dir).expect("recovers");
    let (chosen, bytes) = recovery.chosen.expect("a valid checkpoint exists");
    assert_eq!(chosen.file_name().unwrap(), checkpoint_file_name(2_000).as_str());
    assert_eq!(bytes, valid_archive(2));

    // The zero-length file, the torn file, and the tmp orphan are gone;
    // the older valid checkpoint is left for rotation.
    assert_eq!(recovery.removed.len(), 3);
    let remaining: Vec<u64> = list_checkpoints(&dir)
        .unwrap()
        .into_iter()
        .map(|(e, _)| e)
        .collect();
    assert_eq!(remaining, vec![1_000, 2_000]);
    assert!(!dir
        .join(format!("{}.tmp", checkpoint_file_name(5_000)))
        .exists());
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovery_of_an_empty_or_missing_directory_is_clean() {
    let dir = temp_dir("empty");
    let recovery = recover_latest(&dir).expect("empty dir recovers");
    assert!(recovery.chosen.is_none());
    assert!(recovery.removed.is_empty());

    let missing = dir.join("never-created");
    let recovery = recover_latest(&missing).expect("missing dir recovers");
    assert!(recovery.chosen.is_none());
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovery_with_only_invalid_checkpoints_reports_none_and_cleans_all() {
    let dir = temp_dir("all-bad");
    fs::write(dir.join(checkpoint_file_name(10)), b"").expect("zero-length");
    fs::write(dir.join(checkpoint_file_name(20)), b"not a snapshot").expect("garbage");
    let recovery = recover_latest(&dir).expect("recovers");
    assert!(recovery.chosen.is_none());
    assert_eq!(recovery.removed.len(), 2);
    assert!(list_checkpoints(&dir).unwrap().is_empty());
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn rotation_at_the_keep_one_boundary() {
    let dir = temp_dir("keep-one");

    // Rotating an empty directory with keep = 1 is a no-op, not an error.
    assert!(rotate_checkpoints(&dir, 1).expect("empty rotates").removed.is_empty());

    // A single checkpoint at keep = 1 sits exactly on the boundary:
    // nothing may be removed.
    write_checkpoint(&dir, 100, &valid_archive(100)).expect("writes");
    assert!(rotate_checkpoints(&dir, 1).expect("rotates").removed.is_empty());
    assert_eq!(list_checkpoints(&dir).unwrap().len(), 1);

    // Each additional write followed by keep = 1 rotation removes exactly
    // the previous survivor — the steady-state of a running service.
    for events in [200u64, 300, 400] {
        write_checkpoint(&dir, events, &valid_archive(events)).expect("writes");
        let removed = rotate_checkpoints(&dir, 1).expect("rotates");
        assert_eq!(removed.removed.len(), 1, "exactly the displaced checkpoint goes");
        let remaining: Vec<u64> = list_checkpoints(&dir)
            .unwrap()
            .into_iter()
            .map(|(e, _)| e)
            .collect();
        assert_eq!(remaining, vec![events]);
    }

    // The survivor is still a valid recovery source.
    let recovery = recover_latest(&dir).expect("recovers");
    let (chosen, _) = recovery.chosen.expect("survivor is recoverable");
    assert_eq!(chosen.file_name().unwrap(), checkpoint_file_name(400).as_str());
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn all_corrupt_checkpoints_yield_a_cold_service_not_an_error() {
    use cap_service::prelude::*;
    use std::time::Duration;

    let dir = temp_dir("all-corrupt-service");
    // Every checkpoint on disk is damaged in a different way: empty,
    // garbage, a torn prefix of a real archive, and a real service
    // snapshot with a flipped bit.
    fs::write(dir.join(checkpoint_file_name(10)), b"").expect("empty");
    fs::write(dir.join(checkpoint_file_name(20)), b"definitely not a snapshot").expect("garbage");
    fs::write(dir.join(checkpoint_file_name(30)), &valid_archive(30)[..9]).expect("torn");
    let mut flipped = {
        let service = Service::start(ServiceConfig::default());
        service.shutdown(Duration::from_millis(200)).snapshot
    };
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x40;
    fs::write(dir.join(checkpoint_file_name(40)), &flipped).expect("bit-rotted");

    // Recovery must not error; the CRC-failing candidates are swept and
    // nothing survives to restore from.
    let recovery = recover_latest(&dir).expect("recovery is not an error");
    assert!(recovery.chosen.is_none(), "no corrupt checkpoint is trusted");
    assert_eq!(recovery.removed.len(), 4);

    // The serve path degrades to a cold start and the service works.
    let snapshot_bytes = recovery.chosen.as_ref().map(|(_, b)| b.as_slice());
    let (service, warm) = Service::restore_or_cold(ServiceConfig::default(), snapshot_bytes);
    assert!(!warm, "nothing valid on disk means a cold start");
    let handle = service.handle();
    for i in 0..32u64 {
        let response = handle
            .call(
                Request::Observe {
                    ip: 0x42,
                    offset: 0,
                    ghr: 0,
                    actual: 0x1000 + i * 8,
                },
                None,
            )
            .expect("cold service serves");
        assert!(matches!(response, Response::Observed { .. }));
    }
    let stats = service.handle().stats().expect("stats");
    assert_eq!(stats.merged_predictor().loads, 32);
    let report = service.shutdown(Duration::from_secs(1));
    assert_eq!(report.drain_rejected, 0);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn tmp_orphan_numerically_newest_is_swept_never_chosen() {
    let dir = temp_dir("tmp-newest");
    write_checkpoint(&dir, 100, &valid_archive(100)).expect("writes");
    write_checkpoint(&dir, 200, &valid_archive(200)).expect("writes");
    // The orphan parses as event 900 — newer than every published
    // checkpoint — and even holds a perfectly valid archive. It was
    // never renamed into place, so it must be swept, not trusted: an
    // interrupted publish is not a publish.
    let orphan = dir.join(format!("{}.tmp", checkpoint_file_name(900)));
    fs::write(&orphan, valid_archive(900)).expect("tmp orphan");

    let recovery = recover_latest(&dir).expect("recovers");
    let (chosen, bytes) = recovery.chosen.expect("published checkpoint wins");
    assert_eq!(chosen.file_name().unwrap(), checkpoint_file_name(200).as_str());
    assert_eq!(bytes, valid_archive(200));
    assert!(recovery.removed.contains(&orphan));
    assert!(!orphan.exists());
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_mid_rotation_leaves_a_recoverable_directory() {
    let vfs = ChaosVfs::new(11, FsFaultConfig::off());
    let dir = Path::new("/v/mid-rotation");
    let obs = Obs::off();
    for events in [100u64, 200, 300, 400, 500] {
        write_checkpoint_with(&vfs, dir, events, &valid_archive(events), &obs).expect("writes");
    }

    // keep = 2 wants 100, 200, 300 gone. Crash right after the second
    // removal — before the directory sync that would make any removal
    // durable — so the reboot resurrects every file: retention is
    // un-done, but nothing is half-deleted and nothing valid is lost.
    let c = vfs.op_count();
    vfs.set_crash_after(c + 3); // +1 list, +2 remove(100), +3 remove(200)
    let _ = rotate_checkpoints_with(&vfs, dir, 2, &obs);
    vfs.reboot();

    let recovery = recover_latest_with(&vfs, dir).expect("recovers after the crash");
    let (chosen, bytes) = recovery.chosen.expect("newest checkpoint survived");
    assert_eq!(chosen.file_name().unwrap(), checkpoint_file_name(500).as_str());
    assert_eq!(bytes, valid_archive(500));

    // The next rotation finishes what the crashed one started.
    let rotation = rotate_checkpoints_with(&vfs, dir, 2, &obs).expect("rotates");
    assert!(rotation.first_error.is_none());
    let remaining: Vec<u64> = list_checkpoints_with(&vfs, dir)
        .unwrap()
        .into_iter()
        .map(|(e, _)| e)
        .collect();
    assert_eq!(remaining, vec![400, 500]);
}

#[test]
fn sticky_undeletable_checkpoint_does_not_abort_rotation() {
    let vfs = ChaosVfs::new(12, FsFaultConfig::off());
    let dir = Path::new("/v/sticky");
    let obs = Obs::off();
    for events in [100u64, 200, 300] {
        write_checkpoint_with(&vfs, dir, events, &valid_archive(events), &obs).expect("writes");
    }
    // A journal based on checkpoint 100: prunable only once its base is
    // actually gone.
    let journal = dir.join(journal_file_name(100));
    vfs.write_file(&journal, &encode_journal_header(100)).expect("journal");
    vfs.sync_file(&journal).expect("sync");
    vfs.sync_dir(dir).expect("sync dir");

    let sticky = dir.join(checkpoint_file_name(100));
    vfs.deny_remove(&sticky);
    let rotation = rotate_checkpoints_with(&vfs, dir, 1, &obs).expect("listing still works");
    // Best-effort: the failure is reported, the *other* excess file
    // still went, and the journal stays because its base survived.
    assert!(rotation.first_error.is_some());
    assert_eq!(rotation.removed, vec![dir.join(checkpoint_file_name(200))]);
    assert!(rotation.removed_journals.is_empty());
    let remaining: Vec<u64> = list_checkpoints_with(&vfs, dir)
        .unwrap()
        .into_iter()
        .map(|(e, _)| e)
        .collect();
    assert_eq!(remaining, vec![100, 300]);

    // Once the denial lifts, the next rotation sweeps the stragglers —
    // the sticky checkpoint and the journal whose base then vanishes.
    vfs.allow_remove(&sticky);
    let rotation = rotate_checkpoints_with(&vfs, dir, 1, &obs).expect("rotates");
    assert!(rotation.first_error.is_none());
    assert_eq!(rotation.removed, vec![sticky]);
    assert_eq!(rotation.removed_journals, vec![journal]);
    let remaining: Vec<u64> = list_checkpoints_with(&vfs, dir)
        .unwrap()
        .into_iter()
        .map(|(e, _)| e)
        .collect();
    assert_eq!(remaining, vec![300]);
}

#[test]
fn foreign_files_are_never_touched() {
    let dir = temp_dir("foreign");
    fs::write(dir.join("notes.txt"), b"keep me").expect("write");
    fs::write(dir.join("ckpt-12.capsnap"), b"wrong digit count").expect("write");
    write_checkpoint(&dir, 7, &valid_archive(7)).expect("writes");

    let _ = rotate_checkpoints(&dir, 1).expect("rotates");
    let recovery = recover_latest(&dir).expect("recovers");
    assert!(recovery.chosen.is_some());
    assert!(dir.join("notes.txt").exists());
    assert!(dir.join("ckpt-12.capsnap").exists(), "non-canonical names are ignored");
    fs::remove_dir_all(&dir).ok();
}
