//! The partition soak — the capstone gate for partition tolerance.
//!
//! An in-process fleet reached only through seeded [`ChaosProxy`]s.
//! Two phases, two different strengths of claim:
//!
//! **Phase A — exact accounting under full chaos.** Ten thousand
//! requests through proxies injecting latency, resets mid-frame,
//! truncation, opcode garbling, and slow-loris trickle, with scripted
//! black-hole and refuse-connect partition windows *and* a node killed
//! and promoted from a surviving replica mid-stream. The router's
//! ledger must balance exactly: `accepted == answered + shed +
//! failover + other`, agreeing bucket-for-bucket with the client's own
//! tally — no request lost, none double-counted, despite retries
//! (issued only for provably-not-forwarded rejections).
//!
//! **Phase B — bit-identical reconciliation.** Partitions only, no
//! other faults, and only the black-hole mode — whose
//! drop-before-forward guarantee means every failed request provably
//! never reached a node. Successful requests are mirrored in order
//! onto an unpartitioned control fleet; a node is killed *behind* its
//! partition and promoted from the replica its ring successor holds.
//! After the storm, every subject node's state must be **byte
//! identical** to its control twin — the strongest possible statement
//! that the partition neither lost nor duplicated a single training
//! event.
//!
//! Set `CAP_SOAK_QUICK=1` to run a shortened (but same-shape) soak.

use cap_cluster::prelude::*;
use cap_faults::prelude::{ChaosProxy, NetFaultConfig, NetFaultPlan, PartitionMode};
use cap_obs::Registry;
use cap_service::breaker::BreakerConfig;
use cap_service::net::TcpClient;
use cap_service::prelude::{Request, ServiceConfig};
use std::sync::Arc;
use std::time::Duration;

/// One seed for the whole soak: fault draws, traffic stream, partition
/// windows. A failure replays exactly from this number.
const PLAN_SEED: u64 = 0x9A87_1710_2024_CAFE;

fn quick() -> bool {
    std::env::var("CAP_SOAK_QUICK").is_ok_and(|v| v != "0" && !v.is_empty())
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn node_config() -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        queue_capacity: 128,
        ..ServiceConfig::default()
    }
}

fn observe(ip: u64, actual: u64) -> Request {
    Request::Observe {
        ip,
        offset: 0,
        ghr: 0,
        actual,
    }
}

/// The deterministic traffic stream: `(ip, actual)` pairs.
fn traffic(n: usize) -> Vec<(u64, u64)> {
    let mut state = PLAN_SEED;
    (0..n)
        .map(|_| {
            let r = splitmix(&mut state);
            // 48 hot IPs with stride-friendly addresses.
            let ip = 0x4000 + (r % 48) * 0x40;
            let actual = 0x10_0000 + (r >> 8) % 0x4000;
            (ip, actual)
        })
        .collect()
}

/// Client-side tally mirroring the router's accounting buckets.
#[derive(Debug, Default)]
struct Ledger {
    attempts: u64,
    answered: u64,
    shed: u64,
    failover: u64,
    other: u64,
    retries: u64,
}

impl Ledger {
    /// Issues `request`, retrying only rejections that provably never
    /// trained a node (gated or fenced), and tallies every attempt.
    fn drive(&mut self, router: &Router, request: Request) {
        loop {
            self.attempts += 1;
            match router.call(request, None) {
                Ok(_) => {
                    self.answered += 1;
                    return;
                }
                Err(e) if e.is_shed() => {
                    self.shed += 1;
                    return;
                }
                Err(e) => {
                    let retry = e.retry_is_exactly_once();
                    if e.is_failover() {
                        self.failover += 1;
                    } else {
                        self.other += 1;
                    }
                    if retry && self.retries < self.attempts {
                        self.retries += 1;
                        continue;
                    }
                    return;
                }
            }
        }
    }

    fn matches(&self, a: &Accounting) -> bool {
        self.attempts == a.accepted
            && self.answered == a.answered
            && self.shed == a.shed
            && self.failover == a.failover_attributed
            && self.other == a.other_error
    }
}

#[test]
fn phase_a_exact_accounting_under_full_chaos() {
    let total: usize = if quick() { 2_500 } else { 10_000 };
    let stream = traffic(total);

    let nodes: Vec<LocalNode> = (0..3).map(|_| LocalNode::start(node_config()).expect("node")).collect();
    let chaos = NetFaultConfig {
        p_reset: 0.06,
        p_truncate: 0.04,
        p_garble: 0.05,
        p_slow_loris: 0.02,
        p_latency: 0.15,
        latency_ms: (1, 2),
        fault_frame_horizon: 16,
        loris_pause: Duration::from_micros(100),
    };
    let proxies: Vec<ChaosProxy> = nodes
        .iter()
        .enumerate()
        .map(|(i, n)| {
            ChaosProxy::start(n.addr(), NetFaultPlan::new(PLAN_SEED + i as u64, chaos))
                .expect("proxy")
        })
        .collect();
    let addrs: Vec<_> = proxies.iter().map(ChaosProxy::addr).collect();
    let registry = Arc::new(Registry::new());
    let router = Router::new(
        &addrs,
        RouterConfig {
            read_timeout: Some(Duration::from_millis(150)),
            breaker: BreakerConfig {
                failure_threshold: 3,
                close_after: 1,
                cooldown: Duration::from_millis(80),
                jitter: Duration::from_millis(20),
            },
            obs: registry.obs(),
            ..RouterConfig::default()
        },
    )
    .expect("router");
    let router = Arc::new(router);

    // Scripted chaos timeline, in request indices.
    let blackhole = total / 5..total / 5 + total / 20;
    let refuse = total / 2..total / 2 + total / 20;
    let kill_at = total * 7 / 10;
    let ship_every = total / 8;

    let mut ledger = Ledger::default();
    let mut nodes: Vec<Option<LocalNode>> = nodes.into_iter().map(Some).collect();
    let mut replacement: Option<LocalNode> = None;
    for (i, &(ip, actual)) in stream.iter().enumerate() {
        if i > 0 && i % ship_every == 0 {
            // Ships may fail under chaos; the last good replica stands.
            let _ = router.ship_now();
        }
        if i == blackhole.start {
            proxies[1].set_partition(PartitionMode::BlackHole);
        }
        if i == blackhole.end {
            proxies[1].heal();
        }
        if i == refuse.start {
            proxies[2].set_partition(PartitionMode::RefuseConnect);
        }
        if i == refuse.end {
            proxies[2].heal();
        }
        if i == kill_at {
            // Kill node 0 outright, then promote the best surviving
            // replica into its slot (reached directly, not proxied).
            let victim = nodes[0].take().expect("node 0 alive");
            victim.stop(Duration::from_millis(200)).expect("kill node 0");
            let (bytes, drift) = router.replica_any(0).expect("a replica survived the chaos");
            assert!(drift.is_some(), "the router-held replica carries an exact bound");
            let restored = LocalNode::start_restored(node_config(), &bytes).expect("restore");
            router.promote(0, restored.addr(), None).expect("promotion");
            replacement = Some(restored);
        }
        ledger.drive(&router, observe(ip, actual));
    }

    // The ledger identity, exact on both sides of the trust boundary.
    let acct = router.accounting();
    assert!(acct.balances(), "router ledger must balance: {acct:?}");
    assert!(
        ledger.matches(&acct),
        "client tally diverged from the router ledger:\n  client {ledger:?}\n  router {acct:?}"
    );
    assert!(acct.accepted >= total as u64, "retries only add, never subtract");
    assert!(
        acct.answered > (total / 2) as u64,
        "most traffic must survive the chaos: {acct:?}"
    );

    // The chaos actually happened, and was classified.
    let snap = registry.snapshot();
    assert!(
        snap.counter(cap_cluster::names::PARTITION_SUSPECTED).unwrap_or(0) > 0,
        "black-hole windows must surface the partition signature"
    );
    assert_eq!(
        snap.counter(cap_cluster::names::REPLICA_PROMOTIONS),
        Some(1),
        "exactly one failover promotion"
    );
    let dropped: u64 = proxies.iter().map(|p| p.stats().frames_dropped_partition).sum();
    assert!(dropped > 0, "the black hole must have swallowed frames");
    let injected = proxies
        .iter()
        .map(ChaosProxy::stats)
        .fold(0u64, |acc, s| acc + s.resets + s.truncations + s.garbles + s.delayed + s.trickled);
    assert!(injected > 0, "the fault plan must have fired");

    for p in proxies {
        p.stop();
    }
    for node in nodes.into_iter().flatten().chain(replacement) {
        node.stop(Duration::from_millis(200)).expect("stop node");
    }
}

/// Pulls a node's live archive directly (not through the router), for
/// the final byte-compare.
fn pull_direct(addr: std::net::SocketAddr) -> Vec<u8> {
    let mut client = TcpClient::connect(addr).expect("connect for final pull");
    client.pull_snapshot().expect("final pull")
}

#[test]
fn phase_b_partition_heals_to_bit_identical_state() {
    let total: usize = if quick() { 1_500 } else { 6_000 };
    let stream = traffic(total);

    // Subject fleet: two nodes behind quiet proxies (pure pipes plus
    // the partition switch — every failure is attributable to the
    // partition alone). Control fleet: the same two-node shape, bare.
    let subject_nodes: Vec<LocalNode> =
        (0..2).map(|_| LocalNode::start(node_config()).expect("subject node")).collect();
    let control_nodes: Vec<LocalNode> =
        (0..2).map(|_| LocalNode::start(node_config()).expect("control node")).collect();
    let proxies: Vec<ChaosProxy> = subject_nodes
        .iter()
        .map(|n| {
            ChaosProxy::start(n.addr(), NetFaultPlan::new(PLAN_SEED, NetFaultConfig::quiet()))
                .expect("proxy")
        })
        .collect();
    let subject_addrs: Vec<_> = proxies.iter().map(ChaosProxy::addr).collect();
    let control_addrs: Vec<_> = control_nodes.iter().map(LocalNode::addr).collect();
    let registry = Arc::new(Registry::new());
    let subject = Router::new(
        &subject_addrs,
        RouterConfig {
            read_timeout: Some(Duration::from_millis(250)),
            breaker: BreakerConfig {
                failure_threshold: 4,
                close_after: 1,
                cooldown: Duration::from_millis(60),
                jitter: Duration::from_millis(10),
            },
            obs: registry.obs(),
            ..RouterConfig::default()
        },
    )
    .expect("subject router");
    let control = Router::new(&control_addrs, RouterConfig::default()).expect("control router");

    // Same ring config on both → identical ip → slot mapping, so a
    // mirrored request trains the *same shard* on the control side.
    for &(ip, _) in stream.iter().take(64) {
        assert_eq!(subject.node_for_ip(ip).0, control.node_for_ip(ip).0);
    }

    // Timeline: warm traffic → ship (replica generation for shard 0
    // lands on its ring successor) → black-hole node 0's proxy → kill
    // node 0 *behind* the partition → more traffic (shard-0 requests
    // provably never forwarded; shard-1 flows) → heal → promote shard
    // 0 from the successor-held replica → drain the rest.
    let partition_at = total / 3;
    let kill_at = partition_at + total / 10;
    let heal_at = total / 3 * 2;

    let mut subject_nodes: Vec<Option<LocalNode>> =
        subject_nodes.into_iter().map(Some).collect();
    let mut replacement: Option<LocalNode> = None;
    let mut mirrored = 0u64;
    for (i, &(ip, actual)) in stream.iter().enumerate() {
        if i == partition_at {
            for shipped in subject.ship_now() {
                shipped.expect("pre-partition ship");
            }
            proxies[0].set_partition(PartitionMode::BlackHole);
        }
        if i == kill_at {
            let victim = subject_nodes[0].take().expect("node 0 alive");
            victim.stop(Duration::from_millis(200)).expect("kill behind partition");
        }
        if i == heal_at {
            proxies[0].heal();
            // The R>1 payoff: shard 0's replica survives on its ring
            // successor (node 1) even though both the node *and* the
            // router-held copy could be gone. Promote from it — the
            // fetched generation is the newest ship, so the drift
            // bound is exact: zero (the partition began at the ship,
            // and every shard-0 request since provably never landed).
            let (from_successor, drift) = subject
                .replica_from_successors(0)
                .expect("ring successor holds shard 0's replica");
            let (local, _) = subject.replica(0).expect("router-held copy");
            assert_eq!(from_successor, local, "successor and router copies agree");
            assert_eq!(drift, Some(0), "kill-behind-partition promotes with zero drift");
            let restored =
                LocalNode::start_restored(node_config(), &from_successor).expect("restore");
            subject.promote(0, restored.addr(), None).expect("promotion");
            replacement = Some(restored);
        }
        // Drive the subject; mirror *successes* (in stream order — one
        // driver thread, so per-IP order is preserved by construction)
        // onto the control fleet. Failures are provable non-events on
        // the subject side: black-holed frames were dropped before
        // forwarding, breaker refusals and fence rejections never
        // reached a predictor.
        let mut fenced_retries = 0;
        loop {
            match subject.call(observe(ip, actual), None) {
                Ok(_) => {
                    control.call(observe(ip, actual), None).expect("control mirrors");
                    mirrored += 1;
                    break;
                }
                Err(e) if e.retry_is_exactly_once() && fenced_retries < 4 => {
                    fenced_retries += 1;
                }
                Err(e) => {
                    assert!(
                        e.is_failover(),
                        "phase B failures must be partition-shaped, got {e:?}"
                    );
                    break;
                }
            }
        }
    }

    // Quiesce and compare: every subject node byte-identical to its
    // control twin. This is the no-loss / no-duplicate proof — one
    // extra or missing training event anywhere would diverge the
    // archives.
    let subject_acct = subject.accounting();
    let control_acct = control.accounting();
    assert!(subject_acct.balances(), "{subject_acct:?}");
    assert_eq!(
        subject_acct.answered, mirrored,
        "every answered request was mirrored exactly once"
    );
    assert_eq!(
        control_acct.answered, mirrored,
        "the control fleet answered every mirrored request"
    );
    assert!(
        subject_acct.failover_attributed > 0,
        "the partition must have cost something: {subject_acct:?}"
    );

    let subject_final_0 = pull_direct(replacement.as_ref().expect("promoted").addr());
    let subject_final_1 =
        pull_direct(subject_nodes[1].as_ref().expect("node 1 alive").addr());
    let control_final_0 = pull_direct(control_nodes[0].addr());
    let control_final_1 = pull_direct(control_nodes[1].addr());
    assert_eq!(
        subject_final_0, control_final_0,
        "shard 0 (killed behind the partition, promoted from the successor replica) \
         must heal to byte-identical state"
    );
    assert_eq!(
        subject_final_1, control_final_1,
        "shard 1 (never partitioned) must match its control twin byte for byte"
    );

    // The partition was real and was classified as one.
    let snap = registry.snapshot();
    assert!(snap.counter(cap_cluster::names::PARTITION_SUSPECTED).unwrap_or(0) > 0);
    assert!(proxies[0].stats().frames_dropped_partition > 0);

    for p in proxies {
        p.stop();
    }
    for node in subject_nodes
        .into_iter()
        .flatten()
        .chain(replacement)
        .chain(control_nodes)
    {
        node.stop(Duration::from_millis(200)).expect("stop node");
    }
}
