//! Golden-file tests for the telemetry export surfaces: the `CAPO`
//! wire frame and the JSON rendering must be **byte-stable** — same
//! registry contents, same bytes, forever. The registry here is
//! populated deterministically (fixed values, no wall-clock), so any
//! diff against the checked-in goldens is a wire-format or rendering
//! change, which is exactly what these tests exist to catch.
//!
//! To regenerate after an *intentional* format change:
//! `CAP_UPDATE_GOLDEN=1 cargo test -p cap-harness --test obs_golden`

use cap_harness::json::obs_snapshot_json;
use cap_obs::{EventKind, Registry, StatsSnapshot};
use std::path::PathBuf;
use std::sync::Arc;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// A registry filled with fixed values spanning every metric type the
/// workspace records: service counters, a negative gauge, a latency
/// histogram crossing several log buckets, and trace events.
fn populated_registry() -> Arc<Registry> {
    let registry = Arc::new(Registry::new());
    let obs = registry.obs();

    obs.count(cap_service::names::ACCEPTED, 1200);
    obs.count(cap_service::names::SERVED, 1180);
    obs.count(cap_service::names::SHED, 20);
    obs.count(cap_service::names::BREAKER_OPEN, 3);
    obs.count("pred.loads", 1180);
    obs.count("pred.predictions", 700);
    obs.count("pred.correct_predictions", 650);
    obs.count(cap_harness::names::CKPT_WRITTEN, 4);

    // Backend-catalog counters (cache-level, ldbp, pcax backends).
    obs.count(cap_uarch::names::CLP_LEVEL_HIT, 540);
    obs.count(cap_uarch::names::CLP_LEVEL_MISS, 60);
    obs.count(cap_uarch::names::LDBP_EARLY_RESOLVED, 310);
    obs.count(cap_uarch::names::LDBP_EARLY_MISPREDICT, 14);
    obs.count(cap_uarch::names::PCAX_ASSIST, 95);
    obs.count(cap_uarch::names::TLB_HIT, 1020);
    obs.count(cap_uarch::names::TLB_MISS, 160);
    obs.count(cap_uarch::names::TLB_PREWARM, 95);
    obs.count(cap_uarch::names::TLB_PREWARM_HIT, 71);

    obs.count(cap_cluster::names::PARTITION_SUSPECTED, 11);
    obs.count(cap_cluster::names::REPLICA_PROMOTIONS, 1);
    obs.count(cap_cluster::names::EPOCH_FENCED, 2);
    obs.count(cap_cluster::names::REPLICA_PUSHED, 38);
    obs.count(cap_cluster::names::REPLICA_PUSH_FAIL, 1);
    obs.count(cap_cluster::names::RING_RESIZE, 1);
    obs.count(cap_cluster::names::FENCE_FAIL, 1);

    obs.gauge("uarch.cache.live", 512);
    obs.gauge("debug.drift", -7);
    // Per-node breaker state gauges: 0 = closed, 1 = open, 2 = half-open.
    obs.gauge(&cap_cluster::names::breaker_state_gauge(0), 0);
    obs.gauge(&cap_cluster::names::breaker_state_gauge(1), 1);
    obs.gauge(&cap_cluster::names::breaker_state_gauge(2), 2);

    for latency in [3u64, 5, 9, 17, 33, 65, 129, 257, 1025, 4097] {
        obs.record(cap_service::names::LATENCY_BY_RUNG[0], latency);
    }
    for micros in [850u64, 900, 1100, 1300] {
        obs.record(cap_harness::names::CKPT_ENCODE_US, micros);
    }

    obs.event("service.breaker.open", EventKind::Mark, 1);
    obs.event("ckpt.publish", EventKind::SpanBegin, 4);
    obs.event("ckpt.publish", EventKind::SpanEnd, 4);

    registry
}

fn check_golden(name: &str, actual: &[u8]) {
    let path = golden_path(name);
    if std::env::var_os("CAP_UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); regenerate with CAP_UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert!(
        expected == actual,
        "{name} drifted from its golden ({} vs {} bytes); if the change \
         is intentional, regenerate with CAP_UPDATE_GOLDEN=1",
        expected.len(),
        actual.len()
    );
}

#[test]
fn wire_frame_bytes_are_golden() {
    let snapshot = populated_registry().snapshot();
    let bytes = snapshot.encode();
    check_golden("obs_stats.capo", &bytes);
    // The golden bytes must also decode back to the identical snapshot —
    // stability without round-trip fidelity would be useless.
    assert_eq!(StatsSnapshot::decode(&bytes).unwrap(), snapshot);
}

#[test]
fn json_export_is_golden() {
    let snapshot = populated_registry().snapshot();
    let json = obs_snapshot_json(&snapshot).pretty();
    check_golden("obs_stats.json", json.as_bytes());
}

#[test]
fn two_identical_populations_export_identical_bytes() {
    // The byte-stability claim, proven from first principles: build the
    // registry twice, get the same frame and the same JSON.
    let a = populated_registry().snapshot();
    let b = populated_registry().snapshot();
    assert_eq!(a.encode(), b.encode());
    assert_eq!(
        obs_snapshot_json(&a).pretty(),
        obs_snapshot_json(&b).pretty()
    );
}
