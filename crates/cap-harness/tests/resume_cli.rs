//! Differential kill-and-resume through the real `simulate` binary: a run
//! killed hard (exit 137) at an arbitrary event and restarted with
//! `--resume auto` must finish with **bit-identical** metrics to an
//! uninterrupted run — including with chaos injection enabled, since the
//! supervisor's PRNG rides in the checkpoint.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn simulate() -> Command {
    Command::new(env!("CARGO_BIN_EXE_simulate"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cap-resume-cli-{tag}-{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn stdout_of(output: &Output) -> String {
    assert!(
        output.status.success(),
        "command failed: status {:?}\nstderr: {}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8_lossy(&output.stdout).into_owned()
}

/// Generates a trace file via `simulate gen` and returns its path.
fn gen_trace(dir: &Path, loads: u64) -> PathBuf {
    let trace = dir.join("trace.txt");
    let output = simulate()
        .args(["gen", "--out"])
        .arg(&trace)
        .args(["--loads", &loads.to_string(), "--suite", "1"])
        .output()
        .expect("spawn simulate gen");
    stdout_of(&output);
    assert!(trace.exists());
    trace
}

/// The stable subset of the JSON report: everything except the fields
/// that legitimately differ between a fresh and a resumed process
/// (resumed_from, recovery_removed, checkpoints_written, faults_applied —
/// the latter two count per-process work, not logical-run totals).
fn metrics_of(json: &str) -> Vec<String> {
    json.lines()
        .filter(|l| {
            ["\"predictor\"", "\"events\"", "\"loads\"", "\"predictions\"",
             "\"correct_predictions\"", "\"prediction_rate_bits\"", "\"accuracy_bits\"",
             "\"killed\""]
            .iter()
            .any(|k| l.trim_start().starts_with(k))
        })
        .map(|l| l.trim().trim_end_matches(',').to_owned())
        .collect()
}

fn differential_kill_resume(tag: &str, chaos: &[&str]) {
    let dir = temp_dir(tag);
    let trace = gen_trace(&dir, 4_000);
    let ckpts = dir.join("ckpts");

    // Reference: uninterrupted run.
    let reference = simulate()
        .args(["run", "--trace"])
        .arg(&trace)
        .args(["--predictor", "hybrid", "--seed", "77", "--json"])
        .args(chaos)
        .output()
        .expect("spawn reference run");
    let reference_metrics = metrics_of(&stdout_of(&reference));
    assert!(!reference_metrics.is_empty());

    // Killed run: checkpoints every 700 events, dies hard at 3 000
    // (guaranteed inside the trace: 4 000 loads means >= 4 000 events).
    let killed = simulate()
        .args(["run", "--trace"])
        .arg(&trace)
        .args(["--predictor", "hybrid", "--seed", "77"])
        .args(["--checkpoint-dir"])
        .arg(&ckpts)
        .args(["--checkpoint-every", "700", "--kill-after", "3000"])
        .args(chaos)
        .output()
        .expect("spawn killed run");
    assert_eq!(
        killed.status.code(),
        Some(137),
        "kill must exit hard: stderr {}",
        String::from_utf8_lossy(&killed.stderr)
    );
    assert!(
        killed.stdout.is_empty(),
        "a killed run reports nothing — only its checkpoints survive"
    );
    assert!(fs::read_dir(&ckpts).unwrap().count() > 0, "checkpoints on disk");

    // Resumed run: recovers the newest checkpoint and finishes.
    let resumed = simulate()
        .args(["run", "--trace"])
        .arg(&trace)
        .args(["--predictor", "hybrid", "--seed", "77"])
        .args(["--checkpoint-dir"])
        .arg(&ckpts)
        .args(["--checkpoint-every", "700", "--resume", "auto", "--json"])
        .args(chaos)
        .output()
        .expect("spawn resumed run");
    let resumed_stdout = stdout_of(&resumed);
    assert!(
        resumed_stdout.contains("\"resumed_from\": \"") && resumed_stdout.contains("ckpt-"),
        "must actually resume: {resumed_stdout}"
    );
    assert_eq!(
        metrics_of(&resumed_stdout),
        reference_metrics,
        "resumed metrics must be bit-identical to the uninterrupted run"
    );

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn killed_run_resumes_bit_identical() {
    differential_kill_resume("plain", &[]);
}

#[test]
fn killed_chaotic_run_resumes_bit_identical() {
    differential_kill_resume("chaos", &["--chaos-every", "150"]);
}

#[test]
fn resume_refuses_a_checkpoint_from_another_predictor() {
    let dir = temp_dir("refuse");
    let trace = gen_trace(&dir, 2_000);
    let ckpts = dir.join("ckpts");

    let killed = simulate()
        .args(["run", "--trace"])
        .arg(&trace)
        .args(["--predictor", "hybrid", "--checkpoint-dir"])
        .arg(&ckpts)
        .args(["--checkpoint-every", "500", "--kill-after", "1500"])
        .output()
        .expect("spawn killed run");
    assert_eq!(killed.status.code(), Some(137));

    let wrong = simulate()
        .args(["run", "--trace"])
        .arg(&trace)
        .args(["--predictor", "stride", "--checkpoint-dir"])
        .arg(&ckpts)
        .args(["--resume", "auto"])
        .output()
        .expect("spawn mismatched resume");
    assert_eq!(wrong.status.code(), Some(3), "mismatch has its own exit code");
    let stderr = String::from_utf8_lossy(&wrong.stderr);
    assert!(
        stderr.contains("hybrid") && stderr.contains("stride"),
        "the refusal names both kinds: {stderr}"
    );

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_auto_with_an_empty_directory_starts_fresh() {
    let dir = temp_dir("fresh");
    let trace = gen_trace(&dir, 1_000);
    let ckpts = dir.join("ckpts");
    fs::create_dir_all(&ckpts).unwrap();

    let output = simulate()
        .args(["run", "--trace"])
        .arg(&trace)
        .args(["--checkpoint-dir"])
        .arg(&ckpts)
        .args(["--resume", "auto", "--json"])
        .output()
        .expect("spawn fresh-auto run");
    let stdout = stdout_of(&output);
    assert!(stdout.contains("\"resumed_from\": null"), "{stdout}");

    fs::remove_dir_all(&dir).ok();
}
