//! End-to-end tests of the `repro` binary's resilience mode: panic
//! isolation, `--keep-going`, and partial-results JSON.

use std::path::PathBuf;
use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn tmp_json(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("cap-repro-test-{name}-{}.json", std::process::id()));
    p
}

#[test]
fn keep_going_survives_an_injected_panic_and_emits_partial_json() {
    let json = tmp_json("keep-going");
    let out = repro()
        .args([
            "fig5",
            "text-coverage",
            "--tiny",
            "--keep-going",
            "--inject-panic",
            "fig5",
            "--json",
        ])
        .arg(&json)
        .output()
        .expect("spawn repro");
    assert!(
        out.status.success(),
        "--keep-going must exit 0 despite the panic; stderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let body = std::fs::read_to_string(&json).expect("partial JSON written");
    let _ = std::fs::remove_file(&json);
    assert!(
        body.contains(r#""id": "fig5", "status": "panicked""#),
        "fig5 recorded as panicked:\n{body}"
    );
    assert!(
        body.contains(r#""id": "text-coverage", "status": "ok""#),
        "the batch continued past the panic:\n{body}"
    );
    assert!(body.contains("injected panic"), "panic message captured:\n{body}");
    assert!(body.contains(r#""ok": 1"#) && body.contains(r#""failed": 1"#));
}

#[test]
fn without_keep_going_a_panic_fails_the_run_but_still_writes_json() {
    let json = tmp_json("fail-fast");
    let out = repro()
        .args([
            "fig5",
            "text-coverage",
            "--tiny",
            "--inject-panic",
            "fig5",
            "--json",
        ])
        .arg(&json)
        .output()
        .expect("spawn repro");
    assert!(!out.status.success(), "a panicking experiment must fail the run");
    let body = std::fs::read_to_string(&json).expect("JSON written even on failure");
    let _ = std::fs::remove_file(&json);
    assert!(body.contains(r#""status": "panicked""#));
    assert!(
        !body.contains(r#""id": "text-coverage""#),
        "fail-fast stops at the first failure:\n{body}"
    );
}

#[test]
fn clean_run_reports_every_experiment_ok() {
    let json = tmp_json("clean");
    let out = repro()
        .args(["fig5", "--tiny", "--json"])
        .arg(&json)
        .output()
        .expect("spawn repro");
    assert!(out.status.success());
    let body = std::fs::read_to_string(&json).expect("JSON written");
    let _ = std::fs::remove_file(&json);
    assert!(body.contains(r#""id": "fig5", "status": "ok""#));
    assert!(body.contains(r#""failed": 0"#));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("completed in"), "human output preserved:\n{stdout}");
}

#[test]
fn unknown_experiment_still_exits_nonzero() {
    let out = repro()
        .args(["no-such-figure", "--tiny"])
        .output()
        .expect("spawn repro");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown experiment"));
}
