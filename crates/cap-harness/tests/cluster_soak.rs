//! The multi-process cluster chaos soak — the capstone gate for the
//! sharded fleet.
//!
//! Real `simulate serve` processes (spawned via `CARGO_BIN_EXE`), a
//! real router over real sockets, seeded chaos plans. Two properties
//! are on trial:
//!
//! 1. **Full request accounting.** Every request the router accepts is
//!    answered or attributed — shed or failover — never lost, even
//!    while nodes are SIGKILLed mid-traffic and replacements are
//!    promoted from shipped replicas.
//! 2. **Drift-free rolling restarts.** Restarting the whole fleet node
//!    by node under load — drain, ship the final archive, restore a
//!    fresh process from it, flip the routing epoch — ends with every
//!    node bit-identical to its twin in an unrestarted control fleet.

use cap_cluster::prelude::{ClusterError, Router, RouterConfig};
use cap_harness::checkpoint::write_checkpoint;
use cap_service::prelude::{Request, TcpClient};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// One seed for the whole chaos plan: kill points, kill order, and the
/// traffic stream all derive from it, so a failure replays exactly.
const PLAN_SEED: u64 = 0x0C1A_0550_AB1E_5EED;

const WORKERS: &str = "2";
const QUEUE: &str = "64";

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One fleet node as a real child process.
struct ChildNode {
    child: Child,
    addr: SocketAddr,
}

fn spawn_serve(dir: &Path, seed: u64, resume: bool) -> ChildNode {
    std::fs::create_dir_all(dir).expect("node dir");
    let port_file = dir.join("port");
    let _ = std::fs::remove_file(&port_file);
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_simulate"));
    cmd.arg("serve")
        .arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--workers")
        .arg(WORKERS)
        .arg("--queue")
        .arg(QUEUE)
        .arg("--seed")
        .arg(seed.to_string())
        .arg("--snapshot-dir")
        .arg(dir)
        .arg("--port-file")
        .arg(&port_file)
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if resume {
        cmd.arg("--resume");
    }
    let child = cmd.spawn().expect("spawn serve child");
    let deadline = Instant::now() + Duration::from_secs(20);
    let port = loop {
        if let Some(port) = std::fs::read_to_string(&port_file)
            .ok()
            .and_then(|text| text.trim().parse::<u16>().ok())
        {
            break port;
        }
        assert!(
            Instant::now() < deadline,
            "child never published its port in {}",
            dir.display()
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    ChildNode {
        child,
        addr: format!("127.0.0.1:{port}").parse().expect("loopback addr"),
    }
}

/// A fleet of child processes with kill-on-drop cleanup, so a failing
/// assertion never leaks servers or temp state.
struct Fleet {
    base: PathBuf,
    slots: Vec<Option<ChildNode>>,
}

impl Fleet {
    fn start(name: &str, n: usize) -> Self {
        let base = std::env::temp_dir().join(format!(
            "cap-cluster-soak-{name}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&base);
        let slots = (0..n)
            .map(|i| {
                Some(spawn_serve(
                    &base.join(format!("node-{i}")),
                    0xF1EE7 + i as u64,
                    false,
                ))
            })
            .collect();
        Self { base, slots }
    }

    fn addrs(&self) -> Vec<SocketAddr> {
        self.slots
            .iter()
            .map(|s| s.as_ref().expect("node running").addr)
            .collect()
    }

    fn addr(&self, i: usize) -> SocketAddr {
        self.slots[i].as_ref().expect("node running").addr
    }

    /// SIGKILL — the chaos path. The slot is left empty until a
    /// replacement is installed.
    fn kill(&mut self, i: usize) {
        let mut node = self.slots[i].take().expect("node to kill");
        let _ = node.child.kill();
        let _ = node.child.wait();
    }

    /// Replaces slot `i` with a fresh process restored from `archive`
    /// (a shipped replica or a migration's final ship).
    fn respawn_restored(&mut self, i: usize, tag: &str, archive: &[u8]) -> SocketAddr {
        let dir = self.base.join(format!("{tag}-{i}"));
        std::fs::create_dir_all(&dir).expect("respawn dir");
        write_checkpoint(&dir, 1, archive).expect("publish replica as checkpoint");
        let node = spawn_serve(&dir, 0xF1EE7 + i as u64, true);
        let addr = node.addr;
        let old = self.slots[i].replace(node);
        if let Some(mut old) = old {
            // A drained predecessor is retired only after its
            // replacement exists — hard kill is fine post-ship.
            let _ = old.child.kill();
            let _ = old.child.wait();
        }
        addr
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        for slot in &mut self.slots {
            if let Some(node) = slot.as_mut() {
                let _ = node.child.kill();
                let _ = node.child.wait();
            }
        }
        let _ = std::fs::remove_dir_all(&self.base);
    }
}

/// The deterministic traffic stream: request `r` is an observe for a
/// fixed IP set, walking a per-IP stride so predictors actually train.
fn request_at(ips: &[u64], r: u64) -> Request {
    let ip = ips[(r as usize) % ips.len()];
    let round = r / ips.len() as u64;
    Request::Observe {
        ip,
        offset: 0,
        ghr: 0,
        actual: 0x10_0000 + ip * 8 + round * 64,
    }
}

fn soak_ips() -> Vec<u64> {
    (0..96u64).map(|i| 0x4000 + i * 0x40).collect()
}

/// ≥3 nodes, ≥10k requests, two seeded SIGKILLs mid-traffic, replicas
/// promoted — and at the end the router's ledger balances to the
/// request: accepted == answered + shed + failover + other, with the
/// same totals the client observed.
#[test]
fn chaos_soak_accounts_every_request_under_seeded_kills() {
    const TOTAL: u64 = 10_800;
    const SHIP_EVERY: u64 = 500;
    const RESPAWN_AFTER: u64 = 400;

    let mut fleet = Fleet::start("chaos", 3);
    let router = Router::new(&fleet.addrs(), RouterConfig::default()).expect("router");
    let ips = soak_ips();

    // The seeded chaos plan: two kills, distinct nodes, far enough
    // apart that the first replacement is promoted (and shipping has
    // resumed) before the second strike.
    let mut rng = PLAN_SEED;
    let first_kill = 2_500 + splitmix(&mut rng) % 1_000;
    let second_kill = 6_500 + splitmix(&mut rng) % 1_000;
    let first_victim = (splitmix(&mut rng) % 3) as usize;
    let second_victim = (first_victim + 1 + (splitmix(&mut rng) % 2) as usize) % 3;
    let mut plan = vec![
        (first_kill, first_victim),
        (second_kill, second_victim),
    ];
    let mut pending_respawn: Option<(u64, usize)> = None;

    let (mut answered, mut shed, mut failover, mut other) = (0u64, 0u64, 0u64, 0u64);
    for r in 0..TOTAL {
        if r % SHIP_EVERY == 0 && r > 0 {
            // A dead node's ship fails; that is the point of replicas.
            for _ in router.ship_now() {}
        }
        if plan.first().is_some_and(|&(at, _)| at == r) {
            let (_, victim) = plan.remove(0);
            fleet.kill(victim);
            pending_respawn = Some((r + RESPAWN_AFTER, victim));
        }
        if pending_respawn.is_some_and(|(at, _)| at == r) {
            let (_, victim) = pending_respawn.take().expect("checked");
            let (replica, drift) = router
                .replica(victim)
                .expect("shipping ran before every kill");
            assert!(
                drift <= SHIP_EVERY + RESPAWN_AFTER,
                "drift bound blew past a ship interval: {drift}"
            );
            let addr = fleet.respawn_restored(victim, "respawn", &replica);
            router.promote(victim, addr, None).expect("promotion");
        }
        match router.call(request_at(&ips, r), Some(Duration::from_secs(5))) {
            Ok(_) => answered += 1,
            Err(e) if e.is_shed() => shed += 1,
            Err(e) if e.is_failover() => failover += 1,
            Err(_) => other += 1,
        }
    }

    let acct = router.accounting();
    assert!(acct.balances(), "ledger must balance: {acct:?}");
    assert_eq!(acct.accepted, TOTAL, "every request entered the ledger");
    assert_eq!(
        (acct.answered, acct.shed, acct.failover_attributed, acct.other_error),
        (answered, shed, failover, other),
        "the router's ledger and the client's tally must agree"
    );
    assert_eq!(other, 0, "nothing may fall outside the attribution buckets");
    assert!(
        failover > 0,
        "the seeded kills must actually surface as failover traffic"
    );
    assert!(
        answered >= TOTAL - 2 * (RESPAWN_AFTER + SHIP_EVERY),
        "failover windows are bounded: only {answered} of {TOTAL} answered"
    );
    assert_eq!(router.epoch(), 2, "two promotions, two epoch flips");
}

/// A full rolling restart under load: each node is drained, its final
/// archive ships into a brand-new process, the routing epoch flips with
/// the differential-twin proof, and gated requests retry (exactly-once
/// safe) after promotion. The restarted fleet must end bit-identical,
/// node for node, to a control fleet that was never touched.
#[test]
fn rolling_restart_is_bit_identical_to_an_unrestarted_control_fleet() {
    const WARMUP_ROUNDS: u64 = 18;
    const ROUNDS_PER_RESTART: u64 = 5;
    const COOLDOWN_ROUNDS: u64 = 8;

    let control_fleet = Fleet::start("control", 3);
    let mut subject_fleet = Fleet::start("subject", 3);
    let control = Router::new(&control_fleet.addrs(), RouterConfig::default()).expect("control");
    let subject = Router::new(&subject_fleet.addrs(), RouterConfig::default()).expect("subject");
    let ips = soak_ips();
    let per_round = ips.len() as u64;

    // Both fleets see the identical request stream; the subject's
    // gated requests are retried in arrival order, so every per-IP
    // sequence — the only state a shard has — matches the control's.
    let mut sent = 0u64;
    let mut drive_round = |draining: Option<usize>, queue: &mut Vec<Request>| {
        let start = sent;
        for r in start..start + per_round {
            let request = request_at(&ips, r);
            control
                .call(request, Some(Duration::from_secs(5)))
                .expect("control fleet is never disturbed");
            match (draining, subject.call(request, Some(Duration::from_secs(5)))) {
                (_, Ok(_)) => {}
                (Some(d), Err(ClusterError::Migrating { node })) => {
                    assert_eq!(node, d);
                    queue.push(request);
                }
                (_, Err(e)) => panic!("rolling restart dropped a request: {e}"),
            }
            sent += 1;
        }
    };

    for _ in 0..WARMUP_ROUNDS {
        drive_round(None, &mut Vec::new());
    }

    // The rolling restart: one node at a time, traffic never pausing.
    for node in 0..3 {
        let final_archive = subject.drain_node(node).expect("drain");
        let mut gated_requests = Vec::new();
        for _ in 0..ROUNDS_PER_RESTART {
            drive_round(Some(node), &mut gated_requests);
        }
        assert!(
            !gated_requests.is_empty(),
            "a third of the key space must hit the draining node"
        );

        let addr = subject_fleet.respawn_restored(node, "restart", &final_archive);
        let epoch = subject
            .promote(node, addr, Some(&final_archive))
            .expect("differential twin proves zero drift");
        assert_eq!(epoch, node as u64 + 1);

        // Migration errors are exactly-once safe: the node never saw
        // the request, so the retry cannot double-train.
        for request in gated_requests {
            subject
                .call(request, Some(Duration::from_secs(5)))
                .expect("replay after promotion");
        }
    }

    for _ in 0..COOLDOWN_ROUNDS {
        drive_round(None, &mut Vec::new());
    }

    // Exact accounting on both sides: the control answered everything
    // first try; the subject answered everything too, with its gated
    // attempts attributed to failover and balanced in the ledger.
    let c = control.accounting();
    let s = subject.accounting();
    assert!(c.balances() && s.balances());
    assert_eq!(c.answered, sent);
    assert_eq!(s.answered, sent, "every request is eventually answered once");
    assert_eq!(s.failover_attributed, s.accepted - sent, "retries account for the gap");

    // The capstone: node for node, the restarted fleet's live state is
    // bit-identical to the control's.
    for node in 0..3 {
        let pull = |addr: SocketAddr| {
            TcpClient::connect(addr)
                .expect("connect for final pull")
                .pull_snapshot()
                .expect("final snapshot pull")
        };
        let control_bytes = pull(control_fleet.addr(node));
        let subject_bytes = pull(subject_fleet.addr(node));
        assert_eq!(
            control_bytes, subject_bytes,
            "node {node} diverged across the rolling restart"
        );
    }
}
