//! # cap-harness — experiment harness for the CAP reproduction
//!
//! Regenerates every table and figure of *Correlated Load-Address
//! Predictors* (ISCA 1999) from the synthetic trace catalog
//! ([`cap_trace::suites`]), the predictors ([`cap_predictor`]), and the
//! timing substrate ([`cap_uarch`]).
//!
//! Each figure lives in [`experiments`]; the `repro` binary runs them at
//! full scale:
//!
//! ```text
//! cargo run --release -p cap-harness --bin repro -- all
//! cargo run --release -p cap-harness --bin repro -- fig5
//! cargo run --release -p cap-harness --bin repro -- fig5 --quick
//! ```
//!
//! ## Programmatic use
//!
//! ```
//! use cap_harness::experiments::fig5;
//! use cap_harness::runner::Scale;
//!
//! let (data, report) = fig5::run(&Scale::tiny());
//! println!("{report}");
//! assert!(data.hybrid().overall.prediction_rate() > 0.3);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod checkpoint;
pub mod experiments;
pub mod json;
pub mod runner;
pub mod supervisor;
pub mod table;

/// Registry metric names recorded by the supervisor when an
/// [`cap_obs::Obs`] is attached via
/// [`supervisor::SupervisorConfig`]`::obs`.
pub mod names {
    /// Checkpoint encode time, microseconds (histogram).
    pub const CKPT_ENCODE_US: &str = "harness.checkpoint.encode_us";
    /// Checkpoint decode time on resume, microseconds (histogram).
    pub const CKPT_DECODE_US: &str = "harness.checkpoint.decode_us";
    /// Checkpoints published by this process.
    pub const CKPT_WRITTEN: &str = "harness.checkpoint.written";
    /// Extra attempts spent in transient-I/O retry loops (first tries
    /// are free; only re-tries count).
    pub const RETRY_ATTEMPTS: &str = "harness.retry.attempts";
}

pub use experiments::ExperimentReport;
pub use runner::{PredictorFactory, Scale};
