//! # cap-harness — experiment harness for the CAP reproduction
//!
//! Regenerates every table and figure of *Correlated Load-Address
//! Predictors* (ISCA 1999) from the synthetic trace catalog
//! ([`cap_trace::suites`]), the predictors ([`cap_predictor`]), and the
//! timing substrate ([`cap_uarch`]).
//!
//! Each figure lives in [`experiments`]; the `repro` binary runs them at
//! full scale:
//!
//! ```text
//! cargo run --release -p cap-harness --bin repro -- all
//! cargo run --release -p cap-harness --bin repro -- fig5
//! cargo run --release -p cap-harness --bin repro -- fig5 --quick
//! ```
//!
//! ## Programmatic use
//!
//! ```
//! use cap_harness::experiments::fig5;
//! use cap_harness::runner::Scale;
//!
//! let (data, report) = fig5::run(&Scale::tiny());
//! println!("{report}");
//! assert!(data.hybrid().overall.prediction_rate() > 0.3);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod checkpoint;
pub mod experiments;
pub mod json;
pub mod runner;
pub mod supervisor;
pub mod table;

/// Registry metric names recorded by the supervisor when an
/// [`cap_obs::Obs`] is attached via
/// [`supervisor::SupervisorConfig`]`::obs`.
pub mod names {
    /// Checkpoint encode time, microseconds (histogram).
    pub const CKPT_ENCODE_US: &str = "harness.checkpoint.encode_us";
    /// Checkpoint decode time on resume, microseconds (histogram).
    pub const CKPT_DECODE_US: &str = "harness.checkpoint.decode_us";
    /// Checkpoints published by this process.
    pub const CKPT_WRITTEN: &str = "harness.checkpoint.written";
    /// Extra attempts spent in transient-I/O retry loops (first tries
    /// are free; only re-tries count).
    pub const RETRY_ATTEMPTS: &str = "harness.retry.attempts";
    /// Directory fsyncs that failed after a checkpoint publish or a
    /// rotation delete. Non-fatal (not every filesystem can sync a
    /// directory) but each one is a durability gap: the rename/delete may
    /// not survive a crash.
    pub const CKPT_DIR_SYNC_FAILED: &str = "harness.ckpt.dir_sync_failed";
    /// Rotations whose per-file deletes hit at least one error (retention
    /// continued best-effort across the remaining files).
    pub const CKPT_ROTATE_FAILED: &str = "harness.ckpt.rotate_failed";
    /// Delta-journal records appended by this process.
    pub const JOURNAL_APPENDED: &str = "harness.journal.appended";
    /// Delta-journal flushes (append + fsync batches) by this process.
    pub const JOURNAL_FLUSHES: &str = "harness.journal.flushes";
    /// Delta-journal records replayed on resume.
    pub const JOURNAL_REPLAYED: &str = "harness.journal.replayed";
    /// Journals found with a torn tail on resume (the valid prefix was
    /// replayed; the tail was dropped and the file rewritten clean).
    pub const JOURNAL_TORN_TAILS: &str = "harness.journal.torn_tails";
}

pub use experiments::ExperimentReport;
pub use runner::{PredictorFactory, Scale};
