//! The supervised resumable runner.
//!
//! [`run`] drives one predictor over one trace file event-by-event
//! (through [`cap_trace::cursor::TraceCursor`]), periodically publishing
//! crash-consistent checkpoints (see [`crate::checkpoint`]) that capture
//! *everything* the run depends on — predictor tables, control-flow state,
//! statistics, the supervisor's PRNG, and the exact byte position in the
//! trace — so a run killed at an arbitrary event and resumed from its
//! latest checkpoint finishes with **bit-identical** final metrics.
//!
//! Between checkpoints the supervisor can append a **delta journal**
//! (`journal_flush_every` > 0): every applied event is framed as a CRC'd
//! record (see [`cap_snapshot::journal`]) and fsync'd every
//! `journal_flush_every` events, shrinking the recovery loss bound from
//! the checkpoint interval to the flush interval. On resume the journal
//! of the chosen checkpoint is replayed through the same per-event step
//! function as the live loop — including the chaos stream, which draws
//! from the checkpointed PRNG — so a journal-replayed run stays
//! bit-identical to an uninterrupted twin.
//!
//! The supervisor also owns the operational concerns around that loop:
//! retry-with-backoff on transient trace I/O ([`with_retry`]), optional
//! chaos injection into the live predictor (`chaos_every`, drawing from
//! the checkpointed PRNG so even chaotic runs resume deterministically),
//! and a `kill_after` self-destruct used by the differential
//! kill-and-resume tests. Every durability-layer disk touch goes
//! through the [`Vfs`] in [`SupervisorConfig::vfs`], so the storage
//! chaos suite can intercept each one.

use crate::checkpoint::{
    journal_file_name, recover_latest_with, rotate_checkpoints_with, write_checkpoint_with,
};
use crate::names;
use cap_faults::fs::{RealVfs, Vfs};
use cap_faults::plan::FaultPlan;
use cap_faults::target::FaultTarget;
use cap_predictor::cap::{CapConfig, CapPredictor};
use cap_predictor::drive::ControlState;
use cap_predictor::hybrid::{HybridConfig, HybridPredictor};
use cap_predictor::load_buffer::LoadBufferConfig;
use cap_predictor::metrics::PredictorStats;
use cap_predictor::stride::{StrideParams, StridePredictor};
use cap_predictor::types::{AddressPredictor, LoadContext, Prediction};
use cap_obs::{Classify, ErrorClass, Obs};
use cap_rand::{rngs::StdRng, SeedableRng};
use cap_snapshot::{
    crc32, encode_journal_header, encode_journal_record,
    journal::{JOURNAL_HEADER_LEN, JOURNAL_RECORD_OVERHEAD},
    JournalReplay, Restorable, SectionReader, SectionWriter, Snapshot, SnapshotArchive,
    SnapshotBuilder, SnapshotError,
};
use cap_trace::cursor::{CursorPos, TraceCursor};
use cap_trace::io::{event_line, parse_event_line, ParseTraceError};
use cap_trace::TraceEvent;
use std::fmt;
use std::fs::File;
use std::io::{self, Read};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// Which predictor the supervisor drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorKind {
    /// Stride-only baseline (§3.2).
    Stride,
    /// Pure CAP (§3.3).
    Cap,
    /// The paper's hybrid (§3.5).
    Hybrid,
}

impl PredictorKind {
    /// The CLI/JSON name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PredictorKind::Stride => "stride",
            PredictorKind::Cap => "cap",
            PredictorKind::Hybrid => "hybrid",
        }
    }

    /// Parses a CLI name.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "stride" => Some(PredictorKind::Stride),
            "cap" => Some(PredictorKind::Cap),
            "hybrid" => Some(PredictorKind::Hybrid),
            _ => None,
        }
    }

    fn tag(self) -> u8 {
        match self {
            PredictorKind::Stride => 0,
            PredictorKind::Cap => 1,
            PredictorKind::Hybrid => 2,
        }
    }

    fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(PredictorKind::Stride),
            1 => Some(PredictorKind::Cap),
            2 => Some(PredictorKind::Hybrid),
            _ => None,
        }
    }
}

/// A predictor of any kind, with paper-default configuration — the
/// supervisor's runtime dispatch over the three predictor types (the
/// `AddressPredictor + Snapshot + FaultTarget` combination is not
/// dyn-compatible, so an enum carries it instead).
#[derive(Debug)]
pub enum AnyPredictor {
    /// Stride-only baseline.
    Stride(StridePredictor),
    /// Pure CAP.
    Cap(CapPredictor),
    /// Stride + CAP hybrid.
    Hybrid(HybridPredictor),
}

impl AnyPredictor {
    /// A fresh paper-default predictor of the given kind.
    #[must_use]
    pub fn new(kind: PredictorKind) -> Self {
        match kind {
            PredictorKind::Stride => AnyPredictor::Stride(StridePredictor::new(
                LoadBufferConfig::paper_default(),
                StrideParams::paper_default(),
            )),
            PredictorKind::Cap => AnyPredictor::Cap(CapPredictor::new(CapConfig::paper_default())),
            PredictorKind::Hybrid => {
                AnyPredictor::Hybrid(HybridPredictor::new(HybridConfig::paper_default()))
            }
        }
    }

    /// The kind of the wrapped predictor.
    #[must_use]
    pub fn kind(&self) -> PredictorKind {
        match self {
            AnyPredictor::Stride(_) => PredictorKind::Stride,
            AnyPredictor::Cap(_) => PredictorKind::Cap,
            AnyPredictor::Hybrid(_) => PredictorKind::Hybrid,
        }
    }

    /// Dispatches [`AddressPredictor::predict`].
    pub fn predict(&mut self, ctx: &LoadContext) -> Prediction {
        match self {
            AnyPredictor::Stride(p) => p.predict(ctx),
            AnyPredictor::Cap(p) => p.predict(ctx),
            AnyPredictor::Hybrid(p) => p.predict(ctx),
        }
    }

    /// Dispatches [`AddressPredictor::update`].
    pub fn update(&mut self, ctx: &LoadContext, actual: u64, pred: &Prediction) {
        match self {
            AnyPredictor::Stride(p) => p.update(ctx, actual, pred),
            AnyPredictor::Cap(p) => p.update(ctx, actual, pred),
            AnyPredictor::Hybrid(p) => p.update(ctx, actual, pred),
        }
    }

    /// The chaos-injection surface of the wrapped predictor.
    pub fn as_fault_target(&mut self) -> &mut dyn FaultTarget {
        match self {
            AnyPredictor::Stride(p) => p,
            AnyPredictor::Cap(p) => p,
            AnyPredictor::Hybrid(p) => p,
        }
    }
}

impl Snapshot for AnyPredictor {
    fn write_state(&self, w: &mut SectionWriter) {
        w.put_u8(self.kind().tag());
        match self {
            AnyPredictor::Stride(p) => p.write_state(w),
            AnyPredictor::Cap(p) => p.write_state(w),
            AnyPredictor::Hybrid(p) => p.write_state(w),
        }
    }
}

impl Restorable for AnyPredictor {
    fn read_state(r: &mut SectionReader<'_>) -> Result<Self, SnapshotError> {
        let tag = r.take_u8("predictor kind tag")?;
        match PredictorKind::from_tag(tag) {
            Some(PredictorKind::Stride) => Ok(AnyPredictor::Stride(StridePredictor::read_state(r)?)),
            Some(PredictorKind::Cap) => Ok(AnyPredictor::Cap(CapPredictor::read_state(r)?)),
            Some(PredictorKind::Hybrid) => Ok(AnyPredictor::Hybrid(HybridPredictor::read_state(r)?)),
            None => Err(r.bad_value(format!("unknown predictor kind tag {tag}"))),
        }
    }
}

/// Identity of a trace file — length plus a CRC of its head — recorded in
/// every checkpoint so a resume against the wrong (or rewritten) trace is
/// refused instead of silently producing garbage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceId {
    /// Total file length in bytes.
    pub len: u64,
    /// CRC-32 of the first 4 KiB (or the whole file if shorter).
    pub head_crc: u32,
}

/// Computes the [`TraceId`] of a trace file.
///
/// # Errors
///
/// Propagates open/read failures.
pub fn trace_identity(path: &Path) -> io::Result<TraceId> {
    let mut f = File::open(path)?;
    let len = f.metadata()?.len();
    let mut head = vec![0u8; 4096.min(len) as usize];
    f.read_exact(&mut head)?;
    Ok(TraceId {
        len,
        head_crc: crc32(&head),
    })
}

/// Retry schedule for transient I/O: `attempts` tries total, sleeping
/// `base_delay * 2^i` between try `i` and try `i+1`, and never spending
/// more than `max_elapsed` wall-clock on the whole loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (>= 1) before the last error is surfaced.
    pub attempts: u32,
    /// Backoff base; doubles after every failed attempt.
    pub base_delay: Duration,
    /// Total-elapsed deadline across all attempts and backoff sleeps.
    /// The loop never *starts* a sleep that would cross this line, so a
    /// generous `attempts` cannot quietly turn into an unbounded stall
    /// (exponential backoff reaches minutes by attempt ten). `None`
    /// bounds the loop by attempt count alone.
    pub max_elapsed: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts: 4,
            base_delay: Duration::from_millis(5),
            max_elapsed: Some(Duration::from_secs(30)),
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry number `attempt + 1` (0-based).
    #[must_use]
    pub fn backoff(&self, attempt: u32) -> Duration {
        self.base_delay * 2u32.saturating_pow(attempt.min(16))
    }
}

/// How a [`with_retry`] loop ultimately failed.
#[derive(Debug, PartialEq, Eq)]
pub enum RetryError<E> {
    /// Attempts ran out, or the error was not transient: the last
    /// error, unchanged.
    Exhausted(E),
    /// The total-elapsed deadline would have been crossed before the
    /// next attempt; retrying stopped with time still charged to the
    /// attempts made.
    TimedOut {
        /// Wall-clock spent in the loop when it gave up.
        elapsed: Duration,
        /// Attempts actually made.
        attempts: u32,
        /// The last error observed.
        last: E,
    },
}

impl<E: fmt::Display> fmt::Display for RetryError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RetryError::Exhausted(e) => write!(f, "retries exhausted: {e}"),
            RetryError::TimedOut {
                elapsed,
                attempts,
                last,
            } => write!(
                f,
                "retry deadline exceeded after {attempts} attempts in {elapsed:.3?}: {last}"
            ),
        }
    }
}

impl<E: fmt::Display + fmt::Debug> std::error::Error for RetryError<E> {}

/// A retry wrapper fails the way its final underlying error fails —
/// hitting the elapsed deadline doesn't change what kept going wrong.
impl<E: Classify> Classify for RetryError<E> {
    fn error_class(&self) -> ErrorClass {
        match self {
            RetryError::Exhausted(e) => e.error_class(),
            RetryError::TimedOut { last, .. } => last.error_class(),
        }
    }
}

/// Runs `op` under `policy`, retrying (with exponential backoff) only
/// while `is_transient` says the error is worth retrying, and only while
/// the policy's total-elapsed deadline holds.
///
/// # Errors
///
/// [`RetryError::Exhausted`] with the last error once attempts run out
/// or the error is not transient; [`RetryError::TimedOut`] when the
/// next backoff sleep would cross `max_elapsed`.
pub fn with_retry<T, E, F, P>(
    policy: &RetryPolicy,
    is_transient: P,
    mut op: F,
) -> Result<T, RetryError<E>>
where
    F: FnMut() -> Result<T, E>,
    P: Fn(&E) -> bool,
{
    let start = std::time::Instant::now();
    let mut attempt = 0u32;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if attempt + 1 < policy.attempts.max(1) && is_transient(&e) => {
                let sleep = policy.backoff(attempt);
                if let Some(limit) = policy.max_elapsed {
                    let elapsed = start.elapsed();
                    if elapsed + sleep > limit {
                        return Err(RetryError::TimedOut {
                            elapsed,
                            attempts: attempt + 1,
                            last: e,
                        });
                    }
                }
                std::thread::sleep(sleep);
                attempt += 1;
            }
            Err(e) => return Err(RetryError::Exhausted(e)),
        }
    }
}

/// [`with_retry`], but counts the *extra* attempts (re-tries beyond the
/// first call) into [`names::RETRY_ATTEMPTS`]. First tries are free —
/// the counter stays untouched on the happy path, so a healthy run
/// shows no retry activity at all.
fn with_retry_observed<T, E, F, P>(
    obs: &Obs,
    policy: &RetryPolicy,
    is_transient: P,
    mut op: F,
) -> Result<T, RetryError<E>>
where
    F: FnMut() -> Result<T, E>,
    P: Fn(&E) -> bool,
{
    let mut calls = 0u64;
    let result = with_retry(policy, is_transient, || {
        calls += 1;
        op()
    });
    if calls > 1 {
        obs.count(names::RETRY_ATTEMPTS, calls - 1);
    }
    result
}

/// How (and whether) a run resumes from a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Resume {
    /// Start fresh, ignoring any checkpoints on disk.
    No,
    /// Recover the newest valid checkpoint in the checkpoint directory
    /// (fresh start if there is none).
    Auto,
    /// Resume from this specific checkpoint file.
    From(PathBuf),
}

/// Everything the supervisor needs for one run.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// The trace file to drive.
    pub trace: PathBuf,
    /// Which predictor to run.
    pub kind: PredictorKind,
    /// Seed for the supervisor's PRNG (chaos stream).
    pub seed: u64,
    /// Where checkpoints live; `None` disables checkpointing and `Auto`
    /// resume.
    pub checkpoint_dir: Option<PathBuf>,
    /// Publish a checkpoint every this many trace events (0 = never).
    pub checkpoint_every: u64,
    /// Append-and-fsync the delta journal every this many trace events
    /// (0 = no journal). Requires a checkpoint directory; shrinks the
    /// recovery loss bound from `checkpoint_every` to this interval.
    pub journal_flush_every: u64,
    /// How many checkpoints to retain after rotation.
    pub keep: usize,
    /// Resume mode.
    pub resume: Resume,
    /// Abort (cleanly, from the caller's perspective — the CLI turns this
    /// into a hard `exit`) after this many trace events, simulating a
    /// crash for the differential tests.
    pub kill_after: Option<u64>,
    /// Inject one planned fault into the live predictor every this many
    /// trace events (0 = never). Draws from the checkpointed PRNG.
    pub chaos_every: u64,
    /// Retry schedule for transient trace/checkpoint I/O.
    pub retry: RetryPolicy,
    /// Telemetry handle; the supervisor records checkpoint
    /// encode/decode timings, checkpoints written, retry attempts, and
    /// the predictor's hit/miss counters through it. Never captured in
    /// checkpoints — resumed runs use whatever the resuming config
    /// carries. Defaults to off ([`Obs::off`]), which costs one branch
    /// per record site.
    pub obs: Obs,
    /// The filesystem every checkpoint/journal disk touch goes through.
    /// Defaults to the passthrough [`RealVfs`]; the storage chaos suite
    /// passes a [`cap_faults::fs::ChaosVfs`] to intercept each
    /// operation. Trace *reads* are not routed here — the trace is the
    /// run's immutable input, not state this layer is responsible for
    /// keeping durable.
    pub vfs: Arc<dyn Vfs>,
}

impl SupervisorConfig {
    /// A minimal config: no checkpoints, no chaos, no kill.
    #[must_use]
    pub fn new(trace: impl Into<PathBuf>, kind: PredictorKind) -> Self {
        Self {
            trace: trace.into(),
            kind,
            seed: 0x0CA9_5EED,
            checkpoint_dir: None,
            checkpoint_every: 0,
            journal_flush_every: 0,
            keep: 3,
            resume: Resume::No,
            kill_after: None,
            chaos_every: 0,
            retry: RetryPolicy::default(),
            obs: Obs::off(),
            vfs: Arc::new(RealVfs),
        }
    }
}

/// What a supervised run produced.
#[derive(Debug)]
pub struct RunOutcome {
    /// Final prediction statistics.
    pub stats: PredictorStats,
    /// Trace events consumed in total (including the pre-resume prefix).
    pub events: u64,
    /// Checkpoints published by *this* process.
    pub checkpoints_written: u64,
    /// The checkpoint this run resumed from, if any.
    pub resumed_from: Option<PathBuf>,
    /// Files recovery swept up (tmp orphans, invalid checkpoints).
    pub recovery_removed: Vec<PathBuf>,
    /// Faults chaos injection actually applied.
    pub faults_applied: u64,
    /// Delta-journal records this process appended *and* flushed (records
    /// still buffered at a kill are lost by design — that is the loss
    /// bound).
    pub journal_appended: u64,
    /// Delta-journal records replayed on resume to advance past the
    /// resumed checkpoint.
    pub journal_replayed: u64,
    /// True when the run stopped at `kill_after` rather than end of trace.
    pub killed: bool,
}

/// Everything that can go wrong in a supervised run.
#[derive(Debug)]
pub enum SupervisorError {
    /// Filesystem failure (trace open, checkpoint write, recovery).
    Io(io::Error),
    /// The trace stream failed to parse.
    Trace(ParseTraceError),
    /// A checkpoint failed to decode.
    Snapshot(SnapshotError),
    /// The checkpoint is valid but belongs to a different run (wrong
    /// predictor kind, seed, or trace identity) — or the config is
    /// self-contradictory.
    Mismatch(String),
    /// A transient-I/O retry loop hit its total-elapsed deadline
    /// ([`RetryPolicy::max_elapsed`]) while the underlying error kept
    /// recurring.
    RetryTimeout {
        /// Wall-clock spent retrying.
        elapsed: Duration,
        /// Attempts actually made.
        attempts: u32,
        /// The final underlying error.
        last: Box<SupervisorError>,
    },
}

impl fmt::Display for SupervisorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SupervisorError::Io(e) => write!(f, "i/o error: {e}"),
            SupervisorError::Trace(e) => write!(f, "trace error: {e}"),
            SupervisorError::Snapshot(e) => write!(f, "checkpoint error: {e}"),
            SupervisorError::Mismatch(why) => write!(f, "checkpoint mismatch: {why}"),
            SupervisorError::RetryTimeout {
                elapsed,
                attempts,
                last,
            } => write!(
                f,
                "gave up retrying after {attempts} attempts in {elapsed:.3?}: {last}"
            ),
        }
    }
}

impl std::error::Error for SupervisorError {}

impl Classify for SupervisorError {
    fn error_class(&self) -> ErrorClass {
        match self {
            // Filesystem weather: the retry loops already treat it as
            // worth retrying.
            SupervisorError::Io(_) => ErrorClass::Transient,
            // A trace that failed on I/O (retries exhausted) is still
            // environment weather; malformed trace bytes and
            // undecodable checkpoints fail the same way on every read.
            SupervisorError::Trace(ParseTraceError::Io(_)) => ErrorClass::Transient,
            SupervisorError::Trace(_) | SupervisorError::Snapshot(_) => ErrorClass::Corrupt,
            // A *valid* checkpoint for the wrong run: deterministic
            // operator error, not damage.
            SupervisorError::Mismatch(_) => ErrorClass::Permanent,
            // The deadline bounded a recurring transient; more time (or
            // a fixed disk) could still succeed.
            SupervisorError::RetryTimeout { .. } => ErrorClass::Transient,
        }
    }
}

impl From<io::Error> for SupervisorError {
    fn from(e: io::Error) -> Self {
        SupervisorError::Io(e)
    }
}

impl From<ParseTraceError> for SupervisorError {
    fn from(e: ParseTraceError) -> Self {
        SupervisorError::Trace(e)
    }
}

impl From<SnapshotError> for SupervisorError {
    fn from(e: SnapshotError) -> Self {
        SupervisorError::Snapshot(e)
    }
}

impl<E> From<RetryError<E>> for SupervisorError
where
    SupervisorError: From<E>,
{
    fn from(e: RetryError<E>) -> Self {
        match e {
            RetryError::Exhausted(e) => e.into(),
            RetryError::TimedOut {
                elapsed,
                attempts,
                last,
            } => SupervisorError::RetryTimeout {
                elapsed,
                attempts,
                last: Box::new(last.into()),
            },
        }
    }
}

/// The live state a checkpoint must capture exactly.
struct RunState {
    predictor: AnyPredictor,
    control: ControlState,
    stats: PredictorStats,
    rng: StdRng,
    pos: CursorPos,
}

impl RunState {
    fn fresh(config: &SupervisorConfig) -> Self {
        Self {
            predictor: AnyPredictor::new(config.kind),
            control: ControlState::default(),
            stats: PredictorStats::new(),
            rng: StdRng::seed_from_u64(config.seed),
            pos: CursorPos::default(),
        }
    }
}

const SEC_META: &str = "meta";
const SEC_PREDICTOR: &str = "predictor";
const SEC_CONTROL: &str = "control";
const SEC_STATS: &str = "stats";
const SEC_RNG: &str = "rng";
const SEC_CURSOR: &str = "cursor";

/// Serializes a full checkpoint archive for the given live state.
fn encode_checkpoint(config: &SupervisorConfig, identity: TraceId, state: &RunState) -> Vec<u8> {
    let mut meta = SectionWriter::new();
    meta.put_u8(config.kind.tag());
    meta.put_u64(config.seed);
    meta.put_u64(identity.len);
    meta.put_u32(identity.head_crc);

    let mut b = SnapshotBuilder::new();
    b.add_raw(SEC_META, meta.into_bytes());
    b.add(SEC_PREDICTOR, &state.predictor);
    b.add(SEC_CONTROL, &state.control);
    b.add(SEC_STATS, &state.stats);
    b.add(SEC_RNG, &state.rng);
    b.add(SEC_CURSOR, &state.pos);
    b.finish()
}

/// Decodes a checkpoint archive, refusing one taken by a different run.
fn decode_checkpoint(
    bytes: &[u8],
    config: &SupervisorConfig,
    identity: TraceId,
) -> Result<RunState, SupervisorError> {
    let archive = SnapshotArchive::parse(bytes)?;
    let meta_bytes = archive.section(SEC_META)?;
    let mut meta = SectionReader::new(meta_bytes, SEC_META);
    let tag = meta.take_u8("predictor kind tag")?;
    let kind = PredictorKind::from_tag(tag)
        .ok_or_else(|| meta.bad_value(format!("unknown predictor kind tag {tag}")))?;
    let seed = meta.take_u64("supervisor seed")?;
    let len = meta.take_u64("trace length")?;
    let head_crc = meta.take_u32("trace head crc")?;
    meta.finish()?;

    if kind != config.kind {
        return Err(SupervisorError::Mismatch(format!(
            "checkpoint holds a {} predictor, run wants {}",
            kind.name(),
            config.kind.name()
        )));
    }
    if seed != config.seed {
        return Err(SupervisorError::Mismatch(format!(
            "checkpoint seed {seed:#x} != run seed {:#x}",
            config.seed
        )));
    }
    let ckpt_id = TraceId { len, head_crc };
    if ckpt_id != identity {
        return Err(SupervisorError::Mismatch(format!(
            "checkpoint was taken against a different trace \
             (len {len}, head crc {head_crc:#010x}; file has len {}, head crc {:#010x})",
            identity.len, identity.head_crc
        )));
    }

    Ok(RunState {
        predictor: archive.restore(SEC_PREDICTOR)?,
        control: archive.restore(SEC_CONTROL)?,
        stats: archive.restore(SEC_STATS)?,
        rng: archive.restore(SEC_RNG)?,
        pos: archive.restore(SEC_CURSOR)?,
    })
}

/// [`decode_checkpoint`] with its wall-clock cost recorded into
/// [`names::CKPT_DECODE_US`] (timed only when telemetry is on, so the
/// disabled path never reads the clock).
fn decode_checkpoint_timed(
    bytes: &[u8],
    config: &SupervisorConfig,
    identity: TraceId,
) -> Result<RunState, SupervisorError> {
    let t0 = config.obs.enabled().then(std::time::Instant::now);
    let state = decode_checkpoint(bytes, config, identity)?;
    if let Some(t0) = t0 {
        config
            .obs
            .record(names::CKPT_DECODE_US, t0.elapsed().as_micros() as u64);
    }
    Ok(state)
}

/// Resolves the resume mode into an initial [`RunState`].
fn initial_state(
    config: &SupervisorConfig,
    identity: TraceId,
) -> Result<(RunState, Option<PathBuf>, Vec<PathBuf>), SupervisorError> {
    match &config.resume {
        Resume::No => Ok((RunState::fresh(config), None, Vec::new())),
        Resume::Auto => {
            let Some(dir) = &config.checkpoint_dir else {
                return Err(SupervisorError::Mismatch(
                    "resume=auto needs a checkpoint directory".to_owned(),
                ));
            };
            let recovery = recover_latest_with(config.vfs.as_ref(), dir)?;
            match recovery.chosen {
                Some((path, bytes)) => {
                    let state = decode_checkpoint_timed(&bytes, config, identity)?;
                    Ok((state, Some(path), recovery.removed))
                }
                None => Ok((RunState::fresh(config), None, recovery.removed)),
            }
        }
        Resume::From(path) => {
            let bytes = with_retry_observed(&config.obs, &config.retry, |_| true, || {
                config.vfs.read(path)
            })?;
            let state = decode_checkpoint_timed(&bytes, config, identity)?;
            Ok((state, Some(path.clone()), Vec::new()))
        }
    }
}

/// Applies one trace event to the live state — predictor step, control
/// update, stats, and the chaos tick. The **only** per-event step
/// function: the live loop and journal replay both route through it, so
/// a replayed event perturbs predictor tables, statistics, the RNG, and
/// the fault stream exactly as the original application did.
fn apply_event(
    state: &mut RunState,
    event: &TraceEvent,
    events: u64,
    config: &SupervisorConfig,
    chaos_plan: &FaultPlan,
    faults_applied: &mut u64,
) {
    match event {
        TraceEvent::Load(load) => {
            let ctx = LoadContext {
                ip: load.ip,
                offset: load.offset,
                ghr: state.control.ghr,
                path: state.control.path,
                pending: 0,
            };
            let pred = state.predictor.predict(&ctx);
            state.predictor.update(&ctx, load.addr, &pred);
            state.stats.record_with(&pred, load.addr, &config.obs);
        }
        TraceEvent::Branch(b) => state.control.on_branch(b.ip, b.taken, b.kind),
        TraceEvent::Store(_) | TraceEvent::Op(_) => {}
    }

    // Chaos strictly before checkpointing: the checkpoint then captures
    // the post-fault state and the advanced RNG, so resume replays the
    // remainder of the run exactly.
    if config.chaos_every > 0 && events.is_multiple_of(config.chaos_every) {
        let report = chaos_plan.inject_with(state.predictor.as_fault_target(), &mut state.rng);
        *faults_applied += report.applied as u64;
    }
}

const SEC_JOURNAL: &str = "journal";

/// One journal record: the cursor position *after* the event, plus the
/// event as its canonical trace line.
fn encode_journal_event(pos: CursorPos, event: &TraceEvent) -> Vec<u8> {
    let mut w = SectionWriter::new();
    w.put_u64(pos.byte_offset);
    w.put_u64(pos.line);
    w.put_u64(pos.events);
    let line = event_line(event);
    w.put_len(line.len());
    w.put_raw(line.as_bytes());
    encode_journal_record(&w.into_bytes())
}

fn decode_journal_event(payload: &[u8]) -> Result<(CursorPos, TraceEvent), SupervisorError> {
    let mut r = SectionReader::new(payload, SEC_JOURNAL);
    let pos = CursorPos {
        byte_offset: r.take_u64("journal byte offset")?,
        line: r.take_u64("journal line number")?,
        events: r.take_u64("journal event count")?,
    };
    let n = r.take_len(1, "journal event line length")?;
    let raw = r.take_raw(n, "journal event line")?;
    let text =
        std::str::from_utf8(raw).map_err(|_| r.bad_value("journal event line is not UTF-8"))?;
    r.finish()?;
    let event = parse_event_line(text, pos.line as usize)?;
    Ok((pos, event))
}

/// Creates (or truncates) the journal for checkpoint `base`: header
/// only, synced, with the new directory entry made durable.
fn init_journal(vfs: &dyn Vfs, dir: &Path, base: u64, obs: &Obs) -> io::Result<()> {
    vfs.create_dir_all(dir)?;
    let path = dir.join(journal_file_name(base));
    vfs.write_file(&path, &encode_journal_header(base))?;
    vfs.sync_file(&path)?;
    crate::checkpoint::sync_dir_observed(vfs, dir, obs);
    Ok(())
}

/// The supervisor's append side of the delta journal: records buffer in
/// memory and hit the disk (append + fsync) at each flush — the
/// recovery loss bound is exactly what this buffer holds when the
/// process dies.
struct JournalWriter {
    base: u64,
    pending: Vec<u8>,
    pending_records: u64,
    appended: u64,
}

impl JournalWriter {
    fn new(base: u64) -> Self {
        Self {
            base,
            pending: Vec::new(),
            pending_records: 0,
            appended: 0,
        }
    }

    fn buffer(&mut self, pos: CursorPos, event: &TraceEvent) {
        self.pending.extend_from_slice(&encode_journal_event(pos, event));
        self.pending_records += 1;
    }

    fn flush(&mut self, vfs: &dyn Vfs, dir: &Path, obs: &Obs) -> io::Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let path = dir.join(journal_file_name(self.base));
        vfs.append_file(&path, &self.pending)?;
        vfs.sync_file(&path)?;
        self.appended += self.pending_records;
        obs.count(names::JOURNAL_APPENDED, self.pending_records);
        obs.incr(names::JOURNAL_FLUSHES);
        self.pending.clear();
        self.pending_records = 0;
        Ok(())
    }

    /// A fresh checkpoint at `base` supersedes everything buffered:
    /// drop it and start the next journal file.
    fn restart(&mut self, vfs: &dyn Vfs, dir: &Path, base: u64, obs: &Obs) -> io::Result<()> {
        self.pending.clear();
        self.pending_records = 0;
        self.base = base;
        init_journal(vfs, dir, base, obs)
    }
}

/// Replays the delta journal of checkpoint `base` (if present) through
/// [`apply_event`], advancing `state` to the last journaled position,
/// and leaves a clean journal file behind — torn tails truncated,
/// missing or unusable files re-initialised — ready for appends.
fn replay_journal(
    vfs: &dyn Vfs,
    dir: &Path,
    base: u64,
    state: &mut RunState,
    config: &SupervisorConfig,
    chaos_plan: &FaultPlan,
    faults_applied: &mut u64,
) -> Result<u64, SupervisorError> {
    let path = dir.join(journal_file_name(base));
    let bytes = match vfs.read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            init_journal(vfs, dir, base, &config.obs)?;
            return Ok(0);
        }
        Err(e) => return Err(e.into()),
    };
    let replay = match JournalReplay::parse(&bytes) {
        Ok(r) if r.base_events == base => r,
        // A damaged header, or a base contradicting the file name:
        // nothing in the file can be trusted. Start it over — the
        // checkpoint itself is intact, so this only widens the loss
        // window back to the checkpoint interval for this one resume.
        Ok(_) | Err(_) => {
            config.obs.incr(names::JOURNAL_TORN_TAILS);
            init_journal(vfs, dir, base, &config.obs)?;
            return Ok(0);
        }
    };
    let mut replayed = 0u64;
    let mut clean_len = JOURNAL_HEADER_LEN;
    for payload in &replay.records {
        match decode_journal_event(payload) {
            Ok((pos, event)) => {
                apply_event(state, &event, pos.events, config, chaos_plan, faults_applied);
                state.pos = pos;
                replayed += 1;
                clean_len += JOURNAL_RECORD_OVERHEAD + payload.len();
            }
            // A CRC-valid frame whose payload doesn't decode ends the
            // trusted prefix exactly like a CRC failure would.
            Err(_) => break,
        }
    }
    if replay.torn.is_some() || clean_len < replay.valid_len {
        // Truncate to the replayed prefix so appends resume on a clean
        // record boundary.
        config.obs.incr(names::JOURNAL_TORN_TAILS);
        vfs.write_file(&path, &bytes[..clean_len])?;
        vfs.sync_file(&path)?;
    }
    if replayed > 0 {
        config.obs.count(names::JOURNAL_REPLAYED, replayed);
    }
    Ok(replayed)
}

/// Drives one supervised, checkpointed, resumable run to completion (or
/// to `kill_after`).
///
/// # Errors
///
/// [`SupervisorError`] on unreadable traces, malformed trace lines,
/// undecodable or mismatched checkpoints, exhausted I/O retries, or a
/// failed journal flush.
pub fn run(config: &SupervisorConfig) -> Result<RunOutcome, SupervisorError> {
    let vfs = config.vfs.as_ref();
    let journaling = config.journal_flush_every > 0;
    if journaling && config.checkpoint_dir.is_none() {
        return Err(SupervisorError::Mismatch(
            "journal_flush_every needs a checkpoint directory".to_owned(),
        ));
    }
    let identity = with_retry_observed(&config.obs, &config.retry, |_| true, || {
        trace_identity(&config.trace)
    })?;
    let (mut state, resumed_from, recovery_removed) = initial_state(config, identity)?;

    // One planned fault per chaos tick, drawn from the checkpointed RNG so
    // a resumed chaotic run replays the exact fault stream of an
    // uninterrupted one.
    let chaos_plan = FaultPlan::new(config.seed, 1);
    let mut checkpoints_written = 0u64;
    let mut faults_applied = 0u64;
    let mut journal_replayed = 0u64;

    // The journal applies on top of the state's checkpoint — which is
    // exactly where the cursor stands right now (0 for a fresh run).
    let mut journal = JournalWriter::new(state.pos.events);
    if journaling {
        let dir = config.checkpoint_dir.as_deref().expect("checked above");
        if matches!(config.resume, Resume::No) {
            // A fresh run must not inherit a previous run's journal.
            init_journal(vfs, dir, journal.base, &config.obs)?;
        } else {
            journal_replayed = replay_journal(
                vfs,
                dir,
                journal.base,
                &mut state,
                config,
                &chaos_plan,
                &mut faults_applied,
            )?;
        }
    }

    let mut cursor = with_retry_observed(&config.obs, &config.retry, |_| true, || {
        TraceCursor::open_at(&config.trace, state.pos)
    })?;

    loop {
        let next = with_retry_observed(
            &config.obs,
            &config.retry,
            |e| matches!(e, ParseTraceError::Io(_)),
            || cursor.next_event(),
        )?;
        let Some(event) = next else { break };

        let pos = cursor.position();
        let events = pos.events;
        apply_event(&mut state, &event, events, config, &chaos_plan, &mut faults_applied);

        if journaling {
            journal.buffer(pos, &event);
            if events % config.journal_flush_every == 0 {
                let dir = config.checkpoint_dir.as_deref().expect("checked above");
                journal.flush(vfs, dir, &config.obs)?;
            }
        }

        if config.checkpoint_every > 0 && events % config.checkpoint_every == 0 {
            if let Some(dir) = &config.checkpoint_dir {
                state.pos = pos;
                let t0 = config.obs.enabled().then(std::time::Instant::now);
                let bytes = encode_checkpoint(config, identity, &state);
                if let Some(t0) = t0 {
                    config
                        .obs
                        .record(names::CKPT_ENCODE_US, t0.elapsed().as_micros() as u64);
                }
                with_retry_observed(&config.obs, &config.retry, |_| true, || {
                    write_checkpoint_with(vfs, dir, events, &bytes, &config.obs)
                })?;
                let rotation = rotate_checkpoints_with(vfs, dir, config.keep, &config.obs)?;
                if let Some(e) = &rotation.first_error {
                    config.obs.incr(names::CKPT_ROTATE_FAILED);
                    if config.obs.enabled() {
                        eprintln!(
                            "{{\"event\":\"{}\",\"removed\":{},\"error\":{:?}}}",
                            names::CKPT_ROTATE_FAILED,
                            rotation.removed.len(),
                            e.to_string()
                        );
                    }
                }
                checkpoints_written += 1;
                config.obs.incr(names::CKPT_WRITTEN);
                if journaling {
                    journal.restart(vfs, dir, events, &config.obs)?;
                }
            }
        }

        if config.kill_after == Some(events) {
            return Ok(RunOutcome {
                stats: state.stats,
                events,
                checkpoints_written,
                resumed_from,
                recovery_removed,
                faults_applied,
                journal_appended: journal.appended,
                journal_replayed,
                killed: true,
            });
        }
    }

    // A clean exit owes the journal its tail: flush what's buffered so a
    // later resume (against a grown trace, say) starts loss-free.
    if journaling {
        let dir = config.checkpoint_dir.as_deref().expect("checked above");
        journal.flush(vfs, dir, &config.obs)?;
    }

    Ok(RunOutcome {
        stats: state.stats,
        events: cursor.position().events,
        checkpoints_written,
        resumed_from,
        recovery_removed,
        faults_applied,
        journal_appended: journal.appended,
        journal_replayed,
        killed: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cap_trace::io::write_trace;
    use cap_trace::suites::catalog;
    use std::fs;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "cap-supervisor-{tag}-{}",
            std::process::id()
        ));
        fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn write_temp_trace(dir: &Path, loads: usize) -> PathBuf {
        let trace = catalog()[1].generate(loads);
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &trace).expect("serialize");
        let path = dir.join("trace.txt");
        fs::write(&path, bytes).expect("write trace");
        path
    }

    fn assert_stats_eq(a: &PredictorStats, b: &PredictorStats) {
        assert_eq!(a.loads, b.loads);
        assert_eq!(a.predictions, b.predictions);
        assert_eq!(a.correct_predictions, b.correct_predictions);
        assert_eq!(a.spec_accesses, b.spec_accesses);
        assert_eq!(a.correct_spec, b.correct_spec);
        assert_eq!(a.both_predicted_spec, b.both_predicted_spec);
        assert_eq!(a.selector_states, b.selector_states);
        assert_eq!(a.miss_selections, b.miss_selections);
    }

    #[test]
    fn kill_and_resume_is_bit_identical() {
        let dir = temp_dir("resume");
        let trace = write_temp_trace(&dir, 6_000);

        // Reference: one uninterrupted run.
        let reference = run(&SupervisorConfig::new(&trace, PredictorKind::Hybrid)).unwrap();
        assert!(!reference.killed);
        assert!(reference.stats.loads > 0);

        // Killed run: checkpoints every 512 events, dies at 3_000.
        let ckpt_dir = dir.join("ckpts");
        let mut cfg = SupervisorConfig::new(&trace, PredictorKind::Hybrid);
        cfg.checkpoint_dir = Some(ckpt_dir.clone());
        cfg.checkpoint_every = 512;
        cfg.kill_after = Some(3_000);
        let killed = run(&cfg).unwrap();
        assert!(killed.killed);
        assert!(killed.checkpoints_written > 0);

        // Resumed run: picks up the newest checkpoint, finishes the trace.
        let mut cfg2 = SupervisorConfig::new(&trace, PredictorKind::Hybrid);
        cfg2.checkpoint_dir = Some(ckpt_dir);
        cfg2.checkpoint_every = 512;
        cfg2.resume = Resume::Auto;
        let resumed = run(&cfg2).unwrap();
        assert!(resumed.resumed_from.is_some());
        assert_eq!(resumed.events, reference.events);
        assert_stats_eq(&resumed.stats, &reference.stats);

        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chaotic_kill_and_resume_is_bit_identical() {
        let dir = temp_dir("chaos-resume");
        let trace = write_temp_trace(&dir, 5_000);

        let mut base = SupervisorConfig::new(&trace, PredictorKind::Hybrid);
        base.chaos_every = 97;
        base.seed = 0xD1CE;
        let reference = run(&base).unwrap();
        assert!(reference.faults_applied > 0, "chaos must land on a warm predictor");

        let ckpt_dir = dir.join("ckpts");
        let mut cfg = base.clone();
        cfg.checkpoint_dir = Some(ckpt_dir.clone());
        cfg.checkpoint_every = 300;
        cfg.kill_after = Some(2_500);
        assert!(run(&cfg).unwrap().killed);

        let mut cfg2 = base.clone();
        cfg2.checkpoint_dir = Some(ckpt_dir);
        cfg2.resume = Resume::Auto;
        let resumed = run(&cfg2).unwrap();
        assert_stats_eq(&resumed.stats, &reference.stats);
        // The resumed process replays the chaos stream from the checkpoint
        // onward (it overlaps the killed run between its last checkpoint
        // and the kill point, so the counts don't partition — only the
        // final state matters, and that is bit-identical above).
        assert!(resumed.faults_applied > 0);

        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_refuses_foreign_checkpoints() {
        let dir = temp_dir("mismatch");
        let trace = write_temp_trace(&dir, 2_000);
        let ckpt_dir = dir.join("ckpts");

        let mut cfg = SupervisorConfig::new(&trace, PredictorKind::Hybrid);
        cfg.checkpoint_dir = Some(ckpt_dir.clone());
        cfg.checkpoint_every = 500;
        run(&cfg).unwrap();

        // Wrong predictor kind.
        let mut wrong_kind = SupervisorConfig::new(&trace, PredictorKind::Stride);
        wrong_kind.checkpoint_dir = Some(ckpt_dir.clone());
        wrong_kind.resume = Resume::Auto;
        assert!(matches!(
            run(&wrong_kind).unwrap_err(),
            SupervisorError::Mismatch(_)
        ));

        // Wrong seed.
        let mut wrong_seed = SupervisorConfig::new(&trace, PredictorKind::Hybrid);
        wrong_seed.checkpoint_dir = Some(ckpt_dir.clone());
        wrong_seed.resume = Resume::Auto;
        wrong_seed.seed = 1;
        assert!(matches!(
            run(&wrong_seed).unwrap_err(),
            SupervisorError::Mismatch(_)
        ));

        // Different trace content (same length class not required — the
        // head CRC changes).
        let other = dir.join("other-trace.txt");
        fs::write(&other, fs::read(&trace).unwrap().split_off(10)).unwrap();
        let mut wrong_trace = SupervisorConfig::new(&other, PredictorKind::Hybrid);
        wrong_trace.checkpoint_dir = Some(ckpt_dir);
        wrong_trace.resume = Resume::Auto;
        assert!(matches!(
            run(&wrong_trace).unwrap_err(),
            SupervisorError::Mismatch(_)
        ));

        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn with_retry_respects_transience() {
        let policy = RetryPolicy {
            attempts: 3,
            base_delay: Duration::from_millis(0),
            max_elapsed: None,
        };
        let mut calls = 0;
        let result: Result<u32, _> = with_retry(&policy, |_| true, || {
            calls += 1;
            if calls < 3 { Err("transient") } else { Ok(7) }
        });
        assert_eq!(result, Ok(7));
        assert_eq!(calls, 3);

        let mut calls = 0;
        let result: Result<u32, _> = with_retry(&policy, |_| false, || {
            calls += 1;
            Err("fatal")
        });
        assert_eq!(result, Err(RetryError::Exhausted("fatal")));
        assert_eq!(calls, 1, "non-transient errors must not be retried");
    }

    #[test]
    fn with_retry_enforces_the_total_elapsed_deadline() {
        // Backoff doubles from 10ms; a 25ms budget admits the first
        // sleep (10ms) but never the second (20ms), so a permanently
        // failing op stops after two attempts — long before the 1000
        // the attempt budget would allow.
        let policy = RetryPolicy {
            attempts: 1_000,
            base_delay: Duration::from_millis(10),
            max_elapsed: Some(Duration::from_millis(25)),
        };
        let mut calls = 0u32;
        let start = std::time::Instant::now();
        let result: Result<u32, _> = with_retry(&policy, |_| true, || {
            calls += 1;
            Err("still down")
        });
        match result {
            Err(RetryError::TimedOut {
                elapsed,
                attempts,
                last,
            }) => {
                assert_eq!(last, "still down");
                assert_eq!(attempts, calls);
                assert!(attempts < 10, "deadline must beat the attempt budget");
                assert!(elapsed <= start.elapsed());
            }
            other => panic!("expected TimedOut, got {other:?}"),
        }
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "the loop returned promptly"
        );

        // The structured timeout converts into the supervisor's error
        // taxonomy with its accounting intact.
        let err: SupervisorError = RetryError::TimedOut {
            elapsed: Duration::from_millis(25),
            attempts: 2,
            last: io::Error::other("disk flaky"),
        }
        .into();
        match err {
            SupervisorError::RetryTimeout {
                attempts, last, ..
            } => {
                assert_eq!(attempts, 2);
                assert!(matches!(*last, SupervisorError::Io(_)));
            }
            other => panic!("expected RetryTimeout, got {other}"),
        }
    }

    #[test]
    fn telemetry_reconciles_with_the_run_outcome() {
        let dir = temp_dir("telemetry");
        let trace = write_temp_trace(&dir, 4_000);
        let ckpt_dir = dir.join("ckpts");

        // Uninterrupted instrumented run: the registry's pred.* counters
        // are views over the same arithmetic as PredictorStats.
        let registry = std::sync::Arc::new(cap_obs::Registry::new());
        let mut cfg = SupervisorConfig::new(&trace, PredictorKind::Hybrid);
        cfg.checkpoint_dir = Some(ckpt_dir.clone());
        cfg.checkpoint_every = 512;
        cfg.obs = registry.obs();
        let outcome = run(&cfg).unwrap();
        assert!(outcome.checkpoints_written > 0);

        let snap = registry.snapshot();
        assert_stats_eq(&PredictorStats::from_obs_snapshot(&snap), &outcome.stats);
        assert_eq!(
            snap.counter(names::CKPT_WRITTEN),
            Some(outcome.checkpoints_written)
        );
        let encode = snap.histogram(names::CKPT_ENCODE_US).expect("encode histogram");
        assert_eq!(encode.count, outcome.checkpoints_written);
        assert!(snap.histogram(names::CKPT_DECODE_US).is_none(), "no resume, no decode");
        assert_eq!(snap.counter(names::RETRY_ATTEMPTS), None, "healthy I/O never re-tries");

        // A resume decodes exactly one checkpoint, timed.
        let resume_registry = std::sync::Arc::new(cap_obs::Registry::new());
        let mut cfg2 = cfg.clone();
        cfg2.resume = Resume::Auto;
        cfg2.obs = resume_registry.obs();
        let resumed = run(&cfg2).unwrap();
        assert!(resumed.resumed_from.is_some());
        let snap2 = resume_registry.snapshot();
        let decode = snap2.histogram(names::CKPT_DECODE_US).expect("decode histogram");
        assert_eq!(decode.count, 1);

        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn supervisor_errors_classify_coherently() {
        let io_err = SupervisorError::Io(io::Error::other("disk"));
        assert_eq!(io_err.error_class(), ErrorClass::Transient);
        assert_eq!(
            SupervisorError::Mismatch("foreign".into()).error_class(),
            ErrorClass::Permanent
        );
        let timeout = SupervisorError::RetryTimeout {
            elapsed: Duration::from_millis(25),
            attempts: 2,
            last: Box::new(SupervisorError::Io(io::Error::other("flaky"))),
        };
        assert!(timeout.error_class().is_retryable());

        // RetryError delegates to whatever kept failing underneath.
        let exhausted: RetryError<io::Error> = RetryError::Exhausted(io::Error::other("x"));
        assert_eq!(exhausted.error_class(), ErrorClass::Transient);
    }

    #[test]
    fn predictor_kind_names_roundtrip() {
        for kind in [PredictorKind::Stride, PredictorKind::Cap, PredictorKind::Hybrid] {
            assert_eq!(PredictorKind::parse(kind.name()), Some(kind));
            assert_eq!(PredictorKind::from_tag(kind.tag()), Some(kind));
        }
        assert_eq!(PredictorKind::parse("nonsense"), None);
        assert_eq!(PredictorKind::from_tag(9), None);
    }
}
