//! Crash-consistent checkpoint files.
//!
//! A checkpoint is a [`cap_snapshot`] archive persisted under a
//! predictable name, `ckpt-{events:012}.capsnap`, so lexicographic order
//! *is* chronological order. Three disciplines make the directory safe to
//! crash into at any instruction:
//!
//! 1. **Atomic publication** — [`write_checkpoint`] writes to a `.tmp`
//!    sibling, `fsync`s it, and only then `rename`s it into place. A crash
//!    mid-write leaves a `.tmp` orphan, never a half-written `.capsnap`.
//! 2. **Bounded retention** — [`rotate_checkpoints`] prunes everything but
//!    the newest `keep` files after each successful write.
//! 3. **Skeptical recovery** — [`recover_latest`] walks newest-first,
//!    *parses* each candidate before trusting it (a torn or corrupted file
//!    fails its CRC and is deleted), and sweeps up `.tmp` orphans.

use cap_snapshot::SnapshotArchive;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Extension of a published checkpoint file.
pub const CHECKPOINT_EXT: &str = "capsnap";

const PREFIX: &str = "ckpt-";
const TMP_SUFFIX: &str = ".tmp";

/// The canonical file name for a checkpoint taken after `events` trace
/// events: zero-padded so lexicographic order matches event order.
#[must_use]
pub fn checkpoint_file_name(events: u64) -> String {
    format!("{PREFIX}{events:012}.{CHECKPOINT_EXT}")
}

/// Parses `ckpt-000000001234.capsnap` back to `1234`; `None` for anything
/// that is not a published checkpoint name.
#[must_use]
pub fn parse_checkpoint_name(name: &str) -> Option<u64> {
    let rest = name.strip_prefix(PREFIX)?;
    let digits = rest.strip_suffix(&format!(".{CHECKPOINT_EXT}"))?;
    if digits.len() != 12 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Atomically publishes `bytes` as the checkpoint for `events`: write to a
/// `.tmp` sibling, `sync_all`, then `rename` into place. Creates `dir` if
/// needed.
///
/// # Errors
///
/// Propagates the underlying filesystem failures; on error the final path
/// is untouched (at worst a `.tmp` orphan remains, which
/// [`recover_latest`] sweeps up).
pub fn write_checkpoint(dir: &Path, events: u64, bytes: &[u8]) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let final_path = dir.join(checkpoint_file_name(events));
    let tmp_path = dir.join(format!("{}{TMP_SUFFIX}", checkpoint_file_name(events)));
    {
        let mut f = File::create(&tmp_path)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp_path, &final_path)?;
    // Publishing the rename durably needs a directory fsync; best-effort,
    // since not every filesystem supports opening a directory for sync.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(final_path)
}

/// All published checkpoints in `dir`, oldest first, as
/// `(events, path)` pairs. A missing directory is just empty.
///
/// # Errors
///
/// Propagates directory-read failures.
pub fn list_checkpoints(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut found = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(found),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        if let Some(events) = name.to_str().and_then(parse_checkpoint_name) {
            found.push((events, entry.path()));
        }
    }
    found.sort();
    Ok(found)
}

/// Deletes all but the newest `keep` checkpoints; returns the removed
/// paths. `keep == 0` is treated as 1 (the newest always survives).
///
/// # Errors
///
/// Propagates directory-read and delete failures.
pub fn rotate_checkpoints(dir: &Path, keep: usize) -> io::Result<Vec<PathBuf>> {
    let all = list_checkpoints(dir)?;
    let keep = keep.max(1);
    let excess = all.len().saturating_sub(keep);
    let mut removed = Vec::with_capacity(excess);
    for (_, path) in all.into_iter().take(excess) {
        fs::remove_file(&path)?;
        removed.push(path);
    }
    Ok(removed)
}

/// What [`recover_latest`] found.
#[derive(Debug, Default)]
pub struct Recovery {
    /// The newest checkpoint that parses as a valid snapshot archive, with
    /// its bytes — `None` when no valid checkpoint exists.
    pub chosen: Option<(PathBuf, Vec<u8>)>,
    /// Files swept up during recovery: `.tmp` orphans from interrupted
    /// writes, and published checkpoints newer than `chosen` that failed
    /// to parse (torn, truncated, or corrupted).
    pub removed: Vec<PathBuf>,
}

/// Picks the newest *valid* checkpoint in `dir`, cleaning up the debris a
/// crash can leave behind: `.tmp` orphans are always deleted, and any
/// checkpoint newer than the chosen one that fails [`SnapshotArchive`]
/// validation (zero-length file, torn write, bit rot) is deleted too.
/// Older checkpoints are left for [`rotate_checkpoints`].
///
/// # Errors
///
/// Propagates directory-read and delete failures. An unreadable candidate
/// file is an error only if it cannot be `read` at all — parse failures
/// are part of normal recovery, not errors.
pub fn recover_latest(dir: &Path) -> io::Result<Recovery> {
    let mut recovery = Recovery::default();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(recovery),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let is_tmp = name
            .to_str()
            .is_some_and(|n| n.starts_with(PREFIX) && n.ends_with(TMP_SUFFIX));
        if is_tmp {
            fs::remove_file(entry.path())?;
            recovery.removed.push(entry.path());
        }
    }
    let mut candidates = list_checkpoints(dir)?;
    candidates.reverse(); // newest first
    for (_, path) in candidates {
        let bytes = fs::read(&path)?;
        if SnapshotArchive::parse(&bytes).is_ok() {
            recovery.chosen = Some((path, bytes));
            break;
        }
        fs::remove_file(&path)?;
        recovery.removed.push(path);
    }
    Ok(recovery)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip_and_sort_chronologically() {
        assert_eq!(checkpoint_file_name(42), "ckpt-000000000042.capsnap");
        assert_eq!(parse_checkpoint_name("ckpt-000000000042.capsnap"), Some(42));
        assert_eq!(parse_checkpoint_name("ckpt-42.capsnap"), None);
        assert_eq!(parse_checkpoint_name("ckpt-000000000042.capsnap.tmp"), None);
        assert_eq!(parse_checkpoint_name("other.capsnap"), None);
        assert!(checkpoint_file_name(999) < checkpoint_file_name(1_000));
    }
}
