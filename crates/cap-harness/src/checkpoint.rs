//! Crash-consistent checkpoint files.
//!
//! A checkpoint is a [`cap_snapshot`] archive persisted under a
//! predictable name, `ckpt-{events:012}.capsnap`, so lexicographic order
//! *is* chronological order. Between checkpoints, the supervisor may
//! append a delta journal, `journal-{events:012}.capj`, holding the
//! events applied since the checkpoint with the same number (see
//! `cap_snapshot::journal`). Three disciplines make the directory safe to
//! crash into at any instruction:
//!
//! 1. **Atomic publication** — [`write_checkpoint`] writes to a `.tmp`
//!    sibling, `fsync`s it, and only then `rename`s it into place. A crash
//!    mid-write leaves a `.tmp` orphan, never a half-written `.capsnap`.
//! 2. **Bounded retention** — [`rotate_checkpoints`] prunes everything but
//!    the newest `keep` files after each successful write. Pruning is
//!    best-effort per file (one sticky EPERM must not make retention
//!    unbounded) and makes the deletions durable with a directory sync.
//!    Journals whose base checkpoint has rotated away go with it.
//! 3. **Skeptical recovery** — [`recover_latest`] walks newest-first,
//!    *parses* each candidate before trusting it (a torn or corrupted file
//!    fails its CRC and is deleted), sweeps up `.tmp` orphans, and drops
//!    journals whose base is newer than the checkpoint it chose.
//!
//! Every disk touch goes through a [`Vfs`] — the `_with` variants accept
//! any implementation (the chaos suite passes
//! [`cap_faults::fs::ChaosVfs`]); the plain-named wrappers bind
//! [`RealVfs`]. This module performs **no** direct `std::fs` calls;
//! `scripts/verify.sh storage` greps to keep it that way.

use crate::names;
use cap_faults::fs::{RealVfs, Vfs};
use cap_obs::Obs;
use cap_snapshot::SnapshotArchive;
use std::io;
use std::path::{Path, PathBuf};

/// Extension of a published checkpoint file.
pub const CHECKPOINT_EXT: &str = "capsnap";

/// Extension of a delta-journal file.
pub const JOURNAL_EXT: &str = "capj";

const PREFIX: &str = "ckpt-";
const JOURNAL_PREFIX: &str = "journal-";
const TMP_SUFFIX: &str = ".tmp";

/// The canonical file name for a checkpoint taken after `events` trace
/// events: zero-padded so lexicographic order matches event order.
#[must_use]
pub fn checkpoint_file_name(events: u64) -> String {
    format!("{PREFIX}{events:012}.{CHECKPOINT_EXT}")
}

/// Parses `ckpt-000000001234.capsnap` back to `1234`; `None` for anything
/// that is not a published checkpoint name.
#[must_use]
pub fn parse_checkpoint_name(name: &str) -> Option<u64> {
    parse_numbered(name, PREFIX, CHECKPOINT_EXT)
}

/// The canonical file name for the delta journal applying on top of the
/// checkpoint taken at `events` (`0` = a fresh, cold state).
#[must_use]
pub fn journal_file_name(events: u64) -> String {
    format!("{JOURNAL_PREFIX}{events:012}.{JOURNAL_EXT}")
}

/// Parses `journal-000000001234.capj` back to `1234`; `None` for anything
/// that is not a journal name.
#[must_use]
pub fn parse_journal_name(name: &str) -> Option<u64> {
    parse_numbered(name, JOURNAL_PREFIX, JOURNAL_EXT)
}

fn parse_numbered(name: &str, prefix: &str, ext: &str) -> Option<u64> {
    let rest = name.strip_prefix(prefix)?;
    let digits = rest.strip_suffix(&format!(".{ext}"))?;
    if digits.len() != 12 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Directory-fsync that is best-effort but *accounted*: not every
/// filesystem supports opening a directory for sync, so the failure is
/// non-fatal, but a durability gap must never be silent — it increments
/// `harness.ckpt.dir_sync_failed` and emits a structured log line.
pub(crate) fn sync_dir_observed(vfs: &dyn Vfs, dir: &Path, obs: &Obs) {
    if let Err(e) = vfs.sync_dir(dir) {
        obs.incr(names::CKPT_DIR_SYNC_FAILED);
        if obs.enabled() {
            eprintln!(
                "{{\"event\":\"{}\",\"dir\":{:?},\"error\":{:?}}}",
                names::CKPT_DIR_SYNC_FAILED,
                dir.display().to_string(),
                e.to_string()
            );
        }
    }
}

/// [`write_checkpoint`] through an explicit [`Vfs`].
///
/// # Errors
///
/// Propagates the underlying filesystem failures; on error the final path
/// is untouched (at worst a `.tmp` orphan remains, which
/// [`recover_latest`] sweeps up). A failed *directory* sync after the
/// rename is not an error — it is counted and logged via `obs` (see
/// [`sync_dir_observed`]'s rationale in the source).
pub fn write_checkpoint_with(
    vfs: &dyn Vfs,
    dir: &Path,
    events: u64,
    bytes: &[u8],
    obs: &Obs,
) -> io::Result<PathBuf> {
    vfs.create_dir_all(dir)?;
    let final_path = dir.join(checkpoint_file_name(events));
    let tmp_path = dir.join(format!("{}{TMP_SUFFIX}", checkpoint_file_name(events)));
    vfs.write_file(&tmp_path, bytes)?;
    vfs.sync_file(&tmp_path)?;
    vfs.rename(&tmp_path, &final_path)?;
    // Publishing the rename durably needs a directory fsync.
    sync_dir_observed(vfs, dir, obs);
    Ok(final_path)
}

/// Atomically publishes `bytes` as the checkpoint for `events`: write to a
/// `.tmp` sibling, `sync_all`, then `rename` into place. Creates `dir` if
/// needed.
///
/// # Errors
///
/// As [`write_checkpoint_with`], which this calls with [`RealVfs`] and
/// disabled observability.
pub fn write_checkpoint(dir: &Path, events: u64, bytes: &[u8]) -> io::Result<PathBuf> {
    write_checkpoint_with(&RealVfs, dir, events, bytes, &Obs::off())
}

fn list_numbered_with(
    vfs: &dyn Vfs,
    dir: &Path,
    parse: fn(&str) -> Option<u64>,
) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut found = Vec::new();
    let names = match vfs.read_dir(dir) {
        Ok(n) => n,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(found),
        Err(e) => return Err(e),
    };
    for name in names {
        if let Some(events) = parse(&name) {
            found.push((events, dir.join(name)));
        }
    }
    found.sort();
    Ok(found)
}

/// [`list_checkpoints`] through an explicit [`Vfs`].
///
/// # Errors
///
/// Propagates directory-read failures.
pub fn list_checkpoints_with(vfs: &dyn Vfs, dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    list_numbered_with(vfs, dir, parse_checkpoint_name)
}

/// All published checkpoints in `dir`, oldest first, as
/// `(events, path)` pairs. A missing directory is just empty.
///
/// # Errors
///
/// Propagates directory-read failures.
pub fn list_checkpoints(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    list_checkpoints_with(&RealVfs, dir)
}

/// All delta journals in `dir`, oldest first, as `(base_events, path)`
/// pairs. A missing directory is just empty.
///
/// # Errors
///
/// Propagates directory-read failures.
pub fn list_journals_with(vfs: &dyn Vfs, dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    list_numbered_with(vfs, dir, parse_journal_name)
}

/// What [`rotate_checkpoints`] accomplished. Rotation is best-effort per
/// file: one undeletable file must not abort retention of the rest, so
/// the outcome is *both* what was removed and the first failure.
#[derive(Debug, Default)]
#[must_use]
pub struct Rotation {
    /// Checkpoints actually deleted, oldest first.
    pub removed: Vec<PathBuf>,
    /// Journals deleted because their base checkpoint is older than the
    /// oldest checkpoint still present.
    pub removed_journals: Vec<PathBuf>,
    /// The first per-file deletion failure, if any (later files were
    /// still attempted).
    pub first_error: Option<io::Error>,
}

/// [`rotate_checkpoints`] through an explicit [`Vfs`].
///
/// # Errors
///
/// Only a failed directory *listing* is an error (rotation cannot know
/// what to do). Per-file deletion failures are reported in
/// [`Rotation::first_error`] while the remaining files are still
/// attempted.
pub fn rotate_checkpoints_with(
    vfs: &dyn Vfs,
    dir: &Path,
    keep: usize,
    obs: &Obs,
) -> io::Result<Rotation> {
    let all = list_checkpoints_with(vfs, dir)?;
    let keep = keep.max(1);
    let excess = all.len().saturating_sub(keep);
    let mut rotation = Rotation::default();
    let mut oldest_present: Option<u64> = all.get(excess).map(|&(events, _)| events);
    for (events, path) in all.iter().take(excess) {
        match vfs.remove_file(path) {
            Ok(()) => rotation.removed.push(path.clone()),
            Err(e) => {
                // The file survives: journals down to its base stay live.
                let floor = oldest_present.get_or_insert(*events);
                *floor = (*floor).min(*events);
                if rotation.first_error.is_none() {
                    rotation.first_error = Some(e);
                }
            }
        }
    }
    // A journal is only replayable on top of its base checkpoint; once the
    // base is gone the journal is dead weight (and `journal-0`, based on
    // the cold state, dies as soon as any real checkpoint survives it).
    if let Some(floor) = oldest_present {
        for (base, path) in list_journals_with(vfs, dir)? {
            if base >= floor {
                break; // oldest-first: the rest are all live
            }
            match vfs.remove_file(&path) {
                Ok(()) => rotation.removed_journals.push(path),
                Err(e) => {
                    if rotation.first_error.is_none() {
                        rotation.first_error = Some(e);
                    }
                }
            }
        }
    }
    // Deletions are namespace edits too: without a directory sync a crash
    // resurrects the removed files and retention silently un-bounds.
    if !rotation.removed.is_empty() || !rotation.removed_journals.is_empty() {
        sync_dir_observed(vfs, dir, obs);
    }
    Ok(rotation)
}

/// Deletes all but the newest `keep` checkpoints (and any delta journals
/// whose base checkpoint is gone); returns what was removed alongside the
/// first per-file failure. `keep == 0` is treated as 1 (the newest always
/// survives).
///
/// # Errors
///
/// As [`rotate_checkpoints_with`], which this calls with [`RealVfs`] and
/// disabled observability.
pub fn rotate_checkpoints(dir: &Path, keep: usize) -> io::Result<Rotation> {
    rotate_checkpoints_with(&RealVfs, dir, keep, &Obs::off())
}

/// What [`recover_latest`] found.
#[derive(Debug, Default)]
pub struct Recovery {
    /// The newest checkpoint that parses as a valid snapshot archive, with
    /// its bytes — `None` when no valid checkpoint exists.
    pub chosen: Option<(PathBuf, Vec<u8>)>,
    /// Files swept up during recovery: `.tmp` orphans from interrupted
    /// writes, published checkpoints newer than `chosen` that failed
    /// to parse (torn, truncated, or corrupted), and journals whose base
    /// is newer than `chosen` (their base state no longer exists).
    pub removed: Vec<PathBuf>,
}

impl Recovery {
    /// Event count of the chosen checkpoint (`0` when none was found —
    /// the cold state).
    #[must_use]
    pub fn chosen_events(&self) -> u64 {
        self.chosen
            .as_ref()
            .and_then(|(path, _)| path.file_name()?.to_str())
            .and_then(parse_checkpoint_name)
            .unwrap_or(0)
    }
}

/// [`recover_latest`] through an explicit [`Vfs`].
///
/// # Errors
///
/// Propagates directory-read and candidate-read failures. Parse failures
/// are part of normal recovery, not errors, and sweep deletions are
/// best-effort — an undeletable orphan is skipped (and retried by the
/// next recovery), never allowed to block choosing a checkpoint.
pub fn recover_latest_with(vfs: &dyn Vfs, dir: &Path) -> io::Result<Recovery> {
    let mut recovery = Recovery::default();
    let entries = match vfs.read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(recovery),
        Err(e) => return Err(e),
    };
    for name in entries {
        let is_tmp = name.starts_with(PREFIX) && name.ends_with(TMP_SUFFIX);
        if is_tmp && vfs.remove_file(&dir.join(&name)).is_ok() {
            recovery.removed.push(dir.join(&name));
        }
    }
    let mut candidates = list_checkpoints_with(vfs, dir)?;
    candidates.reverse(); // newest first
    for (_, path) in candidates {
        let bytes = vfs.read(&path)?;
        if SnapshotArchive::parse(&bytes).is_ok() {
            recovery.chosen = Some((path, bytes));
            break;
        }
        if vfs.remove_file(&path).is_ok() {
            recovery.removed.push(path);
        }
    }
    // A journal based on a checkpoint newer than the one chosen has no
    // state to replay on top of; sweep it before it can shadow the next
    // journal written at that same event count.
    let floor = recovery.chosen_events();
    for (base, path) in list_journals_with(vfs, dir)? {
        if base > floor && vfs.remove_file(&path).is_ok() {
            recovery.removed.push(path);
        }
    }
    Ok(recovery)
}

/// Picks the newest *valid* checkpoint in `dir`, cleaning up the debris a
/// crash can leave behind: `.tmp` orphans are deleted, any checkpoint
/// newer than the chosen one that fails [`SnapshotArchive`] validation
/// (zero-length file, torn write, bit rot) is deleted, and journals with
/// no surviving base checkpoint are deleted. Older checkpoints are left
/// for [`rotate_checkpoints`].
///
/// # Errors
///
/// As [`recover_latest_with`], which this calls with [`RealVfs`].
pub fn recover_latest(dir: &Path) -> io::Result<Recovery> {
    recover_latest_with(&RealVfs, dir)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip_and_sort_chronologically() {
        assert_eq!(checkpoint_file_name(42), "ckpt-000000000042.capsnap");
        assert_eq!(parse_checkpoint_name("ckpt-000000000042.capsnap"), Some(42));
        assert_eq!(parse_checkpoint_name("ckpt-42.capsnap"), None);
        assert_eq!(parse_checkpoint_name("ckpt-000000000042.capsnap.tmp"), None);
        assert_eq!(parse_checkpoint_name("other.capsnap"), None);
        assert!(checkpoint_file_name(999) < checkpoint_file_name(1_000));
    }

    #[test]
    fn journal_names_roundtrip_and_never_cross_parse() {
        assert_eq!(journal_file_name(42), "journal-000000000042.capj");
        assert_eq!(parse_journal_name("journal-000000000042.capj"), Some(42));
        assert_eq!(parse_journal_name("journal-42.capj"), None);
        assert_eq!(parse_journal_name("ckpt-000000000042.capsnap"), None);
        assert_eq!(parse_checkpoint_name("journal-000000000042.capj"), None);
        assert!(journal_file_name(999) < journal_file_name(1_000));
    }
}
