//! Shared experiment plumbing: scales, predictor factories, and
//! suite-level sweeps.

use cap_predictor::drive::Session;
use cap_predictor::metrics::PredictorStats;
use cap_predictor::prelude::*;
use cap_trace::suites::{Suite, TraceSpec};
use cap_uarch::core::{run_trace, CoreConfig, CoreStats};
use std::collections::BTreeMap;

/// How much work an experiment does; every experiment accepts one so the
/// CLI runs at full fidelity while tests and benches run scaled down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Dynamic loads generated per trace.
    pub loads_per_trace: usize,
    /// Limit on traces taken from each suite (`None` = all).
    pub traces_per_suite: Option<usize>,
}

impl Scale {
    /// Full fidelity (the `repro` binary's default).
    #[must_use]
    pub fn full() -> Self {
        Self {
            loads_per_trace: 200_000,
            traces_per_suite: None,
        }
    }

    /// Reduced scale for Criterion benches.
    #[must_use]
    pub fn bench() -> Self {
        Self {
            loads_per_trace: 20_000,
            traces_per_suite: Some(2),
        }
    }

    /// Minimal scale for integration tests.
    #[must_use]
    pub fn tiny() -> Self {
        Self {
            loads_per_trace: 6_000,
            traces_per_suite: Some(1),
        }
    }

    /// The catalog subset selected by this scale, grouped in suite order.
    #[must_use]
    pub fn traces(&self) -> Vec<TraceSpec> {
        let mut out = Vec::new();
        for suite in Suite::ALL {
            let traces = suite.traces();
            let take = self.traces_per_suite.unwrap_or(traces.len());
            out.extend(traces.into_iter().take(take));
        }
        out
    }
}

/// A named way of constructing a fresh predictor.
pub struct PredictorFactory {
    /// Display name used in table headers.
    pub name: String,
    build: Box<dyn Fn() -> Box<dyn AddressPredictor>>,
}

impl std::fmt::Debug for PredictorFactory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PredictorFactory")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

impl PredictorFactory {
    /// Wraps a constructor closure.
    pub fn new<P, F>(name: &str, f: F) -> Self
    where
        P: AddressPredictor + 'static,
        F: Fn() -> P + 'static,
    {
        Self {
            name: name.to_owned(),
            build: Box::new(move || Box::new(f())),
        }
    }

    /// Builds a fresh predictor.
    #[must_use]
    pub fn build(&self) -> Box<dyn AddressPredictor> {
        (self.build)()
    }

    /// The paper's enhanced stride predictor.
    #[must_use]
    pub fn enhanced_stride() -> Self {
        Self::new("stride", || {
            StridePredictor::new(LoadBufferConfig::paper_default(), StrideParams::paper_default())
        })
    }

    /// The paper's stand-alone CAP predictor.
    #[must_use]
    pub fn cap() -> Self {
        Self::new("cap", || CapPredictor::new(CapConfig::paper_default()))
    }

    /// The paper's hybrid CAP/enhanced-stride predictor.
    #[must_use]
    pub fn hybrid() -> Self {
        Self::new("hybrid", || HybridPredictor::new(HybridConfig::paper_default()))
    }

    /// The last-address baseline.
    #[must_use]
    pub fn last_address() -> Self {
        Self::new("last-addr", || {
            LastAddressPredictor::new(LoadBufferConfig::paper_default())
        })
    }
}

/// Per-suite and overall results for one predictor configuration.
#[derive(Debug, Clone)]
pub struct SuiteResults {
    /// Configuration name.
    pub name: String,
    /// Accumulated statistics per suite.
    pub per_suite: BTreeMap<Suite, PredictorStats>,
    /// Statistics accumulated over every trace.
    pub overall: PredictorStats,
}

impl SuiteResults {
    fn new(name: String) -> Self {
        Self {
            name,
            per_suite: BTreeMap::new(),
            overall: PredictorStats::new(),
        }
    }

    /// Mean of a per-suite metric over the eight suites — the paper's
    /// "Average" columns average suites, not loads.
    pub fn suite_mean<F: Fn(&PredictorStats) -> f64>(&self, metric: F) -> f64 {
        if self.per_suite.is_empty() {
            return 0.0;
        }
        self.per_suite.values().map(&metric).sum::<f64>() / self.per_suite.len() as f64
    }
}

/// Runs each factory's predictor over the scaled suite catalog with the
/// given prediction gap (in dynamic instructions; `0` = immediate update).
///
/// Each trace is generated once and reused for every configuration.
pub fn run_suite_sweep(
    scale: &Scale,
    factories: &[PredictorFactory],
    gap: usize,
) -> Vec<SuiteResults> {
    let mut results: Vec<SuiteResults> = factories
        .iter()
        .map(|f| SuiteResults::new(f.name.clone()))
        .collect();
    for spec in scale.traces() {
        let trace = spec.generate(scale.loads_per_trace);
        for (factory, result) in factories.iter().zip(&mut results) {
            let mut predictor = factory.build();
            let stats = Session::new(predictor.as_mut()).gap(gap).run(&trace);
            result
                .per_suite
                .entry(spec.suite)
                .or_insert_with(PredictorStats::new)
                .merge(&stats);
            result.overall.merge(&stats);
        }
    }
    results
}

/// Timing (speedup) results for one trace.
#[derive(Debug, Clone)]
pub struct SpeedupRow {
    /// Trace name.
    pub trace: String,
    /// Owning suite.
    pub suite: Suite,
    /// Baseline (no address prediction) run.
    pub baseline: CoreStats,
    /// One run per factory, in factory order.
    pub with_prediction: Vec<CoreStats>,
}

impl SpeedupRow {
    /// Speedup of configuration `i` over the no-prediction baseline.
    #[must_use]
    pub fn speedup(&self, i: usize) -> f64 {
        self.with_prediction[i].speedup_over(&self.baseline)
    }
}

/// Runs the timing core over the scaled catalog: once without prediction
/// and once per factory, all on identical traces.
pub fn run_speedup_sweep(
    scale: &Scale,
    factories: &[PredictorFactory],
    core: &CoreConfig,
    gap: usize,
) -> Vec<SpeedupRow> {
    let mut rows = Vec::new();
    for spec in scale.traces() {
        let trace = spec.generate(scale.loads_per_trace);
        let baseline = run_trace(&trace, core, None, 0);
        let with_prediction = factories
            .iter()
            .map(|f| {
                let mut p = f.build();
                run_trace(&trace, core, Some(p.as_mut()), gap)
            })
            .collect();
        rows.push(SpeedupRow {
            trace: spec.name.to_owned(),
            suite: spec.suite,
            baseline,
            with_prediction,
        });
    }
    rows
}

/// Geometric mean of per-trace speedups for configuration `i`, over all
/// rows (or a suite subset).
#[must_use]
pub fn geomean_speedup(rows: &[SpeedupRow], i: usize) -> f64 {
    if rows.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = rows.iter().map(|r| r.speedup(i).ln()).sum();
    (log_sum / rows.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_scale_selects_one_trace_per_suite() {
        let traces = Scale::tiny().traces();
        assert_eq!(traces.len(), 8);
    }

    #[test]
    fn full_scale_selects_whole_catalog() {
        assert_eq!(Scale::full().traces().len(), 45);
    }

    #[test]
    fn sweep_populates_all_suites() {
        let scale = Scale {
            loads_per_trace: 2_000,
            traces_per_suite: Some(1),
        };
        let results = run_suite_sweep(&scale, &[PredictorFactory::hybrid()], 0);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].per_suite.len(), 8);
        assert!(results[0].overall.loads >= 8 * 2_000);
    }

    #[test]
    fn suite_mean_averages_suites() {
        let scale = Scale {
            loads_per_trace: 2_000,
            traces_per_suite: Some(1),
        };
        let results = run_suite_sweep(&scale, &[PredictorFactory::last_address()], 0);
        let mean = results[0].suite_mean(PredictorStats::prediction_rate);
        assert!(mean > 0.0 && mean < 1.0);
    }

    #[test]
    fn speedup_sweep_produces_sensible_ratios() {
        let scale = Scale {
            loads_per_trace: 3_000,
            traces_per_suite: Some(1),
        };
        let rows = run_speedup_sweep(
            &scale,
            &[PredictorFactory::hybrid()],
            &CoreConfig::paper_default(),
            0,
        );
        assert_eq!(rows.len(), 8);
        for r in &rows {
            let s = r.speedup(0);
            assert!(s > 0.9 && s < 3.0, "{}: speedup {s:.3} out of range", r.trace);
        }
        let g = geomean_speedup(&rows, 0);
        assert!(g >= 1.0, "prediction should help on average, got {g:.3}");
    }
}
