//! Minimal ASCII table rendering for experiment reports.

/// A rectangular table with a header row.
///
/// # Examples
///
/// ```
/// use cap_harness::table::Table;
/// let mut t = Table::new(vec!["suite".into(), "rate".into()]);
/// t.add_row(vec!["INT".into(), "67.0%".into()]);
/// let s = t.render();
/// assert!(s.contains("INT"));
/// assert!(s.contains("rate"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(headers: Vec<String>) -> Self {
        Self {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's length differs from the header's.
    pub fn add_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The rows added so far (for programmatic inspection in tests).
    #[must_use]
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the table with aligned columns. The first column is
    /// left-aligned (labels); the rest are right-aligned (numbers).
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                if i == 0 {
                    line.push_str(&format!("{cell:<w$}"));
                } else {
                    line.push_str(&format!("{cell:>w$}"));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a fraction as a percentage with one decimal.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Formats a fraction as a percentage with two decimals (accuracies).
#[must_use]
pub fn pct2(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

/// Formats a speedup ratio.
#[must_use]
pub fn ratio(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name".into(), "value".into()]);
        t.add_row(vec!["a".into(), "1".into()]);
        t.add_row(vec!["long-name".into(), "12345".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines the same width.
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w || l.trim_end().len() <= w));
        assert!(lines[3].starts_with("long-name"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = Table::new(vec!["a".into()]);
        t.add_row(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.671), "67.1%");
        assert_eq!(pct2(0.98901), "98.90%");
        assert_eq!(ratio(1.21), "1.210");
    }

    #[test]
    fn rows_accessible() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.add_row(vec!["x".into(), "y".into()]);
        assert_eq!(t.rows()[0][1], "y");
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }
}
