//! Figure 11 — influence of the prediction gap on prediction rate and
//! accuracy, for the (pipelined) enhanced stride and hybrid predictors.
//!
//! Paper reference points: hybrid prediction rate drops ~7% going from
//! immediate update to a realistic pipeline and is then nearly flat in the
//! gap; accuracy is the casualty — 98.9% immediate → 96.6% at gap 4 →
//! 96.1% at gap 12; the hybrid stays ~8.6% correct-predictions ahead of
//! the enhanced stride.
//!
//! The paper expresses the gap in pipeline *cycles*; this model counts
//! dynamic *instructions* between prediction and table update. At the
//! simulated machine's typical IPC (≈2) a gap of `2g` instructions
//! corresponds to roughly `g` cycles, so the sweep uses {0, 8, 16, 24}
//! instructions to mirror the paper's {immediate, 4, 8, 12} cycles.

use super::ExperimentReport;
use crate::runner::{run_suite_sweep, PredictorFactory, Scale, SuiteResults};
use crate::table::{pct, pct2, Table};
use cap_predictor::hybrid::{HybridConfig, HybridPredictor};
use cap_predictor::load_buffer::LoadBufferConfig;
use cap_predictor::metrics::PredictorStats;
use cap_predictor::stride::{StrideParams, StridePredictor};

/// The gaps swept, as (instruction gap, paper-cycles label).
pub const GAPS: [(usize, &str); 4] = [(0, "immediate"), (8, "4"), (16, "8"), (24, "12")];

/// Raw results backing the figure.
#[derive(Debug)]
pub struct Fig11 {
    /// Per gap: (stride results, hybrid results).
    pub per_gap: Vec<(SuiteResults, SuiteResults)>,
}

impl Fig11 {
    /// Suite-mean (rate, accuracy) for the hybrid at gap index `i`.
    #[must_use]
    pub fn hybrid_point(&self, i: usize) -> (f64, f64) {
        let r = &self.per_gap[i].1;
        (
            r.suite_mean(PredictorStats::prediction_rate),
            r.suite_mean(PredictorStats::accuracy),
        )
    }

    /// Suite-mean (rate, accuracy) for the stride at gap index `i`.
    #[must_use]
    pub fn stride_point(&self, i: usize) -> (f64, f64) {
        let r = &self.per_gap[i].0;
        (
            r.suite_mean(PredictorStats::prediction_rate),
            r.suite_mean(PredictorStats::accuracy),
        )
    }
}

fn pipelined_factories() -> [PredictorFactory; 2] {
    [
        PredictorFactory::new("stride", || {
            StridePredictor::new(
                LoadBufferConfig::paper_default(),
                StrideParams::paper_default(), // catch-up + interval on
            )
        }),
        PredictorFactory::new("hybrid", || {
            HybridPredictor::new(HybridConfig::paper_pipelined())
        }),
    ]
}

/// Runs the experiment.
#[must_use]
pub fn run(scale: &Scale) -> (Fig11, ExperimentReport) {
    let mut per_gap = Vec::new();
    for &(gap, _) in &GAPS {
        let mut results = run_suite_sweep(scale, &pipelined_factories(), gap);
        let hybrid = results.pop().expect("two factories");
        let stride = results.pop().expect("two factories");
        per_gap.push((stride, hybrid));
    }
    let data = Fig11 { per_gap };

    let mut table = Table::new(vec![
        "gap (cycles)".into(),
        "stride rate".into(),
        "hybrid rate".into(),
        "stride acc".into(),
        "hybrid acc".into(),
        "stride correct".into(),
        "hybrid correct".into(),
    ]);
    for (i, &(_, label)) in GAPS.iter().enumerate() {
        let s = &data.per_gap[i].0;
        let h = &data.per_gap[i].1;
        table.add_row(vec![
            label.to_owned(),
            pct(s.suite_mean(PredictorStats::prediction_rate)),
            pct(h.suite_mean(PredictorStats::prediction_rate)),
            pct2(s.suite_mean(PredictorStats::accuracy)),
            pct2(h.suite_mean(PredictorStats::accuracy)),
            pct(s.suite_mean(PredictorStats::correct_spec_rate)),
            pct(h.suite_mean(PredictorStats::correct_spec_rate)),
        ]);
    }

    let report = ExperimentReport {
        id: "fig11",
        title: "Influence of the prediction gap on the predictor".into(),
        tables: vec![("prediction rate & accuracy vs gap".into(), table)],
        notes: vec![
            "paper: hybrid rate falls ~7% from immediate to pipelined, then ~flat".into(),
            "paper: accuracy 98.9% -> 96.6% (gap 4) -> 96.1% (gap 12)".into(),
            "gap expressed in instructions (~2x the paper's cycles at IPC 2)".into(),
        ],
    };
    (data, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_hurts_rate_and_accuracy() {
        let (data, _) = run(&Scale::tiny());
        let (rate0, acc0) = data.hybrid_point(0);
        let (rate8, acc8) = data.hybrid_point(2);
        assert!(rate8 < rate0, "gap must reduce rate: {rate8:.3} vs {rate0:.3}");
        assert!(acc8 < acc0, "gap must reduce accuracy: {acc8:.4} vs {acc0:.4}");
    }

    #[test]
    fn rate_flattens_after_first_gap() {
        let (data, _) = run(&Scale::tiny());
        let (rate4, _) = data.hybrid_point(1);
        let (rate12, _) = data.hybrid_point(3);
        assert!(
            (rate4 - rate12).abs() < 0.12,
            "rate should be ~flat across gaps: {rate4:.3} vs {rate12:.3}"
        );
    }

    #[test]
    fn hybrid_stays_ahead_of_stride_under_gap() {
        let (data, _) = run(&Scale::tiny());
        let (h, _) = data.hybrid_point(2);
        let (s, _) = data.stride_point(2);
        assert!(h > s, "hybrid {h:.3} must beat stride {s:.3} at gap 8");
    }
}
