//! Figure 8 — hybrid selector behaviour: distribution of the 2-bit
//! selector states over loads predicted by *both* components, and the
//! correct-selection rate.
//!
//! Paper reference points: ~80% of speculative accesses are dual-predicted;
//! almost 90% of those sit in the two CAP-selecting states (the
//! always-update LT policy funnels most predictions through CAP); the
//! correct-selection rate exceeds 99.2% everywhere.

use super::ExperimentReport;
use crate::runner::{run_suite_sweep, PredictorFactory, Scale, SuiteResults};
use crate::table::{pct, pct2, Table};
use cap_predictor::metrics::PredictorStats;
use cap_trace::suites::Suite;

/// Raw results backing the figure.
#[derive(Debug)]
pub struct Fig8 {
    /// Hybrid results with selector diagnostics.
    pub hybrid: SuiteResults,
}

impl Fig8 {
    /// Fraction of dual-predicted speculative accesses spent in each
    /// selector state, for one suite.
    #[must_use]
    pub fn state_distribution(&self, suite: Suite) -> [f64; 4] {
        let s = &self.hybrid.per_suite[&suite];
        let total: u64 = s.selector_states.iter().sum();
        if total == 0 {
            return [0.0; 4];
        }
        let mut out = [0.0; 4];
        for (o, &c) in out.iter_mut().zip(&s.selector_states) {
            *o = c as f64 / total as f64;
        }
        out
    }

    /// Fraction of speculative accesses that were dual-predicted, overall.
    #[must_use]
    pub fn dual_predicted_fraction(&self) -> f64 {
        let s = &self.hybrid.overall;
        if s.spec_accesses == 0 {
            0.0
        } else {
            s.both_predicted_spec as f64 / s.spec_accesses as f64
        }
    }
}

const STATE_LABELS: [&str; 4] = ["strong stride", "weak stride", "weak CAP", "strong CAP"];

/// Runs the experiment.
#[must_use]
pub fn run(scale: &Scale) -> (Fig8, ExperimentReport) {
    let results = run_suite_sweep(scale, &[PredictorFactory::hybrid()], 0);
    let data = Fig8 {
        hybrid: results.into_iter().next().expect("one factory"),
    };

    let mut headers: Vec<String> = vec!["suite".into()];
    headers.extend(STATE_LABELS.iter().map(|s| (*s).to_owned()));
    headers.push("correct selection".into());
    let mut table = Table::new(headers);
    for suite in Suite::ALL {
        let dist = data.state_distribution(suite);
        let mut row = vec![suite.name().to_owned()];
        row.extend(dist.iter().map(|&d| pct(d)));
        row.push(pct2(data.hybrid.per_suite[&suite].correct_selection_rate()));
        table.add_row(row);
    }
    let mut avg = vec!["Average".to_owned()];
    let mut sums = [0.0; 4];
    for suite in Suite::ALL {
        for (s, d) in sums.iter_mut().zip(data.state_distribution(suite)) {
            *s += d / Suite::ALL.len() as f64;
        }
    }
    avg.extend(sums.iter().map(|&d| pct(d)));
    avg.push(pct2(
        data.hybrid
            .suite_mean(PredictorStats::correct_selection_rate),
    ));
    table.add_row(avg);

    let mut extra = Table::new(vec!["metric".into(), "value".into()]);
    extra.add_row(vec![
        "dual-predicted fraction of speculative accesses".into(),
        pct(data.dual_predicted_fraction()),
    ]);

    let report = ExperimentReport {
        id: "fig8",
        title: "Selector performance".into(),
        tables: vec![
            ("selector state distribution (dual-predicted loads)".into(), table),
            ("context".into(), extra),
        ],
        notes: vec![
            "paper: ~80% of speculative accesses are predicted by both components".into(),
            "paper: ~90% of dual-predicted loads sit in the two CAP states".into(),
            "paper: correct selection rate >99.2% (2-bit counters near-perfect)".into(),
        ],
    };
    (data, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selector_prefers_cap_states() {
        let (data, _) = run(&Scale::tiny());
        let mut cap_share = 0.0;
        for suite in Suite::ALL {
            let d = data.state_distribution(suite);
            cap_share += (d[2] + d[3]) / Suite::ALL.len() as f64;
        }
        assert!(
            cap_share > 0.5,
            "most dual-predicted loads should select CAP, got {cap_share:.2}"
        );
    }

    #[test]
    fn selection_is_nearly_always_correct() {
        let (data, _) = run(&Scale::tiny());
        let rate = data
            .hybrid
            .suite_mean(PredictorStats::correct_selection_rate);
        assert!(rate > 0.98, "correct selection {rate:.4} too low");
    }

    #[test]
    fn distributions_sum_to_one_when_nonempty() {
        let (data, _) = run(&Scale::tiny());
        for suite in Suite::ALL {
            let d = data.state_distribution(suite);
            let sum: f64 = d.iter().sum();
            assert!(sum == 0.0 || (sum - 1.0).abs() < 1e-9);
        }
    }
}
