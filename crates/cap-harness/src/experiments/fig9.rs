//! Figure 9 — correct speculative accesses vs history length, with and
//! without global correlation (stand-alone CAP, *no confidence* gate).
//!
//! Paper reference points: global correlation is worth ≈10% of all dynamic
//! loads; the optimal history length is 2 *without* correlation but 3–4
//! *with* it (shared base addresses need longer contexts to disambiguate);
//! very long histories (12) hurt both.

use super::ExperimentReport;
use crate::runner::{run_suite_sweep, PredictorFactory, Scale, SuiteResults};
use crate::table::{pct, Table};
use cap_predictor::cap::{CapConfig, CapPredictor};
use cap_predictor::metrics::PredictorStats;

/// History lengths swept (as in the paper's x-axis).
pub const HISTORY_LENGTHS: [usize; 6] = [1, 2, 3, 4, 6, 12];

/// Raw results backing the figure.
#[derive(Debug)]
pub struct Fig9 {
    /// Correct-speculative rates with global correlation, per history
    /// length (suite mean).
    pub with_correlation: Vec<f64>,
    /// Same without global correlation.
    pub without_correlation: Vec<f64>,
}

impl Fig9 {
    /// History length with the best rate, with correlation.
    #[must_use]
    pub fn best_length_with(&self) -> usize {
        best(&self.with_correlation)
    }

    /// History length with the best rate, without correlation.
    #[must_use]
    pub fn best_length_without(&self) -> usize {
        best(&self.without_correlation)
    }
}

fn best(rates: &[f64]) -> usize {
    let (i, _) = rates
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("non-empty");
    HISTORY_LENGTHS[i]
}

fn factory(length: usize, global: bool) -> PredictorFactory {
    let name = format!("h{length}{}", if global { "+gc" } else { "" });
    PredictorFactory::new(&name, move || {
        let mut cfg = CapConfig::paper_default();
        cfg.params.history.length = length;
        cfg.params.global_correlation = global;
        cfg.params.confidence_enabled = false; // isolate correlation (§4.5)
        CapPredictor::new(cfg)
    })
}

/// Runs the experiment.
#[must_use]
pub fn run(scale: &Scale) -> (Fig9, ExperimentReport) {
    let mut factories = Vec::new();
    for &len in &HISTORY_LENGTHS {
        factories.push(factory(len, true));
    }
    for &len in &HISTORY_LENGTHS {
        factories.push(factory(len, false));
    }
    let results = run_suite_sweep(scale, &factories, 0);
    let rate = |r: &SuiteResults| r.suite_mean(PredictorStats::correct_spec_rate);
    let with_correlation: Vec<f64> = results[..HISTORY_LENGTHS.len()].iter().map(rate).collect();
    let without_correlation: Vec<f64> =
        results[HISTORY_LENGTHS.len()..].iter().map(rate).collect();

    let mut table = Table::new(vec![
        "history length".into(),
        "global correlation".into(),
        "no global correlation".into(),
    ]);
    for (i, &len) in HISTORY_LENGTHS.iter().enumerate() {
        table.add_row(vec![
            len.to_string(),
            pct(with_correlation[i]),
            pct(without_correlation[i]),
        ]);
    }
    let data = Fig9 {
        with_correlation,
        without_correlation,
    };
    let report = ExperimentReport {
        id: "fig9",
        title: "Correct prediction as a function of the history length".into(),
        tables: vec![("correct spec accesses / all loads".into(), table)],
        notes: vec![
            "paper: global correlation worth ~10% of all loads".into(),
            "paper: optimum history length 2 without correlation, 3-4 with".into(),
            format!(
                "measured optimum: {} with, {} without",
                data.best_length_with(),
                data.best_length_without()
            ),
        ],
    };
    (data, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correlation_helps_at_default_length() {
        let (data, _) = run(&Scale::tiny());
        // At length 4 (index 3) correlation should clearly win.
        assert!(
            data.with_correlation[3] > data.without_correlation[3],
            "correlation must help at length 4: {:.3} vs {:.3}",
            data.with_correlation[3],
            data.without_correlation[3]
        );
    }

    #[test]
    fn very_long_history_hurts() {
        let (data, _) = run(&Scale::tiny());
        let best = data
            .with_correlation
            .iter()
            .cloned()
            .fold(f64::MIN, f64::max);
        let h12 = *data.with_correlation.last().expect("non-empty");
        assert!(
            h12 < best,
            "length 12 ({h12:.3}) should not be the optimum ({best:.3})"
        );
    }

    #[test]
    fn table_has_all_lengths() {
        let (_, report) = run(&Scale::tiny());
        assert_eq!(
            report.table("correct spec accesses / all loads").len(),
            HISTORY_LENGTHS.len()
        );
    }
}
