//! Extension experiments: the alternatives the paper discusses but rejects
//! (§1 value prediction, §3.3 delta correlation, §3.6 control-based) and
//! the future-work directions it proposes (§6 variable history length,
//! profile feedback).
//!
//! None of these are tables in the paper; they make the paper's *arguments*
//! measurable.

use super::ExperimentReport;
use crate::runner::{run_suite_sweep, PredictorFactory, Scale, SuiteResults};
use crate::table::{pct, pct2, Table};
use cap_predictor::cap::{CapConfig, CapPredictor};
use cap_predictor::delta::{DeltaCapConfig, DeltaCapPredictor};
use cap_predictor::drive::Session;
use cap_predictor::hybrid::{HybridConfig, HybridPredictor};
use cap_predictor::last_addr::LastAddressPredictor;
use cap_predictor::link_table::LinkTableConfig;
use cap_predictor::load_buffer::LoadBufferConfig;
use cap_predictor::metrics::PredictorStats;
use cap_predictor::profile::{ProfileGuidedPredictor, Profiler};
use cap_predictor::stride::{StrideParams, StridePredictor};
use cap_predictor::types::AddressPredictor;
use cap_predictor::variable::{VariableHistoryCap, VariableHistoryConfig};
use cap_trace::suites::Suite;

/// Rows of a core-timing comparison: workload name, baseline IPC, variant
/// IPC, speedup, and the variant's prediction rate.
pub type CoreCompareRows = Vec<(String, f64, f64, f64, f64)>;

/// Constructor of a boxed predictor, for name→factory tables.
type PredictorCtor = fn() -> Box<dyn AddressPredictor>;

/// §3.3 — base-address CAP vs the rejected delta-correlation variant.
#[must_use]
pub fn delta_correlation(scale: &Scale) -> (Vec<SuiteResults>, ExperimentReport) {
    let factories = [
        PredictorFactory::cap(),
        PredictorFactory::new("delta-cap", || {
            DeltaCapPredictor::new(DeltaCapConfig::paper_default())
        }),
    ];
    let results = run_suite_sweep(scale, &factories, 0);
    let mut table = Table::new(vec![
        "scheme".into(),
        "prediction rate".into(),
        "correct spec / loads".into(),
        "accuracy".into(),
    ]);
    for r in &results {
        table.add_row(vec![
            r.name.clone(),
            pct(r.suite_mean(PredictorStats::prediction_rate)),
            pct(r.suite_mean(PredictorStats::correct_spec_rate)),
            pct2(r.suite_mean(PredictorStats::accuracy)),
        ]);
    }
    let report = ExperimentReport {
        id: "ext-delta",
        title: "Base-address vs delta correlation (§3.3)".into(),
        tables: vec![("delta-correlation trade-off".into(), table)],
        notes: vec![
            "paper: deltas exploit 'any kind of global correlation' but suffer false-correlation aliasing — 'less attractive'".into(),
        ],
    };
    (results, report)
}

/// §6 — variable history length vs fixed lengths.
#[must_use]
pub fn variable_history(scale: &Scale) -> (Vec<SuiteResults>, ExperimentReport) {
    fn fixed(length: usize) -> PredictorFactory {
        PredictorFactory::new(&format!("fixed-{length}"), move || {
            let mut cfg = CapConfig::paper_default();
            cfg.params.history.length = length;
            CapPredictor::new(cfg)
        })
    }
    let factories = [
        fixed(2),
        fixed(4),
        PredictorFactory::new("variable-2/4", || {
            VariableHistoryCap::new(VariableHistoryConfig::paper_default())
        }),
    ];
    let results = run_suite_sweep(scale, &factories, 0);
    let mut table = Table::new(vec![
        "history scheme".into(),
        "prediction rate".into(),
        "correct spec / loads".into(),
        "accuracy".into(),
    ]);
    for r in &results {
        table.add_row(vec![
            r.name.clone(),
            pct(r.suite_mean(PredictorStats::prediction_rate)),
            pct(r.suite_mean(PredictorStats::correct_spec_rate)),
            pct2(r.suite_mean(PredictorStats::accuracy)),
        ]);
    }
    let report = ExperimentReport {
        id: "ext-variable-history",
        title: "Variable history length (§6 future work, TAGE-style)".into(),
        tables: vec![("fixed vs variable context lengths".into(), table)],
        notes: vec![
            "longest-match over short+long tables combines fast warm-up with run disambiguation".into(),
        ],
    };
    (results, report)
}

/// §6 — profile-guided (software-assisted) prediction at small table sizes.
///
/// Runs each trace twice: a profiling pass classifies its static loads,
/// then the guided predictor uses the classification. Comparison point: an
/// unassisted hybrid at the *same reduced* table sizes.
#[must_use]
pub fn profile_guided(scale: &Scale) -> (Vec<(String, f64, f64)>, ExperimentReport) {
    const LB: usize = 1024;
    const LT: usize = 1024;
    let small_hybrid = || {
        let mut cfg = HybridConfig::paper_default();
        cfg.lb.entries = LB;
        cfg.lt.entries = LT;
        cfg.cap.history.index_bits = 10;
        HybridPredictor::new(cfg)
    };
    let mut rows = Vec::new();
    let mut plain_total = PredictorStats::new();
    let mut guided_total = PredictorStats::new();
    for suite in Suite::ALL {
        let mut plain_suite = PredictorStats::new();
        let mut guided_suite = PredictorStats::new();
        let take = scale.traces_per_suite.unwrap_or(usize::MAX);
        for spec in suite.traces().into_iter().take(take) {
            let trace = spec.generate(scale.loads_per_trace);
            let mut plain = small_hybrid();
            plain_suite.merge(&Session::new(&mut plain).run(&trace));

            let classes = Profiler::profile_trace(&trace);
            let mut guided = ProfileGuidedPredictor::new(
                classes,
                LoadBufferConfig {
                    entries: LB,
                    assoc: 2,
                },
                LinkTableConfig {
                    entries: LT,
                    ..LinkTableConfig::paper_default()
                },
                {
                    let mut p = cap_predictor::cap::CapParams::paper_default();
                    p.history.index_bits = 10;
                    p
                },
                StrideParams::paper_default(),
            );
            guided_suite.merge(&Session::new(&mut guided).run(&trace));
        }
        rows.push((
            suite.name().to_owned(),
            plain_suite.correct_spec_rate(),
            guided_suite.correct_spec_rate(),
        ));
        plain_total.merge(&plain_suite);
        guided_total.merge(&guided_suite);
    }
    let mut table = Table::new(vec![
        "suite".into(),
        "plain hybrid (1K/1K)".into(),
        "profile-guided (1K/1K)".into(),
    ]);
    for (name, plain, guided) in &rows {
        table.add_row(vec![name.clone(), pct(*plain), pct(*guided)]);
    }
    table.add_row(vec![
        "Overall".into(),
        pct(plain_total.correct_spec_rate()),
        pct(guided_total.correct_spec_rate()),
    ]);
    let report = ExperimentReport {
        id: "ext-profile",
        title: "Profile feedback / software assist (§6 future work)".into(),
        tables: vec![("correct spec accesses / loads at reduced table sizes".into(), table)],
        notes: vec![
            "classification keeps unknown loads out of the tables: less pollution, smaller tables suffice".into(),
        ],
    };
    (rows, report)
}

/// §1.1 \[Gonz97\] — sharing the stride prediction structures for data
/// prefetching: the projected next-invocation line is pulled into the
/// cache in the background whenever a confident stride prediction is made.
#[must_use]
pub fn prefetch(scale: &Scale) -> (CoreCompareRows, ExperimentReport) {
    use cap_uarch::core::{run_trace, CoreConfig};
    let base_core = CoreConfig::paper_default();
    let mut pf_core = CoreConfig::paper_default();
    pf_core.prefetch = true;
    let mut rows = Vec::new();
    for suite in Suite::ALL {
        let take = scale.traces_per_suite.unwrap_or(usize::MAX).min(2);
        let mut speedup_plain = 0.0;
        let mut speedup_pf = 0.0;
        let mut l1_plain = 0.0;
        let mut l1_pf = 0.0;
        let mut n = 0;
        for spec in suite.traces().into_iter().take(take) {
            let trace = spec.generate(scale.loads_per_trace);
            let baseline = run_trace(&trace, &base_core, None, 0);
            let mut p1 = HybridPredictor::new(HybridConfig::paper_default());
            let plain = run_trace(&trace, &base_core, Some(&mut p1), 0);
            let mut p2 = HybridPredictor::new(HybridConfig::paper_default());
            let with_pf = run_trace(&trace, &pf_core, Some(&mut p2), 0);
            speedup_plain += plain.speedup_over(&baseline).ln();
            speedup_pf += with_pf.speedup_over(&baseline).ln();
            l1_plain += plain.l1_hit_rate;
            l1_pf += with_pf.l1_hit_rate;
            n += 1;
        }
        let n = n as f64;
        rows.push((
            suite.name().to_owned(),
            (speedup_plain / n).exp(),
            (speedup_pf / n).exp(),
            l1_plain / n,
            l1_pf / n,
        ));
    }
    let mut table = Table::new(vec![
        "suite".into(),
        "speedup".into(),
        "speedup +prefetch".into(),
        "L1 hit".into(),
        "L1 hit +prefetch".into(),
    ]);
    for (name, s, spf, l1, l1pf) in &rows {
        table.add_row(vec![
            name.clone(),
            format!("{s:.3}"),
            format!("{spf:.3}"),
            pct(*l1),
            pct(*l1pf),
        ]);
    }
    let report = ExperimentReport {
        id: "ext-prefetch",
        title: "Shared stride structures for prefetching (\\[Gonz97\\], §1.1)".into(),
        tables: vec![("hybrid vs hybrid+prefetch".into(), table)],
        notes: vec![
            "prefetching the projected next invocation raises L1 hit rates on stride-heavy suites on top of address prediction".into(),
        ],
    };
    (rows, report)
}

/// §5.4 — speculative control flow: wrong-path pollution with and without
/// reorder-buffer-like predictor state recovery.
#[must_use]
pub fn wrong_path(scale: &Scale) -> (CoreCompareRows, ExperimentReport) {
    let mut rows = Vec::new();
    for suite in Suite::ALL {
        let take = scale.traces_per_suite.unwrap_or(usize::MAX).min(2);
        let mut rec = PredictorStats::new();
        let mut norec = PredictorStats::new();
        for spec in suite.traces().into_iter().take(take) {
            let trace = spec.generate(scale.loads_per_trace);
            let mut a = HybridPredictor::new(HybridConfig::paper_default());
            rec.merge(&Session::new(&mut a).wrong_path(8).recovery(true).run(&trace));
            let mut b = HybridPredictor::new(HybridConfig::paper_default());
            norec.merge(&Session::new(&mut b).wrong_path(8).run(&trace));
        }
        rows.push((
            suite.name().to_owned(),
            rec.correct_spec_rate(),
            norec.correct_spec_rate(),
            rec.accuracy(),
            norec.accuracy(),
        ));
    }
    let mut table = Table::new(vec![
        "suite".into(),
        "correct/loads (recovery)".into(),
        "correct/loads (no recovery)".into(),
        "accuracy (recovery)".into(),
        "accuracy (no recovery)".into(),
    ]);
    for (name, r, n, ra, na) in &rows {
        table.add_row(vec![name.clone(), pct(*r), pct(*n), pct2(*ra), pct2(*na)]);
    }
    let report = ExperimentReport {
        id: "ext-wrongpath",
        title: "Wrong-path pollution and predictor state recovery (§5.4)".into(),
        tables: vec![("8% branch mispredictions, 6 wrong-path loads each".into(), table)],
        notes: vec![
            "paper: 'a reorder buffer-like or history buffer recovery mechanism is required to prevent destructive updates'".into(),
        ],
    };
    (rows, report)
}

/// §1 — value predictability vs address predictability.
#[must_use]
pub fn value_vs_address(scale: &Scale) -> (Vec<(String, f64, f64)>, ExperimentReport) {
    let make: [(&str, PredictorCtor); 3] = [
        ("last", || {
            Box::new(LastAddressPredictor::new(LoadBufferConfig::paper_default()))
        }),
        ("stride", || {
            Box::new(StridePredictor::new(
                LoadBufferConfig::paper_default(),
                StrideParams::paper_default(),
            ))
        }),
        ("context (CAP)", || {
            let mut cfg = CapConfig::paper_default();
            cfg.params.global_correlation = false; // values have no offsets
            Box::new(CapPredictor::new(cfg))
        }),
    ];
    let mut rows = Vec::new();
    for (name, factory) in make {
        let mut addr = PredictorStats::new();
        let mut value = PredictorStats::new();
        for suite in Suite::ALL {
            let take = scale.traces_per_suite.unwrap_or(usize::MAX);
            for spec in suite.traces().into_iter().take(take) {
                let trace = spec.generate(scale.loads_per_trace);
                let mut pa = factory();
                addr.merge(&Session::new(pa.as_mut()).run(&trace));
                let mut pv = factory();
                value.merge(&Session::new(pv.as_mut()).values(true).run(&trace));
            }
        }
        rows.push((
            name.to_owned(),
            addr.correct_spec_rate(),
            value.correct_spec_rate(),
        ));
    }
    let mut table = Table::new(vec![
        "predictor".into(),
        "address stream".into(),
        "value stream".into(),
    ]);
    for (name, a, v) in &rows {
        table.add_row(vec![name.clone(), pct(*a), pct(*v)]);
    }
    let report = ExperimentReport {
        id: "ext-value",
        title: "Value vs address predictability (§1)".into(),
        tables: vec![("correct spec accesses / loads".into(), table)],
        notes: vec![
            "paper: 'load-value prediction may be used as an alternate option … however, its lower predictability makes this option less attractive'".into(),
        ],
    };
    (rows, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale::tiny()
    }

    #[test]
    fn delta_scheme_is_less_attractive_overall() {
        // The paper rejects deltas for their *aliasing* (false global
        // correlation), which manifests as a worse misprediction rate —
        // coverage can even be higher because deltas subsume strides.
        let (results, _) = delta_correlation(&tiny());
        let base_acc = results[0].suite_mean(PredictorStats::accuracy);
        let delta_acc = results[1].suite_mean(PredictorStats::accuracy);
        assert!(
            base_acc > delta_acc,
            "base addresses must be more accurate than deltas: {base_acc:.4} vs {delta_acc:.4}"
        );
    }

    #[test]
    fn variable_history_is_competitive_with_best_fixed() {
        let (results, _) = variable_history(&tiny());
        let fixed2 = results[0].suite_mean(PredictorStats::correct_spec_rate);
        let fixed4 = results[1].suite_mean(PredictorStats::correct_spec_rate);
        let variable = results[2].suite_mean(PredictorStats::correct_spec_rate);
        let best_fixed = fixed2.max(fixed4);
        assert!(
            variable > best_fixed - 0.05,
            "variable ({variable:.3}) must be competitive with best fixed ({best_fixed:.3})"
        );
    }

    #[test]
    fn profile_guidance_helps_small_tables() {
        let (rows, _) = profile_guided(&tiny());
        let plain: f64 = rows.iter().map(|r| r.1).sum::<f64>() / rows.len() as f64;
        let guided: f64 = rows.iter().map(|r| r.2).sum::<f64>() / rows.len() as f64;
        assert!(
            guided > plain - 0.05,
            "guided ({guided:.3}) must not lose badly to plain ({plain:.3}) at small sizes"
        );
    }

    #[test]
    fn wrong_path_recovery_preserves_coverage() {
        let (rows, _) = wrong_path(&tiny());
        let rec: f64 = rows.iter().map(|r| r.1).sum();
        let norec: f64 = rows.iter().map(|r| r.2).sum();
        assert!(
            rec > norec,
            "recovery must preserve coverage: {rec:.3} vs {norec:.3}"
        );
    }

    #[test]
    fn prefetching_helps_l1_and_never_hurts_speedup_much() {
        let (rows, _) = prefetch(&tiny());
        for (name, s, spf, l1, l1pf) in &rows {
            assert!(
                l1pf >= l1,
                "{name}: prefetch must not lower L1 hit rate ({l1pf:.3} vs {l1:.3})"
            );
            assert!(
                *spf > s - 0.03,
                "{name}: prefetch must not cost speedup ({spf:.3} vs {s:.3})"
            );
        }
        // At least one suite must clearly gain L1 hit rate.
        assert!(rows.iter().any(|r| r.4 > r.3 + 0.02));
    }

    #[test]
    fn values_are_less_predictable_than_addresses() {
        let (rows, _) = value_vs_address(&tiny());
        // Stride and context predictors must gain much more on addresses
        // than on values (rows 1 and 2); the last-value row can tie since
        // recurring null pointers make values locally predictable.
        for (name, addr, value) in &rows[1..] {
            assert!(
                addr > value,
                "{name}: addresses ({addr:.3}) must beat values ({value:.3})"
            );
        }
        let best_addr = rows.iter().map(|r| r.1).fold(f64::MIN, f64::max);
        let best_value = rows.iter().map(|r| r.2).fold(f64::MIN, f64::max);
        assert!(
            best_addr > best_value + 0.05,
            "best address predictor ({best_addr:.3}) must clearly beat best value predictor ({best_value:.3})"
        );
    }
}
