//! Figure 6 — hybrid prediction rate as a function of Load Buffer size and
//! associativity (2K-2way, 4K-1way, 4K-2way, 4K-4way, 8K-2way).
//!
//! Paper reference points: the big-footprint suites (CAD, JAV, NT, TPC,
//! W95) gain steadily with size; 2-way is a clear win over direct-mapped;
//! >2-way adds little; accuracy stays ~98.9% across configurations.

use super::ExperimentReport;
use crate::runner::{run_suite_sweep, PredictorFactory, Scale, SuiteResults};
use crate::table::{pct, pct2, Table};
use cap_predictor::hybrid::{HybridConfig, HybridPredictor};
use cap_predictor::metrics::PredictorStats;
use cap_trace::suites::Suite;

/// The LB geometries swept, as (entries, associativity, label).
pub const LB_CONFIGS: [(usize, usize, &str); 5] = [
    (2048, 2, "2K,2way"),
    (4096, 1, "4K,1way"),
    (4096, 2, "4K,2way"),
    (4096, 4, "4K,4way"),
    (8192, 2, "8K,2way"),
];

/// Raw results backing the figure (one per [`LB_CONFIGS`] entry).
#[derive(Debug)]
pub struct Fig6 {
    /// Results in [`LB_CONFIGS`] order.
    pub results: Vec<SuiteResults>,
}

/// Runs the experiment.
#[must_use]
pub fn run(scale: &Scale) -> (Fig6, ExperimentReport) {
    let factories: Vec<PredictorFactory> = LB_CONFIGS
        .iter()
        .map(|&(entries, assoc, label)| {
            PredictorFactory::new(label, move || {
                let mut cfg = HybridConfig::paper_default();
                cfg.lb.entries = entries;
                cfg.lb.assoc = assoc;
                HybridPredictor::new(cfg)
            })
        })
        .collect();
    let results = run_suite_sweep(scale, &factories, 0);

    let mut headers: Vec<String> = vec!["suite".into()];
    headers.extend(LB_CONFIGS.iter().map(|c| c.2.to_owned()));
    headers.push("acc (4K,2way)".into());
    let mut table = Table::new(headers);
    let baseline_idx = 2; // 4K 2-way
    for suite in Suite::ALL {
        let mut row = vec![suite.name().to_owned()];
        for r in &results {
            row.push(pct(r.per_suite[&suite].prediction_rate()));
        }
        row.push(pct2(results[baseline_idx].per_suite[&suite].accuracy()));
        table.add_row(row);
    }
    let mut avg = vec!["Average".to_owned()];
    for r in &results {
        avg.push(pct(r.suite_mean(PredictorStats::prediction_rate)));
    }
    avg.push(pct2(
        results[baseline_idx].suite_mean(PredictorStats::accuracy),
    ));
    table.add_row(avg);

    let report = ExperimentReport {
        id: "fig6",
        title: "Hybrid prediction performance vs LB entries/associativity".into(),
        tables: vec![("prediction rate by LB geometry".into(), table)],
        notes: vec![
            "paper: CAD/JAV/NT/TPC/W95 rates grow steadily with LB size".into(),
            "paper: 2-way is a definite win; higher associativity less cost-effective".into(),
            "paper: accuracy ~constant (~98.9%) across configurations".into(),
        ],
    };
    (Fig6 { results }, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigger_lb_helps_pressure_suites() {
        // LB pressure needs enough loads to cycle the big static
        // footprints, so this test runs above tiny scale.
        let (data, _) = run(&Scale {
            loads_per_trace: 30_000,
            traces_per_suite: Some(1),
        });
        // 8K-2way vs 2K-2way on the big-footprint suites.
        for suite in [Suite::Tpc, Suite::W95, Suite::Nt] {
            let small = data.results[0].per_suite[&suite].prediction_rate();
            let large = data.results[4].per_suite[&suite].prediction_rate();
            assert!(
                large > small,
                "{suite}: 8K ({large:.3}) must beat 2K ({small:.3})"
            );
        }
    }

    #[test]
    fn two_way_beats_direct_mapped_at_4k() {
        let (data, _) = run(&Scale::tiny());
        let dm = data.results[1].suite_mean(PredictorStats::prediction_rate);
        let w2 = data.results[2].suite_mean(PredictorStats::prediction_rate);
        assert!(w2 >= dm, "2-way {w2:.3} must not lose to direct-mapped {dm:.3}");
    }

    #[test]
    fn report_has_all_columns() {
        let (_, report) = run(&Scale::tiny());
        let t = report.table("prediction rate by LB geometry");
        assert_eq!(t.rows()[0].len(), 1 + LB_CONFIGS.len() + 1);
        assert_eq!(t.len(), 9);
    }
}
