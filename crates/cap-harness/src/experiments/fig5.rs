//! Figure 5 — prediction performance of the enhanced stride, stand-alone
//! CAP, and hybrid predictors, per suite and on average.
//!
//! Paper reference points: stride ≈53% / CAP ≈61% / hybrid ≈67% prediction
//! rate on average; hybrid accuracy ≈98.9%; CAP beats stride by 5–13% on
//! every suite *except MM*, where the large media arrays overflow the Link
//! Table and the stride component dominates.

use super::ExperimentReport;
use crate::runner::{run_suite_sweep, PredictorFactory, Scale, SuiteResults};
use crate::table::{pct, pct2, Table};
use cap_predictor::metrics::PredictorStats;
use cap_trace::suites::Suite;

/// Raw results backing the figure.
#[derive(Debug)]
pub struct Fig5 {
    /// Results for stride, CAP, and hybrid (in that order).
    pub results: Vec<SuiteResults>,
}

impl Fig5 {
    /// Result accessors by configuration.
    #[must_use]
    pub fn stride(&self) -> &SuiteResults {
        &self.results[0]
    }
    /// Stand-alone CAP results.
    #[must_use]
    pub fn cap(&self) -> &SuiteResults {
        &self.results[1]
    }
    /// Hybrid results.
    #[must_use]
    pub fn hybrid(&self) -> &SuiteResults {
        &self.results[2]
    }
}

/// Runs the experiment.
#[must_use]
pub fn run(scale: &Scale) -> (Fig5, ExperimentReport) {
    let factories = [
        PredictorFactory::enhanced_stride(),
        PredictorFactory::cap(),
        PredictorFactory::hybrid(),
    ];
    let results = run_suite_sweep(scale, &factories, 0);

    let mut table = Table::new(vec![
        "suite".into(),
        "stride rate".into(),
        "cap rate".into(),
        "hybrid rate".into(),
        "stride acc".into(),
        "cap acc".into(),
        "hybrid acc".into(),
    ]);
    for suite in Suite::ALL {
        let cell = |r: &SuiteResults, f: fn(&PredictorStats) -> f64| f(&r.per_suite[&suite]);
        table.add_row(vec![
            suite.name().into(),
            pct(cell(&results[0], PredictorStats::prediction_rate)),
            pct(cell(&results[1], PredictorStats::prediction_rate)),
            pct(cell(&results[2], PredictorStats::prediction_rate)),
            pct2(cell(&results[0], PredictorStats::accuracy)),
            pct2(cell(&results[1], PredictorStats::accuracy)),
            pct2(cell(&results[2], PredictorStats::accuracy)),
        ]);
    }
    table.add_row(vec![
        "Average".into(),
        pct(results[0].suite_mean(PredictorStats::prediction_rate)),
        pct(results[1].suite_mean(PredictorStats::prediction_rate)),
        pct(results[2].suite_mean(PredictorStats::prediction_rate)),
        pct2(results[0].suite_mean(PredictorStats::accuracy)),
        pct2(results[1].suite_mean(PredictorStats::accuracy)),
        pct2(results[2].suite_mean(PredictorStats::accuracy)),
    ]);

    let report = ExperimentReport {
        id: "fig5",
        title: "Prediction performance of the different predictors".into(),
        tables: vec![("prediction rate & accuracy".into(), table)],
        notes: vec![
            "paper: stride ~53%, CAP ~61%, hybrid ~67% avg prediction rate".into(),
            "paper: hybrid accuracy ~98.9%; CAP > stride everywhere except MM".into(),
        ],
    };
    (Fig5 { results }, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cap_predictor::metrics::PredictorStats;

    #[test]
    fn shapes_match_paper() {
        let (data, report) = run(&Scale::tiny());
        let rate = |r: &SuiteResults| r.suite_mean(PredictorStats::prediction_rate);
        // Ordering: hybrid >= cap > stride on average.
        assert!(rate(data.hybrid()) > rate(data.stride()));
        assert!(rate(data.cap()) > rate(data.stride()));
        // MM inversion.
        let mm = |r: &SuiteResults| r.per_suite[&Suite::Mm].prediction_rate();
        assert!(mm(data.stride()) > mm(data.cap()), "MM must invert");
        // Table has 8 suites + average.
        assert_eq!(report.table("prediction rate & accuracy").len(), 9);
    }

    #[test]
    fn hybrid_accuracy_is_high() {
        let (data, _) = run(&Scale::tiny());
        assert!(data.hybrid().suite_mean(PredictorStats::accuracy) > 0.96);
    }
}
