//! Figure 7 — per-trace processor speedup over no-address-prediction, for
//! the enhanced stride and hybrid predictors (immediate update).
//!
//! Paper reference points: most traces land in the 10–25% range, hybrid
//! averages ≈21% with ≈6.3% over stride alone; JAVA shows outsized gains
//! (stack-model memory-op density); TPC/W95 gain least (LB contention).

use super::ExperimentReport;
use crate::runner::{geomean_speedup, run_speedup_sweep, PredictorFactory, Scale, SpeedupRow};
use crate::table::{ratio, Table};
use cap_trace::suites::Suite;
use cap_uarch::core::CoreConfig;

/// Raw results backing the figure.
#[derive(Debug)]
pub struct Fig7 {
    /// One row per trace; `with_prediction[0]` = stride, `[1]` = hybrid.
    pub rows: Vec<SpeedupRow>,
}

impl Fig7 {
    /// Geometric-mean speedup of the stride configuration.
    #[must_use]
    pub fn stride_geomean(&self) -> f64 {
        geomean_speedup(&self.rows, 0)
    }

    /// Geometric-mean speedup of the hybrid configuration.
    #[must_use]
    pub fn hybrid_geomean(&self) -> f64 {
        geomean_speedup(&self.rows, 1)
    }

    /// Geometric-mean hybrid speedup within one suite.
    #[must_use]
    pub fn suite_geomean(&self, suite: Suite, config: usize) -> f64 {
        let rows: Vec<SpeedupRow> = self
            .rows
            .iter()
            .filter(|r| r.suite == suite)
            .cloned()
            .collect();
        geomean_speedup(&rows, config)
    }
}

/// Runs the experiment.
#[must_use]
pub fn run(scale: &Scale) -> (Fig7, ExperimentReport) {
    let factories = [
        PredictorFactory::enhanced_stride(),
        PredictorFactory::hybrid(),
    ];
    let rows = run_speedup_sweep(scale, &factories, &CoreConfig::paper_default(), 0);

    let mut table = Table::new(vec![
        "trace".into(),
        "base IPC".into(),
        "stride speedup".into(),
        "hybrid speedup".into(),
    ]);
    for r in &rows {
        table.add_row(vec![
            r.trace.clone(),
            format!("{:.2}", r.baseline.ipc()),
            ratio(r.speedup(0)),
            ratio(r.speedup(1)),
        ]);
    }
    let data = Fig7 { rows };
    let mut summary = Table::new(vec![
        "aggregate".into(),
        "stride".into(),
        "hybrid".into(),
    ]);
    summary.add_row(vec![
        "geomean speedup".into(),
        ratio(data.stride_geomean()),
        ratio(data.hybrid_geomean()),
    ]);

    let report = ExperimentReport {
        id: "fig7",
        title: "Relative performance of enhanced stride and hybrid address predictors".into(),
        tables: vec![
            ("per-trace speedup".into(), table),
            ("summary".into(), summary),
        ],
        notes: vec![
            "paper: average speedup ~1.21 (hybrid), ~6.3% above enhanced stride".into(),
            "paper: JAVA traces gain most; TPC/W95 least".into(),
        ],
    };
    (data, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hybrid_beats_stride_and_baseline() {
        let (data, _) = run(&Scale::tiny());
        assert!(data.hybrid_geomean() > 1.0, "hybrid must speed up");
        assert!(
            data.hybrid_geomean() >= data.stride_geomean() - 1e-6,
            "hybrid {:.3} must not lose to stride {:.3}",
            data.hybrid_geomean(),
            data.stride_geomean()
        );
    }

    #[test]
    fn one_row_per_trace() {
        let (data, report) = run(&Scale::tiny());
        assert_eq!(data.rows.len(), 8);
        assert_eq!(report.table("per-trace speedup").len(), 8);
    }
}
