//! Figure 12 — per-suite speedups for the enhanced stride and hybrid
//! predictors, under immediate update and under a prediction gap of 8
//! cycles.
//!
//! Paper reference points: speedups shrink under the gap but remain
//! significant — the hybrid averages ≈14.1% at gap 8 (down from ≈21%
//! immediate), staying ≈3.9% ahead of the enhanced stride.

use super::ExperimentReport;
use crate::runner::{
    geomean_speedup, run_speedup_sweep, PredictorFactory, Scale, SpeedupRow,
};
use crate::table::{ratio, Table};
use cap_predictor::hybrid::{HybridConfig, HybridPredictor};
use cap_predictor::load_buffer::LoadBufferConfig;
use cap_predictor::stride::{StrideParams, StridePredictor};
use cap_trace::suites::Suite;
use cap_uarch::core::CoreConfig;

/// Instruction gap corresponding to the paper's 8-cycle gap (IPC ≈ 2).
pub const GAP_8_CYCLES: usize = 16;

/// Raw results backing the figure.
#[derive(Debug)]
pub struct Fig12 {
    /// Immediate-update rows (`with_prediction[0]` stride, `[1]` hybrid).
    pub immediate: Vec<SpeedupRow>,
    /// Gap-8 rows (same layout; pipelined predictor configurations).
    pub gapped: Vec<SpeedupRow>,
}

impl Fig12 {
    fn suite_rows(rows: &[SpeedupRow], suite: Suite) -> Vec<SpeedupRow> {
        rows.iter().filter(|r| r.suite == suite).cloned().collect()
    }

    /// Geomean speedup for (suite, config, gapped?).
    #[must_use]
    pub fn suite_speedup(&self, suite: Suite, config: usize, gapped: bool) -> f64 {
        let rows = Self::suite_rows(if gapped { &self.gapped } else { &self.immediate }, suite);
        geomean_speedup(&rows, config)
    }

    /// Overall geomean speedup for (config, gapped?).
    #[must_use]
    pub fn overall_speedup(&self, config: usize, gapped: bool) -> f64 {
        geomean_speedup(if gapped { &self.gapped } else { &self.immediate }, config)
    }
}

fn immediate_factories() -> [PredictorFactory; 2] {
    [
        PredictorFactory::enhanced_stride(),
        PredictorFactory::hybrid(),
    ]
}

fn pipelined_factories() -> [PredictorFactory; 2] {
    [
        PredictorFactory::new("stride", || {
            StridePredictor::new(
                LoadBufferConfig::paper_default(),
                StrideParams::paper_default(),
            )
        }),
        PredictorFactory::new("hybrid", || {
            HybridPredictor::new(HybridConfig::paper_pipelined())
        }),
    ]
}

/// Runs the experiment.
#[must_use]
pub fn run(scale: &Scale) -> (Fig12, ExperimentReport) {
    let core = CoreConfig::paper_default();
    let immediate = run_speedup_sweep(scale, &immediate_factories(), &core, 0);
    let gapped = run_speedup_sweep(scale, &pipelined_factories(), &core, GAP_8_CYCLES);
    let data = Fig12 { immediate, gapped };

    let mut table = Table::new(vec![
        "suite".into(),
        "stride imm".into(),
        "stride gap8".into(),
        "hybrid imm".into(),
        "hybrid gap8".into(),
    ]);
    for suite in Suite::ALL {
        table.add_row(vec![
            suite.name().into(),
            ratio(data.suite_speedup(suite, 0, false)),
            ratio(data.suite_speedup(suite, 0, true)),
            ratio(data.suite_speedup(suite, 1, false)),
            ratio(data.suite_speedup(suite, 1, true)),
        ]);
    }
    table.add_row(vec![
        "Average".into(),
        ratio(data.overall_speedup(0, false)),
        ratio(data.overall_speedup(0, true)),
        ratio(data.overall_speedup(1, false)),
        ratio(data.overall_speedup(1, true)),
    ]);

    let report = ExperimentReport {
        id: "fig12",
        title: "Relative performance under a prediction gap of 8 cycles".into(),
        tables: vec![("per-suite geomean speedup".into(), table)],
        notes: vec![
            "paper: hybrid ~1.141 average at gap 8 (vs ~1.21 immediate)".into(),
            "paper: hybrid stays ~3.9% ahead of the enhanced stride at gap 8".into(),
        ],
    };
    (data, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_shrinks_but_preserves_speedup() {
        let (data, _) = run(&Scale::tiny());
        let imm = data.overall_speedup(1, false);
        let gap = data.overall_speedup(1, true);
        assert!(gap <= imm + 1e-9, "gap must not beat immediate: {gap:.3} vs {imm:.3}");
        assert!(gap > 1.0, "gapped hybrid must still help: {gap:.3}");
    }

    #[test]
    fn hybrid_stays_ahead_of_stride_at_gap() {
        let (data, _) = run(&Scale::tiny());
        let h = data.overall_speedup(1, true);
        let s = data.overall_speedup(0, true);
        assert!(
            h >= s - 1e-6,
            "hybrid {h:.3} must not lose to stride {s:.3} at gap 8"
        );
    }

    #[test]
    fn table_covers_all_suites() {
        let (_, report) = run(&Scale::tiny());
        assert_eq!(report.table("per-suite geomean speedup").len(), 9);
    }
}
