//! One module per table/figure of the paper's evaluation.
//!
//! Every experiment takes a [`crate::runner::Scale`] and returns an
//! [`ExperimentReport`] — the `repro` binary runs them at full scale, the
//! Criterion benches at bench scale, and the integration tests at tiny
//! scale, all through the same code path.

pub mod ext;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod text;

use crate::table::Table;

/// The rendered (and programmatically inspectable) result of one
/// experiment.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Short identifier (`"fig5"`, `"text-coverage"`, …).
    pub id: &'static str,
    /// Human-readable title.
    pub title: String,
    /// One or more named tables.
    pub tables: Vec<(String, Table)>,
    /// Free-form notes (paper reference values, caveats).
    pub notes: Vec<String>,
}

impl ExperimentReport {
    /// Finds a table by name.
    ///
    /// # Panics
    ///
    /// Panics if no table has that name.
    #[must_use]
    pub fn table(&self, name: &str) -> &Table {
        &self
            .tables
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("no table named {name} in {}", self.id))
            .1
    }
}

impl std::fmt::Display for ExperimentReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        for (name, table) in &self.tables {
            writeln!(f, "\n-- {name} --")?;
            write!(f, "{}", table.render())?;
        }
        if !self.notes.is_empty() {
            writeln!(f)?;
            for note in &self.notes {
                writeln!(f, "note: {note}")?;
            }
        }
        Ok(())
    }
}
