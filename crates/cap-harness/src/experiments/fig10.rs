//! Figure 10 — influence of Link-Table tags and control-flow (path)
//! indications on stand-alone CAP.
//!
//! Paper reference points: no-tag CAP predicts 64.2% with a 3.3%
//! misprediction rate; 4 tag bits cut mispredictions by ~57% while losing
//! only ~2% prediction rate; 8 bits cut another ~26%; adding path
//! information reaches ~0.7% — tags are the single most effective
//! confidence mechanism.

use super::ExperimentReport;
use crate::runner::{run_suite_sweep, PredictorFactory, Scale, SuiteResults};
use crate::table::{pct, pct2, Table};
use cap_predictor::cap::{CapConfig, CapPredictor};
use cap_predictor::confidence::CfiMode;
use cap_predictor::metrics::PredictorStats;

/// The variants swept, as (label, tag bits, path indications on).
pub const VARIANTS: [(&str, u32, bool); 5] = [
    ("no tag", 0, false),
    ("4 bit tag", 4, false),
    ("8 bit tag", 8, false),
    ("4 bit tag + path", 4, true),
    ("8 bit tag + path", 8, true),
];

/// Raw results backing the figure.
#[derive(Debug)]
pub struct Fig10 {
    /// Suite-mean (prediction rate, misprediction rate) per variant.
    pub rates: Vec<(f64, f64)>,
}

/// Runs the experiment.
#[must_use]
pub fn run(scale: &Scale) -> (Fig10, ExperimentReport) {
    let factories: Vec<PredictorFactory> = VARIANTS
        .iter()
        .map(|&(label, tag_bits, path)| {
            PredictorFactory::new(label, move || {
                let mut cfg = CapConfig::paper_default();
                cfg.params.history.tag_bits = tag_bits;
                cfg.params.cfi = if path {
                    CfiMode::LastMisprediction { bits: 4 }
                } else {
                    CfiMode::Off
                };
                CapPredictor::new(cfg)
            })
        })
        .collect();
    let results = run_suite_sweep(scale, &factories, 0);
    let rates: Vec<(f64, f64)> = results
        .iter()
        .map(|r: &SuiteResults| {
            (
                r.suite_mean(PredictorStats::prediction_rate),
                r.suite_mean(PredictorStats::misprediction_rate),
            )
        })
        .collect();

    let mut table = Table::new(vec![
        "variant".into(),
        "prediction rate".into(),
        "misprediction rate".into(),
    ]);
    for (&(label, _, _), &(rate, mis)) in VARIANTS.iter().zip(&rates) {
        table.add_row(vec![label.to_owned(), pct(rate), pct2(mis)]);
    }

    let data = Fig10 { rates };
    let report = ExperimentReport {
        id: "fig10",
        title: "Influence of LT tags on the CAP predictor performance".into(),
        tables: vec![("tag/path ablation".into(), table)],
        notes: vec![
            "paper: no-tag 64.2% @ 3.3% mispred; 4-bit tags -57% mispred for -2% rate".into(),
            "paper: 8-bit tags a further -26%; +path reaches ~0.7%".into(),
        ],
    };
    (data, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_cut_mispredictions_substantially() {
        let (data, _) = run(&Scale::tiny());
        let (rate_no, mis_no) = data.rates[0];
        let (rate_8, mis_8) = data.rates[2];
        assert!(
            mis_8 < mis_no * 0.6,
            "8-bit tags must cut mispredictions hard: {mis_8:.4} vs {mis_no:.4}"
        );
        assert!(
            rate_8 > rate_no - 0.08,
            "tags must only marginally reduce the rate: {rate_8:.3} vs {rate_no:.3}"
        );
    }

    #[test]
    fn path_indication_helps_on_top_of_tags() {
        let (data, _) = run(&Scale::tiny());
        let mis_tag = data.rates[2].1;
        let mis_tag_path = data.rates[4].1;
        assert!(
            mis_tag_path <= mis_tag + 1e-9,
            "path must not increase mispredictions: {mis_tag_path:.4} vs {mis_tag:.4}"
        );
    }

    #[test]
    fn misprediction_rates_monotone_nonincreasing_over_tag_bits() {
        let (data, _) = run(&Scale::tiny());
        assert!(data.rates[1].1 <= data.rates[0].1 + 1e-9);
        assert!(data.rates[2].1 <= data.rates[1].1 + 0.01);
    }
}
