//! In-text results that are tables in all but name:
//!
//! * **coverage** (§1): last-address predictors handle ~40% of loads,
//!   stride adds ~13% more.
//! * **lt-sweep** (§4.2): hybrid prediction rate grows from ~63% at a
//!   1K-entry LT to ~68% at 8K; LT associativity has low impact.
//! * **update-policy** (§4.3): *update always* slightly beats the two
//!   selective policies.
//! * **control-based** (§3.6): g-share and call-path address predictors
//!   perform poorly relative to CAP.
//! * **pollution** (§3.5): PF bits protect the LT from irregular loads.

use super::ExperimentReport;
use crate::runner::{run_suite_sweep, PredictorFactory, Scale, SuiteResults};
use crate::table::{pct, pct2, Table};
use cap_predictor::cap::{CapConfig, CapPredictor};
use cap_predictor::control_based::{ControlBasedConfig, ControlBasedPredictor, ControlIndex};
use cap_predictor::hybrid::{HybridConfig, HybridPredictor, LtUpdatePolicy};
use cap_predictor::link_table::PfMode;
use cap_predictor::load_buffer::LoadBufferConfig;
use cap_predictor::metrics::PredictorStats;
use cap_predictor::stride::{StrideParams, StridePredictor};

/// §1 coverage: last-address vs plain stride vs enhanced stride.
#[must_use]
pub fn coverage(scale: &Scale) -> (Vec<SuiteResults>, ExperimentReport) {
    let factories = [
        PredictorFactory::last_address(),
        PredictorFactory::new("plain-stride", || {
            StridePredictor::new(LoadBufferConfig::paper_default(), StrideParams::plain())
        }),
        PredictorFactory::enhanced_stride(),
        PredictorFactory::cap(),
        PredictorFactory::hybrid(),
    ];
    let results = run_suite_sweep(scale, &factories, 0);
    let mut table = Table::new(vec![
        "predictor".into(),
        "correct spec / loads".into(),
        "prediction rate".into(),
        "accuracy".into(),
    ]);
    for r in &results {
        table.add_row(vec![
            r.name.clone(),
            pct(r.suite_mean(PredictorStats::correct_spec_rate)),
            pct(r.suite_mean(PredictorStats::prediction_rate)),
            pct2(r.suite_mean(PredictorStats::accuracy)),
        ]);
    }
    let report = ExperimentReport {
        id: "text-coverage",
        title: "Coverage of the prior-art and proposed predictors (§1)".into(),
        tables: vec![("suite-mean coverage".into(), table)],
        notes: vec![
            "paper: last-address ~40% of loads; stride ~+13% more (~53%)".into(),
            "paper: CAP ~61%, hybrid ~67%".into(),
        ],
    };
    (results, report)
}

/// §4.2 LT size sweep (and associativity check).
#[must_use]
pub fn lt_sweep(scale: &Scale) -> (Vec<SuiteResults>, ExperimentReport) {
    const SIZES: [usize; 4] = [1024, 2048, 4096, 8192];
    let mut factories: Vec<PredictorFactory> = SIZES
        .iter()
        .map(|&entries| {
            PredictorFactory::new(&format!("LT {}K", entries / 1024), move || {
                let mut cfg = HybridConfig::paper_default();
                cfg.lt.entries = entries;
                cfg.cap.history.index_bits = entries.trailing_zeros();
                HybridPredictor::new(cfg)
            })
        })
        .collect();
    factories.push(PredictorFactory::new("LT 4K 2-way", || {
        let mut cfg = HybridConfig::paper_default();
        cfg.lt.assoc = 2;
        cfg.cap.history.index_bits = 11; // 2048 sets
        HybridPredictor::new(cfg)
    }));
    let results = run_suite_sweep(scale, &factories, 0);
    let mut table = Table::new(vec![
        "LT configuration".into(),
        "hybrid prediction rate".into(),
        "accuracy".into(),
    ]);
    for r in &results {
        table.add_row(vec![
            r.name.clone(),
            pct(r.suite_mean(PredictorStats::prediction_rate)),
            pct2(r.suite_mean(PredictorStats::accuracy)),
        ]);
    }
    let report = ExperimentReport {
        id: "text-lt-sweep",
        title: "Hybrid prediction rate vs Link Table size (§4.2)".into(),
        tables: vec![("LT sweep".into(), table)],
        notes: vec![
            "paper: ~63% at 1K entries rising steadily to ~68% at 8K".into(),
            "paper: LT associativity has low impact (even history distribution)".into(),
        ],
    };
    (results, report)
}

/// §4.3 LT update policies.
#[must_use]
pub fn update_policy(scale: &Scale) -> (Vec<SuiteResults>, ExperimentReport) {
    let policies = [
        ("always", LtUpdatePolicy::Always),
        ("unless stride correct", LtUpdatePolicy::UnlessStrideCorrect),
        (
            "unless stride correct+selected",
            LtUpdatePolicy::UnlessStrideCorrectAndSelected,
        ),
    ];
    let factories: Vec<PredictorFactory> = policies
        .iter()
        .map(|&(label, policy)| {
            PredictorFactory::new(label, move || {
                let mut cfg = HybridConfig::paper_default();
                cfg.lt_update = policy;
                HybridPredictor::new(cfg)
            })
        })
        .collect();
    let results = run_suite_sweep(scale, &factories, 0);
    let mut table = Table::new(vec![
        "update policy".into(),
        "prediction rate".into(),
        "accuracy".into(),
    ]);
    for r in &results {
        table.add_row(vec![
            r.name.clone(),
            pct(r.suite_mean(PredictorStats::prediction_rate)),
            pct2(r.suite_mean(PredictorStats::accuracy)),
        ]);
    }
    let report = ExperimentReport {
        id: "text-update-policy",
        title: "LT update policy comparison (§4.3)".into(),
        tables: vec![("policies".into(), table)],
        notes: vec![
            "paper: 'update always' gives slightly better results on almost all traces".into(),
        ],
    };
    (results, report)
}

/// §3.6 control-based address predictors (negative result).
#[must_use]
pub fn control_based(scale: &Scale) -> (Vec<SuiteResults>, ExperimentReport) {
    let factories = [
        PredictorFactory::new("gshare-address", || {
            ControlBasedPredictor::new(ControlBasedConfig {
                index: ControlIndex::GShare,
                ..ControlBasedConfig::default()
            })
        }),
        PredictorFactory::new("callpath-address", || {
            ControlBasedPredictor::new(ControlBasedConfig {
                index: ControlIndex::CallPath,
                ..ControlBasedConfig::default()
            })
        }),
        PredictorFactory::cap(),
    ];
    let results = run_suite_sweep(scale, &factories, 0);
    let mut table = Table::new(vec![
        "predictor".into(),
        "correct spec / loads".into(),
        "prediction rate".into(),
    ]);
    for r in &results {
        table.add_row(vec![
            r.name.clone(),
            pct(r.suite_mean(PredictorStats::correct_spec_rate)),
            pct(r.suite_mean(PredictorStats::prediction_rate)),
        ]);
    }
    let report = ExperimentReport {
        id: "text-control-based",
        title: "Control-based address predictors (§3.6, negative result)".into(),
        tables: vec![("control-based vs CAP".into(), table)],
        notes: vec![
            "paper: loads are poorly correlated to individual branches; path history is better but still no substitute for CAP".into(),
        ],
    };
    (results, report)
}

/// §3.5 pollution-free bits ablation.
#[must_use]
pub fn pollution(scale: &Scale) -> (Vec<SuiteResults>, ExperimentReport) {
    let modes = [
        ("PF off", PfMode::Off),
        ("PF inline", PfMode::Inline),
        (
            "PF decoupled",
            PfMode::Decoupled {
                extra_index_bits: 2,
            },
        ),
    ];
    let factories: Vec<PredictorFactory> = modes
        .iter()
        .map(|&(label, mode)| {
            PredictorFactory::new(label, move || {
                let mut cfg = CapConfig::paper_default();
                cfg.lt.pf_mode = mode;
                CapPredictor::new(cfg)
            })
        })
        .collect();
    let results = run_suite_sweep(scale, &factories, 0);
    let mut table = Table::new(vec![
        "PF mode".into(),
        "prediction rate".into(),
        "correct spec / loads".into(),
        "accuracy".into(),
    ]);
    for r in &results {
        table.add_row(vec![
            r.name.clone(),
            pct(r.suite_mean(PredictorStats::prediction_rate)),
            pct(r.suite_mean(PredictorStats::correct_spec_rate)),
            pct2(r.suite_mean(PredictorStats::accuracy)),
        ]);
    }
    let report = ExperimentReport {
        id: "text-pollution",
        title: "Pollution-free bits ablation (§3.5)".into(),
        tables: vec![("PF modes".into(), table)],
        notes: vec![
            "paper: PF bits keep irregular and over-long sequences from evicting useful links, at the cost of longer training".into(),
        ],
    };
    (results, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Scale;

    #[test]
    fn coverage_ordering_matches_paper() {
        let (results, _) = coverage(&Scale::tiny());
        let rate = |i: usize| results[i].suite_mean(PredictorStats::correct_spec_rate);
        let last = rate(0);
        let enhanced = rate(2);
        let hybrid = rate(4);
        assert!(last > 0.15, "last-address must cover a real fraction: {last:.3}");
        assert!(enhanced > last, "stride must add coverage over last-address");
        assert!(hybrid > enhanced, "hybrid must add coverage over stride");
    }

    #[test]
    fn lt_growth_helps() {
        let (results, _) = lt_sweep(&Scale::tiny());
        let r1k = results[0].suite_mean(PredictorStats::prediction_rate);
        let r8k = results[3].suite_mean(PredictorStats::prediction_rate);
        assert!(r8k > r1k, "8K LT {r8k:.3} must beat 1K {r1k:.3}");
    }

    #[test]
    fn control_based_is_poor() {
        let (results, _) = control_based(&Scale::tiny());
        let gshare = results[0].suite_mean(PredictorStats::correct_spec_rate);
        let cap = results[2].suite_mean(PredictorStats::correct_spec_rate);
        assert!(
            cap > gshare + 0.1,
            "CAP {cap:.3} must clearly beat gshare-address {gshare:.3}"
        );
    }

    #[test]
    fn update_policy_reports_three_rows() {
        let (_, report) = update_policy(&Scale::tiny());
        assert_eq!(report.table("policies").len(), 3);
    }

    #[test]
    fn pf_protects_against_pollution() {
        let (results, _) = pollution(&Scale::tiny());
        let off = results[0].suite_mean(PredictorStats::correct_spec_rate);
        let inline = results[1].suite_mean(PredictorStats::correct_spec_rate);
        assert!(
            inline >= off - 0.02,
            "PF must not cost coverage: {inline:.3} vs {off:.3}"
        );
    }
}
