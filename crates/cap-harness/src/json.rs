//! Hand-rolled JSON emission, shared by every JSON producer in the
//! workspace (the repro driver's `--json` report, the simulate CLI's
//! outcome report, and the prediction service's stats endpoint).
//!
//! The workspace is dependency-free by design, so this is a small
//! builder, not a serializer: callers state each field explicitly, and
//! floating-point values that must compare bit-exactly across runs are
//! emitted via `f64::to_bits` by the caller (see the `*_bits`
//! convention in the reports).
//!
//! [`JsonObject::pretty`] renders one field per line — scripts grep
//! those lines (see `scripts/verify.sh`), so that shape is a contract.

/// Minimal JSON string escaping (quotes, backslashes, control chars).
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// An ordered JSON object under construction. Fields render in
/// insertion order; keys are emitted as given (keep them simple).
#[derive(Debug, Default, Clone)]
pub struct JsonObject {
    fields: Vec<(String, String)>,
}

impl JsonObject {
    /// An empty object.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn push(mut self, key: &str, rendered: String) -> Self {
        self.fields.push((key.to_owned(), rendered));
        self
    }

    /// Adds an escaped string field.
    #[must_use]
    pub fn string(self, key: &str, value: &str) -> Self {
        self.push(key, format!("\"{}\"", escape(value)))
    }

    /// Adds a string field, or `null` when absent.
    #[must_use]
    pub fn opt_string(self, key: &str, value: Option<&str>) -> Self {
        match value {
            Some(v) => self.string(key, v),
            None => self.push(key, "null".to_owned()),
        }
    }

    /// Adds an unsigned integer field.
    #[must_use]
    pub fn u64(self, key: &str, value: u64) -> Self {
        self.push(key, value.to_string())
    }

    /// Adds a signed integer field (gauges can go negative).
    #[must_use]
    pub fn i64(self, key: &str, value: i64) -> Self {
        self.push(key, value.to_string())
    }

    /// Adds a fixed-decimals float field (human-facing values only;
    /// bit-exact values go through `f64::to_bits` and [`JsonObject::u64`]).
    #[must_use]
    pub fn f64(self, key: &str, value: f64, decimals: usize) -> Self {
        self.push(key, format!("{value:.decimals$}"))
    }

    /// Adds a boolean field.
    #[must_use]
    pub fn bool(self, key: &str, value: bool) -> Self {
        self.push(key, value.to_string())
    }

    /// Adds a pre-rendered JSON value verbatim (nested objects/arrays).
    #[must_use]
    pub fn raw(self, key: &str, rendered_json: &str) -> Self {
        self.push(key, rendered_json.to_owned())
    }

    /// Adds an array of pre-rendered JSON values.
    #[must_use]
    pub fn array(self, key: &str, items: impl IntoIterator<Item = String>) -> Self {
        let items: Vec<String> = items.into_iter().collect();
        self.push(key, format!("[{}]", items.join(", ")))
    }

    /// Compact single-line rendering (wire payloads, nesting).
    #[must_use]
    pub fn compact(&self) -> String {
        let body: Vec<String> = self
            .fields
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect();
        format!("{{{}}}", body.join(", "))
    }

    /// Pretty rendering: one field per line, two-space indent, nested
    /// raw values re-indented. Scripts grep these lines — one field per
    /// line is a stable contract, field order is insertion order.
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            let sep = if i + 1 < self.fields.len() { "," } else { "" };
            let v = v.replace('\n', "\n  ");
            out.push_str(&format!("  \"{k}\": {v}{sep}\n"));
        }
        out.push('}');
        out
    }
}

/// Renders a telemetry registry snapshot as JSON: counters and gauges
/// as name→value maps, histograms with their shape and log-bucket
/// quantiles, and the trace-event tail. Purely a function of the
/// snapshot (no wall-clock, no float formatting beyond integers), so
/// identical snapshots render byte-identical JSON — the golden test
/// holds this rendering stable.
#[must_use]
pub fn obs_snapshot_json(snap: &cap_obs::StatsSnapshot) -> JsonObject {
    let mut counters = JsonObject::new();
    for (name, value) in &snap.counters {
        counters = counters.u64(name, *value);
    }
    let mut gauges = JsonObject::new();
    for (name, value) in &snap.gauges {
        gauges = gauges.i64(name, *value);
    }
    let mut histograms = JsonObject::new();
    for (name, h) in &snap.histograms {
        let rendered = JsonObject::new()
            .u64("count", h.count)
            .u64("sum", h.sum)
            .u64("min", h.min)
            .u64("max", h.max)
            .u64("p50", h.p50())
            .u64("p90", h.p90())
            .u64("p99", h.p99())
            .compact();
        histograms = histograms.raw(name, &rendered);
    }
    let events = snap.events.iter().map(|e| {
        JsonObject::new()
            .u64("seq", e.seq)
            .string("name", &e.name)
            .string("kind", e.kind.name())
            .u64("value", e.value)
            .compact()
    });
    JsonObject::new()
        .raw("counters", &counters.compact())
        .raw("gauges", &gauges.compact())
        .raw("histograms", &histograms.compact())
        .array("events", events)
        .u64("dropped_events", snap.dropped_events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_the_awkward_characters() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn compact_renders_in_insertion_order() {
        let obj = JsonObject::new()
            .string("name", "x\"y")
            .u64("count", 3)
            .bool("ok", true)
            .opt_string("missing", None)
            .f64("secs", 1.5, 3);
        assert_eq!(
            obj.compact(),
            "{\"name\": \"x\\\"y\", \"count\": 3, \"ok\": true, \
             \"missing\": null, \"secs\": 1.500}"
        );
    }

    #[test]
    fn pretty_puts_one_field_per_line() {
        let obj = JsonObject::new().u64("a", 1).string("b", "two");
        assert_eq!(obj.pretty(), "{\n  \"a\": 1,\n  \"b\": \"two\"\n}");
        // The greppable contract: every field is findable by line.
        assert!(obj.pretty().lines().any(|l| l.contains("\"a\": 1")));
    }

    #[test]
    fn arrays_and_nesting_compose() {
        let inner = JsonObject::new().u64("id", 7).compact();
        let obj = JsonObject::new()
            .array("items", [inner.clone(), inner])
            .raw("nested", &JsonObject::new().bool("deep", false).compact());
        let text = obj.compact();
        assert_eq!(
            text,
            "{\"items\": [{\"id\": 7}, {\"id\": 7}], \"nested\": {\"deep\": false}}"
        );
    }

    #[test]
    fn pretty_reindents_nested_pretty_values() {
        let nested = JsonObject::new().u64("x", 1).pretty();
        let outer = JsonObject::new().raw("inner", &nested).pretty();
        assert_eq!(outer, "{\n  \"inner\": {\n    \"x\": 1\n  }\n}");
    }
}
