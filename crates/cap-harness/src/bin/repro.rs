//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro all                  # every experiment at full scale
//! repro fig5 fig9            # a subset
//! repro fig7 --quick         # reduced scale (bench-sized)
//! repro list                 # enumerate experiment ids
//! ```

use cap_harness::experiments::{ext, fig10, fig11, fig12, fig5, fig6, fig7, fig8, fig9, text};
use cap_harness::runner::Scale;
use cap_harness::ExperimentReport;
use std::time::Instant;

const EXPERIMENTS: [&str; 19] = [
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "text-coverage",
    "text-lt-sweep",
    "text-update-policy",
    "text-control-based",
    "text-pollution",
    "ext-delta",
    "ext-variable-history",
    "ext-profile",
    "ext-value",
    "ext-prefetch",
    "ext-wrongpath",
];

fn run_one(id: &str, scale: &Scale) -> Option<ExperimentReport> {
    let report = match id {
        "fig5" => fig5::run(scale).1,
        "fig6" => fig6::run(scale).1,
        "fig7" => fig7::run(scale).1,
        "fig8" => fig8::run(scale).1,
        "fig9" => fig9::run(scale).1,
        "fig10" => fig10::run(scale).1,
        "fig11" => fig11::run(scale).1,
        "fig12" => fig12::run(scale).1,
        "text-coverage" => text::coverage(scale).1,
        "text-lt-sweep" => text::lt_sweep(scale).1,
        "text-update-policy" => text::update_policy(scale).1,
        "text-control-based" => text::control_based(scale).1,
        "text-pollution" => text::pollution(scale).1,
        "ext-delta" => ext::delta_correlation(scale).1,
        "ext-variable-history" => ext::variable_history(scale).1,
        "ext-profile" => ext::profile_guided(scale).1,
        "ext-value" => ext::value_vs_address(scale).1,
        "ext-prefetch" => ext::prefetch(scale).1,
        "ext-wrongpath" => ext::wrong_path(scale).1,
        _ => return None,
    };
    Some(report)
}

/// Prints the catalog's trace characterisation (the §2-style analysis).
fn print_trace_stats(scale: &Scale) {
    use cap_harness::table::{pct, Table};
    use cap_trace::stats::TraceStats;
    let mut table = Table::new(vec![
        "trace".into(),
        "instrs".into(),
        "loads".into(),
        "static loads".into(),
        "unique addrs".into(),
        "constant".into(),
        "stride".into(),
    ]);
    for spec in scale.traces() {
        let trace = spec.generate(scale.loads_per_trace);
        let s = TraceStats::compute(&trace);
        table.add_row(vec![
            spec.name.to_owned(),
            s.instructions.to_string(),
            s.loads.to_string(),
            s.static_loads.to_string(),
            s.unique_addresses.to_string(),
            pct(s.constant_fraction),
            pct(s.stride_fraction),
        ]);
    }
    println!("== trace catalog characterisation ==\n");
    print!("{}", table.render());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::bench() } else { Scale::full() };
    let selected: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();

    if selected.is_empty() || selected.contains(&"help") {
        eprintln!("usage: repro <experiment|all|list|stats> [--quick]");
        eprintln!("experiments: {}", EXPERIMENTS.join(", "));
        std::process::exit(selected.is_empty() as i32);
    }
    if selected.contains(&"list") {
        for id in EXPERIMENTS {
            println!("{id}");
        }
        return;
    }
    if selected.contains(&"stats") {
        print_trace_stats(&scale);
        return;
    }

    let ids: Vec<&str> = if selected.contains(&"all") {
        EXPERIMENTS.to_vec()
    } else {
        selected
    };

    for id in ids {
        let start = Instant::now();
        match run_one(id, &scale) {
            Some(report) => {
                println!("{report}");
                println!("[{id} completed in {:.1?}]\n", start.elapsed());
            }
            None => {
                eprintln!("unknown experiment '{id}' (try 'repro list')");
                std::process::exit(1);
            }
        }
    }
}
