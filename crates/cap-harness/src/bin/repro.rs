//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro all                  # every experiment at full scale
//! repro fig5 fig9            # a subset
//! repro fig7 --quick         # reduced scale (bench-sized)
//! repro list                 # enumerate experiment ids
//! ```
//!
//! Resilience flags (the chaos-hardened batch mode):
//!
//! ```text
//! --keep-going               # a panicking experiment doesn't stop the batch
//! --budget-secs <n>          # per-experiment wall-clock budget
//! --json <path>              # write a machine-readable results summary
//! --tiny                     # minimal scale (integration-test sized)
//! --inject-panic <id>        # force <id> to panic (resilience self-test)
//! ```
//!
//! Each experiment runs on its own thread behind `catch_unwind`, so a
//! panic (or a blown budget) is recorded as that experiment's outcome and
//! the partial-results JSON is still emitted — the batch never loses the
//! figures that *did* reproduce.

use cap_harness::experiments::{ext, fig10, fig11, fig12, fig5, fig6, fig7, fig8, fig9, text};
use cap_harness::json::JsonObject;
use cap_harness::runner::Scale;
use cap_harness::ExperimentReport;
use std::sync::mpsc;
use std::time::{Duration, Instant};

const EXPERIMENTS: [&str; 19] = [
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "text-coverage",
    "text-lt-sweep",
    "text-update-policy",
    "text-control-based",
    "text-pollution",
    "ext-delta",
    "ext-variable-history",
    "ext-profile",
    "ext-value",
    "ext-prefetch",
    "ext-wrongpath",
];

fn run_one(id: &str, scale: &Scale) -> Option<ExperimentReport> {
    let report = match id {
        "fig5" => fig5::run(scale).1,
        "fig6" => fig6::run(scale).1,
        "fig7" => fig7::run(scale).1,
        "fig8" => fig8::run(scale).1,
        "fig9" => fig9::run(scale).1,
        "fig10" => fig10::run(scale).1,
        "fig11" => fig11::run(scale).1,
        "fig12" => fig12::run(scale).1,
        "text-coverage" => text::coverage(scale).1,
        "text-lt-sweep" => text::lt_sweep(scale).1,
        "text-update-policy" => text::update_policy(scale).1,
        "text-control-based" => text::control_based(scale).1,
        "text-pollution" => text::pollution(scale).1,
        "ext-delta" => ext::delta_correlation(scale).1,
        "ext-variable-history" => ext::variable_history(scale).1,
        "ext-profile" => ext::profile_guided(scale).1,
        "ext-value" => ext::value_vs_address(scale).1,
        "ext-prefetch" => ext::prefetch(scale).1,
        "ext-wrongpath" => ext::wrong_path(scale).1,
        _ => return None,
    };
    Some(report)
}

/// Prints the catalog's trace characterisation (the §2-style analysis).
fn print_trace_stats(scale: &Scale) {
    use cap_harness::table::{pct, Table};
    use cap_trace::stats::TraceStats;
    let mut table = Table::new(vec![
        "trace".into(),
        "instrs".into(),
        "loads".into(),
        "static loads".into(),
        "unique addrs".into(),
        "constant".into(),
        "stride".into(),
    ]);
    for spec in scale.traces() {
        let trace = spec.generate(scale.loads_per_trace);
        let s = TraceStats::compute(&trace);
        table.add_row(vec![
            spec.name.to_owned(),
            s.instructions.to_string(),
            s.loads.to_string(),
            s.static_loads.to_string(),
            s.unique_addresses.to_string(),
            pct(s.constant_fraction),
            pct(s.stride_fraction),
        ]);
    }
    println!("== trace catalog characterisation ==\n");
    print!("{}", table.render());
}

/// How one experiment ended.
enum Status {
    Ok,
    Panicked(String),
    TimedOut,
}

impl Status {
    fn as_str(&self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Panicked(_) => "panicked",
            Status::TimedOut => "timed-out",
        }
    }
}

struct Outcome {
    id: &'static str,
    status: Status,
    seconds: f64,
}

/// Runs one experiment on its own thread behind `catch_unwind`, bounded by
/// `budget`. A panic becomes `Status::Panicked`; exceeding the budget
/// becomes `Status::TimedOut` (the runaway thread is detached — its result,
/// if it ever arrives, is dropped with the channel).
fn run_isolated(id: &'static str, scale: Scale, budget: Option<Duration>, inject: bool) -> Outcome {
    let start = Instant::now();
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let result = std::panic::catch_unwind(move || {
            if inject {
                panic!("injected panic (--inject-panic {id})");
            }
            run_one(id, &scale)
        });
        // A send failure means the main thread timed out and dropped the
        // receiver; nothing to do.
        let _ = tx.send(result);
    });
    let status = match budget {
        Some(limit) => rx.recv_timeout(limit),
        None => rx.recv().map_err(mpsc::RecvTimeoutError::from),
    }
    .map_or(Status::TimedOut, |result| match result {
        Ok(report) => {
            if let Some(report) = report {
                println!("{report}");
            }
            Status::Ok
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic with non-string payload".to_owned());
            Status::Panicked(msg)
        }
    });
    Outcome {
        id,
        status,
        seconds: start.elapsed().as_secs_f64(),
    }
}

/// Renders the partial-results summary via the workspace's shared JSON
/// emitter ([`cap_harness::json`]).
fn results_json(scale_name: &str, outcomes: &[Outcome]) -> String {
    let experiments = outcomes.iter().map(|o| {
        let mut entry = JsonObject::new()
            .string("id", o.id)
            .string("status", o.status.as_str())
            .f64("seconds", o.seconds, 3);
        if let Status::Panicked(msg) = &o.status {
            entry = entry.string("error", msg);
        }
        entry.compact()
    });
    let ok = outcomes.iter().filter(|o| matches!(o.status, Status::Ok)).count();
    let mut body = JsonObject::new()
        .string("scale", scale_name)
        .array("experiments", experiments)
        .u64("ok", ok as u64)
        .u64("failed", (outcomes.len() - ok) as u64)
        .pretty();
    body.push('\n');
    body
}

/// Takes the value following a `--flag value` pair out of `args`.
fn take_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("{flag} requires a value");
        std::process::exit(2);
    }
    let value = args.remove(i + 1);
    args.remove(i);
    Some(value)
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    let i = args.iter().position(|a| a == flag);
    if let Some(i) = i {
        args.remove(i);
    }
    i.is_some()
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let quick = take_flag(&mut args, "--quick");
    let tiny = take_flag(&mut args, "--tiny");
    let keep_going = take_flag(&mut args, "--keep-going");
    let budget = take_value(&mut args, "--budget-secs").map(|v| {
        Duration::from_secs(v.parse().unwrap_or_else(|_| {
            eprintln!("--budget-secs wants a number of seconds, got '{v}'");
            std::process::exit(2);
        }))
    });
    let json_path = take_value(&mut args, "--json");
    let inject_panic = take_value(&mut args, "--inject-panic");

    let (scale, scale_name) = if tiny {
        (Scale::tiny(), "tiny")
    } else if quick {
        (Scale::bench(), "quick")
    } else {
        (Scale::full(), "full")
    };

    let selected: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();

    if selected.is_empty() || selected.contains(&"help") {
        eprintln!("usage: repro <experiment|all|list|stats> [--quick|--tiny]");
        eprintln!("       [--keep-going] [--budget-secs <n>] [--json <path>]");
        eprintln!("experiments: {}", EXPERIMENTS.join(", "));
        std::process::exit(selected.is_empty() as i32);
    }
    if selected.contains(&"list") {
        for id in EXPERIMENTS {
            println!("{id}");
        }
        return;
    }
    if selected.contains(&"stats") {
        print_trace_stats(&scale);
        return;
    }

    // Resolve every id up front (to the 'static names threads can carry);
    // unknown ids fail the whole invocation before anything runs.
    let ids: Vec<&'static str> = if selected.contains(&"all") {
        EXPERIMENTS.to_vec()
    } else {
        selected
            .iter()
            .map(|want| {
                EXPERIMENTS
                    .iter()
                    .copied()
                    .find(|id| id == want)
                    .unwrap_or_else(|| {
                        eprintln!("unknown experiment '{want}' (try 'repro list')");
                        std::process::exit(1);
                    })
            })
            .collect()
    };

    let mut outcomes: Vec<Outcome> = Vec::with_capacity(ids.len());
    let mut failed = false;
    for id in ids {
        let inject = inject_panic.as_deref() == Some(id);
        let outcome = run_isolated(id, scale, budget, inject);
        match &outcome.status {
            Status::Ok => println!("[{id} completed in {:.1}s]\n", outcome.seconds),
            Status::Panicked(msg) => eprintln!("[{id} PANICKED after {:.1}s: {msg}]\n", outcome.seconds),
            Status::TimedOut => eprintln!("[{id} TIMED OUT after {:.1}s budget]\n", outcome.seconds),
        }
        failed |= !matches!(outcome.status, Status::Ok);
        outcomes.push(outcome);
        if failed && !keep_going {
            break;
        }
    }

    // Partial results are emitted whatever happened above: explicitly
    // requested paths always, and a default path in batch (--keep-going)
    // mode so a chaos run never ends empty-handed.
    let json_target = json_path.or_else(|| keep_going.then(|| "repro-results.json".to_owned()));
    if let Some(path) = json_target {
        let json = results_json(scale_name, &outcomes);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("results written to {path}");
    }

    if failed && !keep_going {
        std::process::exit(1);
    }
}
