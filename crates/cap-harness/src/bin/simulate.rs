//! `simulate` — the supervised, checkpointed, resumable trace runner.
//!
//! ```text
//! simulate gen --out trace.txt [--suite <i>] [--loads <n>]
//! simulate run --trace trace.txt [--predictor stride|cap|hybrid]
//!          [--checkpoint-dir <dir>] [--checkpoint-every <n>] [--keep <k>]
//!          [--resume auto|<path>] [--kill-after <n>] [--chaos-every <n>]
//!          [--seed <s>] [--json]
//! ```
//!
//! `run` drives one predictor over a trace file, publishing
//! crash-consistent checkpoints every `--checkpoint-every` events. A run
//! that dies (or is told to die with `--kill-after`, which exits hard with
//! status 137 like a SIGKILL) can be restarted with `--resume auto`: the
//! newest valid checkpoint is recovered, torn files are swept up, and the
//! finished run's metrics are bit-identical to an uninterrupted one.

use cap_harness::supervisor::{
    run, PredictorKind, Resume, RunOutcome, SupervisorConfig, SupervisorError,
};
use cap_trace::io::write_trace;
use cap_trace::suites::catalog;
use std::path::PathBuf;
use std::process::exit;

/// Exit status of a `--kill-after` self-destruct (mirrors SIGKILL's 137).
const KILLED_STATUS: i32 = 137;

fn take_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("{flag} requires a value");
        exit(2);
    }
    let value = args.remove(i + 1);
    args.remove(i);
    Some(value)
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    let i = args.iter().position(|a| a == flag);
    if let Some(i) = i {
        args.remove(i);
    }
    i.is_some()
}

fn parse_number(flag: &str, value: &str) -> u64 {
    value.parse().unwrap_or_else(|_| {
        eprintln!("{flag} wants a non-negative integer, got '{value}'");
        exit(2);
    })
}

fn usage() -> ! {
    eprintln!("usage: simulate gen --out <path> [--suite <i>] [--loads <n>]");
    eprintln!("       simulate run --trace <path> [--predictor stride|cap|hybrid]");
    eprintln!("                [--checkpoint-dir <dir>] [--checkpoint-every <n>] [--keep <k>]");
    eprintln!("                [--resume auto|<path>] [--kill-after <n>] [--chaos-every <n>]");
    eprintln!("                [--seed <s>] [--json]");
    exit(2);
}

fn cmd_gen(mut args: Vec<String>) {
    let out: PathBuf = take_value(&mut args, "--out")
        .unwrap_or_else(|| {
            eprintln!("gen requires --out <path>");
            exit(2);
        })
        .into();
    let suite = take_value(&mut args, "--suite").map_or(1, |v| parse_number("--suite", &v)) as usize;
    let loads = take_value(&mut args, "--loads").map_or(10_000, |v| parse_number("--loads", &v));
    let specs = catalog();
    if suite >= specs.len() {
        eprintln!("--suite {suite} out of range (catalog has {})", specs.len());
        exit(2);
    }
    let trace = specs[suite].generate(loads as usize);
    let mut bytes = Vec::new();
    write_trace(&mut bytes, &trace).expect("serializing to memory cannot fail");
    if let Err(e) = std::fs::write(&out, bytes) {
        eprintln!("cannot write {}: {e}", out.display());
        exit(1);
    }
    println!(
        "wrote {} ({} trace '{}', {} loads)",
        out.display(),
        trace.len(),
        specs[suite].name,
        trace.load_count()
    );
}

fn outcome_json(kind: PredictorKind, outcome: &RunOutcome) -> String {
    let s = &outcome.stats;
    let resumed = outcome
        .resumed_from
        .as_ref()
        .map_or("null".to_owned(), |p| format!("\"{}\"", p.display()));
    format!(
        "{{\n  \"predictor\": \"{}\",\n  \"events\": {},\n  \"loads\": {},\n  \
         \"predictions\": {},\n  \"correct_predictions\": {},\n  \
         \"prediction_rate_bits\": {},\n  \"accuracy_bits\": {},\n  \
         \"checkpoints_written\": {},\n  \"faults_applied\": {},\n  \
         \"resumed_from\": {},\n  \"recovery_removed\": {},\n  \"killed\": {}\n}}",
        kind.name(),
        outcome.events,
        s.loads,
        s.predictions,
        s.correct_predictions,
        s.prediction_rate().to_bits(),
        s.accuracy().to_bits(),
        outcome.checkpoints_written,
        outcome.faults_applied,
        resumed,
        outcome.recovery_removed.len(),
        outcome.killed,
    )
}

fn cmd_run(mut args: Vec<String>) {
    let trace: PathBuf = take_value(&mut args, "--trace")
        .unwrap_or_else(|| {
            eprintln!("run requires --trace <path>");
            exit(2);
        })
        .into();
    let kind = take_value(&mut args, "--predictor").map_or(PredictorKind::Hybrid, |v| {
        PredictorKind::parse(&v).unwrap_or_else(|| {
            eprintln!("--predictor wants stride|cap|hybrid, got '{v}'");
            exit(2);
        })
    });
    let json = take_flag(&mut args, "--json");

    let mut config = SupervisorConfig::new(trace, kind);
    config.checkpoint_dir = take_value(&mut args, "--checkpoint-dir").map(PathBuf::from);
    if let Some(v) = take_value(&mut args, "--checkpoint-every") {
        config.checkpoint_every = parse_number("--checkpoint-every", &v);
    }
    if let Some(v) = take_value(&mut args, "--keep") {
        config.keep = parse_number("--keep", &v) as usize;
    }
    if let Some(v) = take_value(&mut args, "--kill-after") {
        config.kill_after = Some(parse_number("--kill-after", &v));
    }
    if let Some(v) = take_value(&mut args, "--chaos-every") {
        config.chaos_every = parse_number("--chaos-every", &v);
    }
    if let Some(v) = take_value(&mut args, "--seed") {
        config.seed = parse_number("--seed", &v);
    }
    if let Some(v) = take_value(&mut args, "--resume") {
        config.resume = if v == "auto" {
            Resume::Auto
        } else {
            Resume::From(PathBuf::from(v))
        };
    }
    if !args.is_empty() {
        eprintln!("unrecognized arguments: {}", args.join(" "));
        usage();
    }
    if config.checkpoint_every > 0 && config.checkpoint_dir.is_none() {
        eprintln!("--checkpoint-every needs --checkpoint-dir");
        exit(2);
    }

    match run(&config) {
        Ok(outcome) if outcome.killed => {
            // Simulate a crash: die hard, without reporting results — the
            // checkpoints on disk are the only state that survives.
            eprintln!(
                "killed at event {} ({} checkpoints on disk)",
                outcome.events, outcome.checkpoints_written
            );
            exit(KILLED_STATUS);
        }
        Ok(outcome) => {
            if json {
                println!("{}", outcome_json(kind, &outcome));
            } else {
                let s = &outcome.stats;
                if let Some(path) = &outcome.resumed_from {
                    println!("resumed from {}", path.display());
                }
                println!(
                    "{} over {} events: {} loads, {} predictions, {} correct \
                     (rate {:.4}, accuracy {:.4}), {} checkpoints, {} faults",
                    kind.name(),
                    outcome.events,
                    s.loads,
                    s.predictions,
                    s.correct_predictions,
                    s.prediction_rate(),
                    s.accuracy(),
                    outcome.checkpoints_written,
                    outcome.faults_applied,
                );
            }
        }
        Err(e @ SupervisorError::Mismatch(_)) => {
            eprintln!("refusing to resume: {e}");
            exit(3);
        }
        Err(e) => {
            eprintln!("run failed: {e}");
            exit(1);
        }
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let cmd = args.remove(0);
    match cmd.as_str() {
        "gen" => cmd_gen(args),
        "run" => cmd_run(args),
        _ => usage(),
    }
}
