//! `simulate` — the supervised, checkpointed, resumable trace runner.
//!
//! ```text
//! simulate gen --out trace.txt [--suite <i>] [--loads <n>]
//! simulate run --trace trace.txt [--predictor stride|cap|hybrid]
//!          [--checkpoint-dir <dir>] [--checkpoint-every <n>] [--keep <k>]
//!          [--resume auto|<path>] [--kill-after <n>] [--chaos-every <n>]
//!          [--seed <s>] [--json]
//! ```
//!
//! `run` drives one predictor over a trace file, publishing
//! crash-consistent checkpoints every `--checkpoint-every` events. A run
//! that dies (or is told to die with `--kill-after`, which exits hard with
//! status 137 like a SIGKILL) can be restarted with `--resume auto`: the
//! newest valid checkpoint is recovered, torn files are swept up, and the
//! finished run's metrics are bit-identical to an uninterrupted one.
//!
//! Service mode (the long-lived analogue of `run`):
//!
//! ```text
//! simulate serve --addr 127.0.0.1:0 [--port-file <path>] [--workers <n>]
//!          [--queue <n>] [--snapshot-dir <dir>] [--resume] [--keep <k>]
//!          [--seed <s>] [--pin hybrid|stride-only|bypass]
//! simulate client --addr <host:port> [--trace <path>] [--take <n>]
//!          [--budget-ms <n>] [--stats] [--shutdown <drain-ms>] [--json]
//! simulate top --addr <host:port> [--events <n>] [--json]
//! ```
//!
//! `serve` hosts the resilient prediction service over TCP; a client's
//! shutdown request drains in-flight work under a bounded deadline and
//! publishes a warm-restart snapshot (atomically, via the checkpoint
//! machinery). `serve --resume` restores the newest valid snapshot, so a
//! kill-and-restart cycle loses no trained predictor state.
//!
//! `serve` always runs with a live telemetry registry attached, and
//! `top` is its dashboard: it fetches the registry snapshot over the
//! wire (the `CAPO` stats frame) and prints sorted counter/gauge tables,
//! per-rung latency quantiles, and the newest trace events — or the
//! whole snapshot as JSON with `--json`.

use cap_harness::checkpoint::{list_checkpoints, recover_latest, rotate_checkpoints, write_checkpoint};
use cap_harness::json::JsonObject;
use cap_harness::supervisor::{
    run, PredictorKind, Resume, RunOutcome, SupervisorConfig, SupervisorError,
};
use cap_predictor::drive::ControlState;
use cap_service::prelude::*;
use cap_trace::io::{read_trace, write_trace};
use cap_trace::suites::catalog;
use cap_trace::TraceEvent;
use std::path::PathBuf;
use std::process::exit;
use std::sync::Arc;
use std::time::Duration;

/// Exit status of a `--kill-after` self-destruct (mirrors SIGKILL's 137).
const KILLED_STATUS: i32 = 137;

fn take_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("{flag} requires a value");
        exit(2);
    }
    let value = args.remove(i + 1);
    args.remove(i);
    Some(value)
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    let i = args.iter().position(|a| a == flag);
    if let Some(i) = i {
        args.remove(i);
    }
    i.is_some()
}

fn parse_number(flag: &str, value: &str) -> u64 {
    value.parse().unwrap_or_else(|_| {
        eprintln!("{flag} wants a non-negative integer, got '{value}'");
        exit(2);
    })
}

fn usage() -> ! {
    eprintln!("usage: simulate gen --out <path> [--suite <i>] [--loads <n>]");
    eprintln!("       simulate run --trace <path> [--predictor stride|cap|hybrid]");
    eprintln!("                [--checkpoint-dir <dir>] [--checkpoint-every <n>] [--keep <k>]");
    eprintln!("                [--resume auto|<path>] [--kill-after <n>] [--chaos-every <n>]");
    eprintln!("                [--seed <s>] [--json]");
    eprintln!("       simulate serve [--addr <host:port>] [--port-file <path>]");
    eprintln!("                [--workers <n>] [--queue <n>] [--snapshot-dir <dir>] [--resume]");
    eprintln!("                [--keep <k>] [--seed <s>] [--pin hybrid|stride-only|bypass]");
    eprintln!("       simulate client --addr <host:port> [--trace <path>] [--take <n>]");
    eprintln!("                [--budget-ms <n>] [--stats] [--shutdown <drain-ms>] [--json]");
    eprintln!("       simulate top --addr <host:port> [--events <n>] [--json]");
    exit(2);
}

fn cmd_gen(mut args: Vec<String>) {
    let out: PathBuf = take_value(&mut args, "--out")
        .unwrap_or_else(|| {
            eprintln!("gen requires --out <path>");
            exit(2);
        })
        .into();
    let suite = take_value(&mut args, "--suite").map_or(1, |v| parse_number("--suite", &v)) as usize;
    let loads = take_value(&mut args, "--loads").map_or(10_000, |v| parse_number("--loads", &v));
    let specs = catalog();
    if suite >= specs.len() {
        eprintln!("--suite {suite} out of range (catalog has {})", specs.len());
        exit(2);
    }
    let trace = specs[suite].generate(loads as usize);
    let mut bytes = Vec::new();
    write_trace(&mut bytes, &trace).expect("serializing to memory cannot fail");
    if let Err(e) = std::fs::write(&out, bytes) {
        eprintln!("cannot write {}: {e}", out.display());
        exit(1);
    }
    println!(
        "wrote {} ({} trace '{}', {} loads)",
        out.display(),
        trace.len(),
        specs[suite].name,
        trace.load_count()
    );
}

fn outcome_json(kind: PredictorKind, outcome: &RunOutcome) -> String {
    let s = &outcome.stats;
    let resumed = outcome.resumed_from.as_ref().map(|p| p.display().to_string());
    JsonObject::new()
        .string("predictor", kind.name())
        .u64("events", outcome.events)
        .u64("loads", s.loads)
        .u64("predictions", s.predictions)
        .u64("correct_predictions", s.correct_predictions)
        .u64("prediction_rate_bits", s.prediction_rate().to_bits())
        .u64("accuracy_bits", s.accuracy().to_bits())
        .u64("checkpoints_written", outcome.checkpoints_written)
        .u64("faults_applied", outcome.faults_applied)
        .opt_string("resumed_from", resumed.as_deref())
        .u64("recovery_removed", outcome.recovery_removed.len() as u64)
        .bool("killed", outcome.killed)
        .pretty()
}

/// Renders service-wide stats as JSON — the service's stats endpoint,
/// sharing the same emitter (and `_bits` convention for bit-exact
/// floats) as `repro --json` and `run --json`.
fn service_stats_json(stats: &ServiceStats) -> String {
    let merged = stats.merged_predictor();
    let workers = stats.workers.iter().map(|w| {
        let breakers = w.breakers.iter().map(|b| {
            JsonObject::new()
                .string("component", b.component)
                .string("state", b.state)
                .u64("trips", b.trips)
                .compact()
        });
        JsonObject::new()
            .u64("worker", w.worker as u64)
            .string("rung", w.rung.name())
            .u64("served", w.served)
            .u64("served_hybrid", w.served_by_rung[Rung::Hybrid.index()])
            .u64("served_stride_only", w.served_by_rung[Rung::StrideOnly.index()])
            .u64("served_bypass", w.served_by_rung[Rung::Bypass.index()])
            .u64("deadline_queued", w.deadline_queued)
            .u64("deadline_backend", w.deadline_backend)
            .u64("backend_panics", w.backend_panics)
            .u64("faults_latency", w.faults_latency)
            .u64("faults_stall", w.faults_stall)
            .u64("demotions", w.demotions)
            .u64("promotions", w.promotions)
            .u64("queue_depth", w.queue_depth as u64)
            .array("breakers", breakers)
            .compact()
    });
    JsonObject::new()
        .u64("accepted", stats.accepted)
        .u64("shed", stats.shed)
        .u64("rejected_shutdown", stats.rejected_shutdown)
        .string("worst_rung", stats.worst_rung().name())
        .u64("loads", merged.loads)
        .u64("predictions", merged.predictions)
        .u64("correct_predictions", merged.correct_predictions)
        .u64("prediction_rate_bits", merged.prediction_rate().to_bits())
        .u64("accuracy_bits", merged.accuracy().to_bits())
        .array("workers", workers)
        .pretty()
}

fn cmd_run(mut args: Vec<String>) {
    let trace: PathBuf = take_value(&mut args, "--trace")
        .unwrap_or_else(|| {
            eprintln!("run requires --trace <path>");
            exit(2);
        })
        .into();
    let kind = take_value(&mut args, "--predictor").map_or(PredictorKind::Hybrid, |v| {
        PredictorKind::parse(&v).unwrap_or_else(|| {
            eprintln!("--predictor wants stride|cap|hybrid, got '{v}'");
            exit(2);
        })
    });
    let json = take_flag(&mut args, "--json");

    let mut config = SupervisorConfig::new(trace, kind);
    config.checkpoint_dir = take_value(&mut args, "--checkpoint-dir").map(PathBuf::from);
    if let Some(v) = take_value(&mut args, "--checkpoint-every") {
        config.checkpoint_every = parse_number("--checkpoint-every", &v);
    }
    if let Some(v) = take_value(&mut args, "--keep") {
        config.keep = parse_number("--keep", &v) as usize;
    }
    if let Some(v) = take_value(&mut args, "--kill-after") {
        config.kill_after = Some(parse_number("--kill-after", &v));
    }
    if let Some(v) = take_value(&mut args, "--chaos-every") {
        config.chaos_every = parse_number("--chaos-every", &v);
    }
    if let Some(v) = take_value(&mut args, "--seed") {
        config.seed = parse_number("--seed", &v);
    }
    if let Some(v) = take_value(&mut args, "--resume") {
        config.resume = if v == "auto" {
            Resume::Auto
        } else {
            Resume::From(PathBuf::from(v))
        };
    }
    if !args.is_empty() {
        eprintln!("unrecognized arguments: {}", args.join(" "));
        usage();
    }
    if config.checkpoint_every > 0 && config.checkpoint_dir.is_none() {
        eprintln!("--checkpoint-every needs --checkpoint-dir");
        exit(2);
    }

    match run(&config) {
        Ok(outcome) if outcome.killed => {
            // Simulate a crash: die hard, without reporting results — the
            // checkpoints on disk are the only state that survives.
            eprintln!(
                "killed at event {} ({} checkpoints on disk)",
                outcome.events, outcome.checkpoints_written
            );
            exit(KILLED_STATUS);
        }
        Ok(outcome) => {
            if json {
                println!("{}", outcome_json(kind, &outcome));
            } else {
                let s = &outcome.stats;
                if let Some(path) = &outcome.resumed_from {
                    println!("resumed from {}", path.display());
                }
                println!(
                    "{} over {} events: {} loads, {} predictions, {} correct \
                     (rate {:.4}, accuracy {:.4}), {} checkpoints, {} faults",
                    kind.name(),
                    outcome.events,
                    s.loads,
                    s.predictions,
                    s.correct_predictions,
                    s.prediction_rate(),
                    s.accuracy(),
                    outcome.checkpoints_written,
                    outcome.faults_applied,
                );
            }
        }
        Err(e @ SupervisorError::Mismatch(_)) => {
            eprintln!("refusing to resume: {e}");
            exit(3);
        }
        Err(e) => {
            eprintln!("run failed: {e}");
            exit(1);
        }
    }
}

fn parse_rung(v: &str) -> Rung {
    Rung::ALL
        .into_iter()
        .find(|r| r.name() == v)
        .unwrap_or_else(|| {
            eprintln!("--pin wants hybrid|stride-only|bypass, got '{v}'");
            exit(2);
        })
}

/// Hosts the prediction service over TCP until a client's shutdown
/// frame, then drains, snapshots, and exits.
fn cmd_serve(mut args: Vec<String>) {
    let addr = take_value(&mut args, "--addr").unwrap_or_else(|| "127.0.0.1:0".to_owned());
    let port_file = take_value(&mut args, "--port-file").map(PathBuf::from);
    let snapshot_dir = take_value(&mut args, "--snapshot-dir").map(PathBuf::from);
    let resume = take_flag(&mut args, "--resume");
    let keep = take_value(&mut args, "--keep").map_or(3, |v| parse_number("--keep", &v) as usize);

    let mut config = ServiceConfig::default();
    if let Some(v) = take_value(&mut args, "--workers") {
        config.workers = parse_number("--workers", &v) as usize;
    }
    if let Some(v) = take_value(&mut args, "--queue") {
        config.queue_capacity = parse_number("--queue", &v) as usize;
    }
    if let Some(v) = take_value(&mut args, "--seed") {
        config.seed = parse_number("--seed", &v);
    }
    config.pin_rung = take_value(&mut args, "--pin").map(|v| parse_rung(&v));
    if !args.is_empty() {
        eprintln!("unrecognized arguments: {}", args.join(" "));
        usage();
    }
    if resume && snapshot_dir.is_none() {
        eprintln!("--resume needs --snapshot-dir");
        exit(2);
    }

    // The server always runs instrumented: one registry shared by the
    // admission path, workers, breakers, and ladder, exported over the
    // wire as the `CAPO` stats frame (see `simulate top`).
    let registry = Arc::new(cap_obs::Registry::new());
    config.obs = registry.obs();

    // Warm restart: newest valid snapshot wins; corrupt or missing
    // snapshots degrade to a cold start (the recovery sweep logs what
    // it discards). A dead service is never the answer.
    let recovered = if resume {
        let dir = snapshot_dir.as_deref().expect("checked above");
        match recover_latest(dir) {
            Ok(recovery) => {
                for path in &recovery.removed {
                    eprintln!("swept invalid snapshot {}", path.display());
                }
                recovery.chosen
            }
            Err(e) => {
                eprintln!("snapshot recovery failed ({e}); starting cold");
                None
            }
        }
    } else {
        None
    };
    let recovered_from = recovered.as_ref().map(|(path, _)| path.clone());
    let (service, warm) =
        Service::restore_or_cold(config, recovered.as_ref().map(|(_, bytes)| bytes.as_slice()));
    match (&recovered_from, warm) {
        (Some(path), true) => eprintln!("warm restart from {}", path.display()),
        (Some(path), false) => {
            eprintln!("snapshot {} did not restore; started cold", path.display());
        }
        (None, _) => {}
    }

    let exporter: ObsExporter = {
        let registry = Arc::clone(&registry);
        Arc::new(move || registry.snapshot().encode())
    };
    let server = TcpServer::bind(addr.as_str(), service.handle(), stats_renderer())
        .unwrap_or_else(|e| {
            eprintln!("cannot bind {addr}: {e}");
            exit(1);
        })
        .with_obs_exporter(exporter);
    let local = server.local_addr().expect("bound socket has an address");
    println!("serving on {local}");
    if let Some(path) = &port_file {
        // Scripts pass --addr host:0 and read the real port from here.
        if let Err(e) = std::fs::write(path, format!("{}\n", local.port())) {
            eprintln!("cannot write {}: {e}", path.display());
            exit(1);
        }
    }

    let drain = server.run().unwrap_or_else(|e| {
        eprintln!("accept loop failed: {e}");
        exit(1);
    });
    let report = service.shutdown(drain);
    if let Some(dir) = &snapshot_dir {
        // Monotonic sequence numbers chain restarts; atomic publication
        // and rotation come from the checkpoint machinery.
        let seq = list_checkpoints(dir)
            .ok()
            .and_then(|list| list.last().map(|(n, _)| n + 1))
            .unwrap_or(1);
        match write_checkpoint(dir, seq, &report.snapshot) {
            Ok(path) => {
                let _ = rotate_checkpoints(dir, keep);
                eprintln!("snapshot published to {}", path.display());
            }
            Err(e) => {
                eprintln!("snapshot write failed: {e}");
                exit(1);
            }
        }
    }
    let served: u64 = report.workers.iter().map(|w| w.served).sum();
    println!(
        "drained ({} served, {} rejected during drain); snapshot {} bytes",
        served,
        report.drain_rejected,
        report.snapshot.len()
    );
}

fn stats_renderer() -> StatsRenderer {
    Arc::new(|stats: &ServiceStats| service_stats_json(stats))
}

/// Drives a trace through a running server and/or issues control
/// requests (stats, shutdown).
fn cmd_client(mut args: Vec<String>) {
    let addr = take_value(&mut args, "--addr").unwrap_or_else(|| {
        eprintln!("client requires --addr <host:port>");
        exit(2);
    });
    let trace_path = take_value(&mut args, "--trace").map(PathBuf::from);
    let take = take_value(&mut args, "--take").map(|v| parse_number("--take", &v));
    let budget =
        take_value(&mut args, "--budget-ms").map(|v| parse_number("--budget-ms", &v));
    let want_stats = take_flag(&mut args, "--stats");
    let shutdown_ms = take_value(&mut args, "--shutdown").map(|v| parse_number("--shutdown", &v));
    let json = take_flag(&mut args, "--json");
    if !args.is_empty() {
        eprintln!("unrecognized arguments: {}", args.join(" "));
        usage();
    }

    let mut client = TcpClient::connect(addr.as_str()).unwrap_or_else(|e| {
        eprintln!("cannot connect to {addr}: {e}");
        exit(1);
    });

    let mut sent = 0u64;
    let mut correct = 0u64;
    let mut errors = 0u64;
    if let Some(path) = &trace_path {
        let file = std::fs::File::open(path).unwrap_or_else(|e| {
            eprintln!("cannot open {}: {e}", path.display());
            exit(1);
        });
        let trace = read_trace(std::io::BufReader::new(file)).unwrap_or_else(|e| {
            eprintln!("cannot parse {}: {e}", path.display());
            exit(1);
        });
        // Same control-flow tracking as the batch supervisor, so the
        // service sees the GHR the paper's predictors expect.
        let mut control = ControlState::default();
        let budget = budget.map(Duration::from_millis);
        'trace: for event in trace.events() {
            match event {
                TraceEvent::Load(load) => {
                    if take.is_some_and(|limit| sent >= limit) {
                        break 'trace;
                    }
                    sent += 1;
                    let request = Request::Observe {
                        ip: load.ip,
                        offset: load.offset,
                        ghr: control.ghr,
                        actual: load.addr,
                    };
                    match client.serve(request, budget) {
                        Ok(WireResponse::Response(Response::Observed {
                            correct: hit, ..
                        })) => correct += u64::from(hit),
                        Ok(WireResponse::Error { .. }) => errors += 1,
                        Ok(other) => {
                            eprintln!("unexpected response {other:?}");
                            exit(1);
                        }
                        Err(e) => {
                            eprintln!("transport failed mid-trace: {e}");
                            exit(1);
                        }
                    }
                }
                TraceEvent::Branch(b) => control.on_branch(b.ip, b.taken, b.kind),
                TraceEvent::Store(_) | TraceEvent::Op(_) => {}
            }
        }
        if json {
            println!(
                "{}",
                JsonObject::new()
                    .u64("sent", sent)
                    .u64("correct", correct)
                    .u64("errors", errors)
                    .pretty()
            );
        } else {
            println!("sent {sent} loads: {correct} correct, {errors} structured errors");
        }
    }

    if want_stats {
        match client.stats() {
            Ok(WireResponse::Stats(doc)) => println!("{doc}"),
            Ok(other) => {
                eprintln!("unexpected response {other:?}");
                exit(1);
            }
            Err(e) => {
                eprintln!("stats failed: {e}");
                exit(1);
            }
        }
    }

    if let Some(ms) = shutdown_ms {
        match client.shutdown(Duration::from_millis(ms)) {
            Ok(WireResponse::ShutdownAck) => eprintln!("server acknowledged shutdown"),
            Ok(other) => {
                eprintln!("unexpected response {other:?}");
                exit(1);
            }
            Err(e) => {
                eprintln!("shutdown failed: {e}");
                exit(1);
            }
        }
    }
}

/// Fetches a running server's telemetry registry over the wire and
/// prints it `top`-style (or as JSON).
fn cmd_top(mut args: Vec<String>) {
    let addr = take_value(&mut args, "--addr").unwrap_or_else(|| {
        eprintln!("top requires --addr <host:port>");
        exit(2);
    });
    let events =
        take_value(&mut args, "--events").map_or(16, |v| parse_number("--events", &v) as usize);
    let json = take_flag(&mut args, "--json");
    if !args.is_empty() {
        eprintln!("unrecognized arguments: {}", args.join(" "));
        usage();
    }

    let mut client = TcpClient::connect(addr.as_str()).unwrap_or_else(|e| {
        eprintln!("cannot connect to {addr}: {e}");
        exit(1);
    });
    let snapshot = client.obs_stats().unwrap_or_else(|e| {
        eprintln!("obs-stats failed: {e}");
        exit(1);
    });
    if json {
        println!("{}", cap_harness::json::obs_snapshot_json(&snapshot).pretty());
    } else {
        print!("{}", snapshot.render_top(events));
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let cmd = args.remove(0);
    match cmd.as_str() {
        "gen" => cmd_gen(args),
        "run" => cmd_run(args),
        "serve" => cmd_serve(args),
        "client" => cmd_client(args),
        "top" => cmd_top(args),
        _ => usage(),
    }
}
