//! `simulate` — the supervised, checkpointed, resumable trace runner.
//!
//! ```text
//! simulate gen --out trace.txt [--suite <i>] [--loads <n>]
//! simulate run --trace trace.txt [--predictor stride|cap|hybrid]
//!          [--checkpoint-dir <dir>] [--checkpoint-every <n>] [--keep <k>]
//!          [--resume auto|<path>] [--kill-after <n>] [--chaos-every <n>]
//!          [--seed <s>] [--json]
//! ```
//!
//! `run` drives one predictor over a trace file, publishing
//! crash-consistent checkpoints every `--checkpoint-every` events. A run
//! that dies (or is told to die with `--kill-after`, which exits hard with
//! status 137 like a SIGKILL) can be restarted with `--resume auto`: the
//! newest valid checkpoint is recovered, torn files are swept up, and the
//! finished run's metrics are bit-identical to an uninterrupted one.
//!
//! Service mode (the long-lived analogue of `run`):
//!
//! ```text
//! simulate serve --addr 127.0.0.1:0 [--port-file <path>] [--workers <n>]
//!          [--queue <n>] [--snapshot-dir <dir>] [--resume] [--keep <k>]
//!          [--seed <s>] [--pin hybrid|stride-only|bypass]
//! simulate client --addr <host:port> [--trace <path>] [--take <n>]
//!          [--budget-ms <n>] [--stats] [--shutdown <drain-ms>] [--json]
//! simulate top --addr <host:port> [--events <n>] [--json]
//! ```
//!
//! `serve` hosts the resilient prediction service over TCP; a client's
//! shutdown request drains in-flight work under a bounded deadline and
//! publishes a warm-restart snapshot (atomically, via the checkpoint
//! machinery). `serve --resume` restores the newest valid snapshot, so a
//! kill-and-restart cycle loses no trained predictor state.
//!
//! `serve` always runs with a live telemetry registry attached, and
//! `top` is its dashboard: it fetches the registry snapshot over the
//! wire (the `CAPO` stats frame) and prints sorted counter/gauge tables,
//! per-rung latency quantiles, and the newest trace events — or the
//! whole snapshot as JSON with `--json`.
//!
//! Cluster mode (the fleet analogue of `serve`):
//!
//! ```text
//! simulate route --nodes <host:port,...> [--addr <host:port>] [--port-file <p>]
//!          [--ship-every-ms <n>] [--probe-every-ms <n>]
//!          [--respawn --respawn-dir <dir>] [--workers <n>] [--queue <n>] [--seed <s>]
//! simulate top --cluster <host:port,...> [--events <n>] [--json]
//! ```
//!
//! `route` is the fleet front door: it speaks the same wire protocol
//! clients already use, consistent-hash-maps each request's IP onto one
//! of the `--nodes`, ships warm replicas on a cadence, health-probes
//! every node into its breaker, and — with `--respawn` — promotes a
//! freshly spawned `simulate serve` child restored from the latest
//! replica when a node stops answering. Its stats frame reports the
//! request-accounting invariant; its obs frame is the merged fleet view.
//! `top --cluster` produces the same merged dashboard by polling nodes
//! directly, no router required. `client` rides through node restarts
//! with connect retry/backoff (`--connect-retries`).

use cap_cluster::prelude::{Router, RouterConfig};
use cap_faults::fs::RealVfs;
use cap_harness::checkpoint::{
    list_checkpoints, recover_latest_with, rotate_checkpoints_with, write_checkpoint,
    write_checkpoint_with,
};
use cap_harness::json::JsonObject;
use cap_harness::supervisor::{
    run, with_retry, PredictorKind, Resume, RetryPolicy, RunOutcome, SupervisorConfig,
    SupervisorError,
};
use cap_predictor::drive::ControlState;
use cap_service::prelude::*;
use cap_service::wire::{read_frame, write_frame_with_cap, MAX_REPLY_FRAME_LEN};
use cap_trace::io::{read_trace, write_trace};
use cap_trace::suites::catalog;
use cap_trace::TraceEvent;
use std::net::{SocketAddr, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::process::exit;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Exit status of a `--kill-after` self-destruct (mirrors SIGKILL's 137).
const KILLED_STATUS: i32 = 137;

fn take_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("{flag} requires a value");
        exit(2);
    }
    let value = args.remove(i + 1);
    args.remove(i);
    Some(value)
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    let i = args.iter().position(|a| a == flag);
    if let Some(i) = i {
        args.remove(i);
    }
    i.is_some()
}

fn parse_number(flag: &str, value: &str) -> u64 {
    value.parse().unwrap_or_else(|_| {
        eprintln!("{flag} wants a non-negative integer, got '{value}'");
        exit(2);
    })
}

fn usage() -> ! {
    eprintln!("usage: simulate gen --out <path> [--suite <i>] [--loads <n>]");
    eprintln!("       simulate run --trace <path> [--predictor stride|cap|hybrid]");
    eprintln!("                [--checkpoint-dir <dir>] [--checkpoint-every <n>] [--keep <k>]");
    eprintln!("                [--journal-every <n>] [--resume auto|<path>]");
    eprintln!("                [--kill-after <n>] [--chaos-every <n>] [--seed <s>] [--json]");
    eprintln!("       simulate serve [--addr <host:port>] [--port-file <path>]");
    eprintln!("                [--workers <n>] [--queue <n>] [--snapshot-dir <dir>] [--resume]");
    eprintln!("                [--keep <k>] [--seed <s>] [--pin hybrid|stride-only|bypass]");
    eprintln!("                [--backend <name>] [--fallback <name>]");
    eprintln!("       simulate backends        (list registered backend names)");
    eprintln!("       simulate client --addr <host:port> [--trace <path>] [--take <n>]");
    eprintln!("                [--budget-ms <n>] [--connect-retries <n>] [--stats]");
    eprintln!("                [--shutdown <drain-ms>] [--json]");
    eprintln!("       simulate route --nodes <host:port,...> [--addr <host:port>]");
    eprintln!("                [--port-file <path>] [--ship-every-ms <n>] [--probe-every-ms <n>]");
    eprintln!("                [--respawn --respawn-dir <dir>] [--admin-file <path>]");
    eprintln!("                [--workers <n>] [--queue <n>] [--seed <s>]");
    eprintln!("       simulate top --addr <host:port> | --cluster <host:port,...>");
    eprintln!("                [--events <n>] [--json]");
    exit(2);
}

fn cmd_gen(mut args: Vec<String>) {
    let out: PathBuf = take_value(&mut args, "--out")
        .unwrap_or_else(|| {
            eprintln!("gen requires --out <path>");
            exit(2);
        })
        .into();
    let suite = take_value(&mut args, "--suite").map_or(1, |v| parse_number("--suite", &v)) as usize;
    let loads = take_value(&mut args, "--loads").map_or(10_000, |v| parse_number("--loads", &v));
    let specs = catalog();
    if suite >= specs.len() {
        eprintln!("--suite {suite} out of range (catalog has {})", specs.len());
        exit(2);
    }
    let trace = specs[suite].generate(loads as usize);
    let mut bytes = Vec::new();
    write_trace(&mut bytes, &trace).expect("serializing to memory cannot fail");
    if let Err(e) = std::fs::write(&out, bytes) {
        eprintln!("cannot write {}: {e}", out.display());
        exit(1);
    }
    println!(
        "wrote {} ({} trace '{}', {} loads)",
        out.display(),
        trace.len(),
        specs[suite].name,
        trace.load_count()
    );
}

fn outcome_json(kind: PredictorKind, outcome: &RunOutcome) -> String {
    let s = &outcome.stats;
    let resumed = outcome.resumed_from.as_ref().map(|p| p.display().to_string());
    JsonObject::new()
        .string("predictor", kind.name())
        .u64("events", outcome.events)
        .u64("loads", s.loads)
        .u64("predictions", s.predictions)
        .u64("correct_predictions", s.correct_predictions)
        .u64("prediction_rate_bits", s.prediction_rate().to_bits())
        .u64("accuracy_bits", s.accuracy().to_bits())
        .u64("checkpoints_written", outcome.checkpoints_written)
        .u64("journal_appended", outcome.journal_appended)
        .u64("journal_replayed", outcome.journal_replayed)
        .u64("faults_applied", outcome.faults_applied)
        .opt_string("resumed_from", resumed.as_deref())
        .u64("recovery_removed", outcome.recovery_removed.len() as u64)
        .bool("killed", outcome.killed)
        .pretty()
}

/// Renders service-wide stats as JSON — the service's stats endpoint,
/// sharing the same emitter (and `_bits` convention for bit-exact
/// floats) as `repro --json` and `run --json`.
fn service_stats_json(stats: &ServiceStats) -> String {
    let merged = stats.merged_predictor();
    let workers = stats.workers.iter().map(|w| {
        let breakers = w.breakers.iter().map(|b| {
            JsonObject::new()
                .string("component", b.component)
                .string("state", b.state)
                .u64("trips", b.trips)
                .compact()
        });
        JsonObject::new()
            .u64("worker", w.worker as u64)
            .string("rung", w.rung.name())
            .u64("served", w.served)
            .u64("served_hybrid", w.served_by_rung[Rung::Hybrid.index()])
            .u64("served_stride_only", w.served_by_rung[Rung::StrideOnly.index()])
            .u64("served_bypass", w.served_by_rung[Rung::Bypass.index()])
            .u64("deadline_queued", w.deadline_queued)
            .u64("deadline_backend", w.deadline_backend)
            .u64("backend_panics", w.backend_panics)
            .u64("faults_latency", w.faults_latency)
            .u64("faults_stall", w.faults_stall)
            .u64("demotions", w.demotions)
            .u64("promotions", w.promotions)
            .u64("queue_depth", w.queue_depth as u64)
            .array("breakers", breakers)
            .compact()
    });
    JsonObject::new()
        .u64("accepted", stats.accepted)
        .u64("shed", stats.shed)
        .u64("rejected_shutdown", stats.rejected_shutdown)
        .string("worst_rung", stats.worst_rung().name())
        .u64("loads", merged.loads)
        .u64("predictions", merged.predictions)
        .u64("correct_predictions", merged.correct_predictions)
        .u64("prediction_rate_bits", merged.prediction_rate().to_bits())
        .u64("accuracy_bits", merged.accuracy().to_bits())
        .array("workers", workers)
        .pretty()
}

fn cmd_run(mut args: Vec<String>) {
    let trace: PathBuf = take_value(&mut args, "--trace")
        .unwrap_or_else(|| {
            eprintln!("run requires --trace <path>");
            exit(2);
        })
        .into();
    let kind = take_value(&mut args, "--predictor").map_or(PredictorKind::Hybrid, |v| {
        PredictorKind::parse(&v).unwrap_or_else(|| {
            eprintln!("--predictor wants stride|cap|hybrid, got '{v}'");
            exit(2);
        })
    });
    let json = take_flag(&mut args, "--json");

    let mut config = SupervisorConfig::new(trace, kind);
    config.checkpoint_dir = take_value(&mut args, "--checkpoint-dir").map(PathBuf::from);
    if let Some(v) = take_value(&mut args, "--checkpoint-every") {
        config.checkpoint_every = parse_number("--checkpoint-every", &v);
    }
    if let Some(v) = take_value(&mut args, "--keep") {
        config.keep = parse_number("--keep", &v) as usize;
    }
    if let Some(v) = take_value(&mut args, "--journal-every") {
        config.journal_flush_every = parse_number("--journal-every", &v);
    }
    if let Some(v) = take_value(&mut args, "--kill-after") {
        config.kill_after = Some(parse_number("--kill-after", &v));
    }
    if let Some(v) = take_value(&mut args, "--chaos-every") {
        config.chaos_every = parse_number("--chaos-every", &v);
    }
    if let Some(v) = take_value(&mut args, "--seed") {
        config.seed = parse_number("--seed", &v);
    }
    if let Some(v) = take_value(&mut args, "--resume") {
        config.resume = if v == "auto" {
            Resume::Auto
        } else {
            Resume::From(PathBuf::from(v))
        };
    }
    if !args.is_empty() {
        eprintln!("unrecognized arguments: {}", args.join(" "));
        usage();
    }
    if config.checkpoint_every > 0 && config.checkpoint_dir.is_none() {
        eprintln!("--checkpoint-every needs --checkpoint-dir");
        exit(2);
    }
    if config.journal_flush_every > 0 && config.checkpoint_dir.is_none() {
        eprintln!("--journal-every needs --checkpoint-dir");
        exit(2);
    }

    match run(&config) {
        Ok(outcome) if outcome.killed => {
            // Simulate a crash: die hard, without reporting results — the
            // checkpoints on disk are the only state that survives.
            eprintln!(
                "killed at event {} ({} checkpoints on disk)",
                outcome.events, outcome.checkpoints_written
            );
            exit(KILLED_STATUS);
        }
        Ok(outcome) => {
            if json {
                println!("{}", outcome_json(kind, &outcome));
            } else {
                let s = &outcome.stats;
                if let Some(path) = &outcome.resumed_from {
                    println!("resumed from {}", path.display());
                }
                println!(
                    "{} over {} events: {} loads, {} predictions, {} correct \
                     (rate {:.4}, accuracy {:.4}), {} checkpoints, {} faults",
                    kind.name(),
                    outcome.events,
                    s.loads,
                    s.predictions,
                    s.correct_predictions,
                    s.prediction_rate(),
                    s.accuracy(),
                    outcome.checkpoints_written,
                    outcome.faults_applied,
                );
            }
        }
        Err(e @ SupervisorError::Mismatch(_)) => {
            eprintln!("refusing to resume: {e}");
            exit(3);
        }
        Err(e) => {
            eprintln!("run failed: {e}");
            exit(1);
        }
    }
}

fn parse_rung(v: &str) -> Rung {
    Rung::ALL
        .into_iter()
        .find(|r| r.name() == v)
        .unwrap_or_else(|| {
            eprintln!("--pin wants hybrid|stride-only|bypass, got '{v}'");
            exit(2);
        })
}

/// Resolves a backend name through the registry; the error already
/// lists every registered name.
fn parse_backend(flag: &str, v: &str) -> BackendKind {
    BackendKind::parse(v).unwrap_or_else(|e| {
        eprintln!("{flag}: {e}");
        exit(2);
    })
}

/// Prints the registered backend names, one per line (scriptable:
/// `verify.sh backends` iterates this).
fn cmd_backends(args: Vec<String>) {
    if !args.is_empty() {
        eprintln!("unrecognized arguments: {}", args.join(" "));
        usage();
    }
    for d in BACKEND_REGISTRY {
        println!("{}", d.name);
    }
}

/// Hosts the prediction service over TCP until a client's shutdown
/// frame, then drains, snapshots, and exits.
fn cmd_serve(mut args: Vec<String>) {
    let addr = take_value(&mut args, "--addr").unwrap_or_else(|| "127.0.0.1:0".to_owned());
    let port_file = take_value(&mut args, "--port-file").map(PathBuf::from);
    let snapshot_dir = take_value(&mut args, "--snapshot-dir").map(PathBuf::from);
    let resume = take_flag(&mut args, "--resume");
    let keep = take_value(&mut args, "--keep").map_or(3, |v| parse_number("--keep", &v) as usize);

    let mut config = ServiceConfig::default();
    if let Some(v) = take_value(&mut args, "--workers") {
        config.workers = parse_number("--workers", &v) as usize;
    }
    if let Some(v) = take_value(&mut args, "--queue") {
        config.queue_capacity = parse_number("--queue", &v) as usize;
    }
    if let Some(v) = take_value(&mut args, "--seed") {
        config.seed = parse_number("--seed", &v);
    }
    config.pin_rung = take_value(&mut args, "--pin").map(|v| parse_rung(&v));
    if let Some(v) = take_value(&mut args, "--backend") {
        config.primary = parse_backend("--backend", &v);
    }
    if let Some(v) = take_value(&mut args, "--fallback") {
        config.fallback = parse_backend("--fallback", &v);
    }
    if !args.is_empty() {
        eprintln!("unrecognized arguments: {}", args.join(" "));
        usage();
    }
    if resume && snapshot_dir.is_none() {
        eprintln!("--resume needs --snapshot-dir");
        exit(2);
    }

    // The server always runs instrumented: one registry shared by the
    // admission path, workers, breakers, and ladder, exported over the
    // wire as the `CAPO` stats frame (see `simulate top`).
    let registry = Arc::new(cap_obs::Registry::new());
    config.obs = registry.obs();

    // Warm restart: newest valid snapshot wins; corrupt or missing
    // snapshots degrade to a cold start (the recovery sweep logs what
    // it discards). A dead service is never the answer.
    let recovered = if resume {
        let dir = snapshot_dir.as_deref().expect("checked above");
        match recover_latest_with(&RealVfs, dir) {
            Ok(recovery) => {
                for path in &recovery.removed {
                    eprintln!("swept invalid snapshot {}", path.display());
                }
                recovery.chosen
            }
            Err(e) => {
                eprintln!("snapshot recovery failed ({e}); starting cold");
                None
            }
        }
    } else {
        None
    };
    let recovered_from = recovered.as_ref().map(|(path, _)| path.clone());
    let (service, warm) =
        Service::restore_or_cold(config, recovered.as_ref().map(|(_, bytes)| bytes.as_slice()));
    match (&recovered_from, warm) {
        (Some(path), true) => eprintln!("warm restart from {}", path.display()),
        (Some(path), false) => {
            eprintln!("snapshot {} did not restore; started cold", path.display());
        }
        (None, _) => {}
    }

    let exporter: ObsExporter = {
        let registry = Arc::clone(&registry);
        Arc::new(move || registry.snapshot().encode())
    };
    let server = TcpServer::bind(addr.as_str(), service.handle(), stats_renderer())
        .unwrap_or_else(|e| {
            eprintln!("cannot bind {addr}: {e}");
            exit(1);
        })
        .with_obs_exporter(exporter);
    let local = server.local_addr().expect("bound socket has an address");
    println!("serving on {local}");
    if let Some(path) = &port_file {
        // Scripts pass --addr host:0 and read the real port from here.
        if let Err(e) = std::fs::write(path, format!("{}\n", local.port())) {
            eprintln!("cannot write {}: {e}", path.display());
            exit(1);
        }
    }

    let drain = server.run().unwrap_or_else(|e| {
        eprintln!("accept loop failed: {e}");
        exit(1);
    });
    let report = service.shutdown(drain);
    if let Some(dir) = &snapshot_dir {
        // Monotonic sequence numbers chain restarts; atomic publication
        // and rotation come from the checkpoint machinery.
        let seq = list_checkpoints(dir)
            .ok()
            .and_then(|list| list.last().map(|(n, _)| n + 1))
            .unwrap_or(1);
        match write_checkpoint_with(&RealVfs, dir, seq, &report.snapshot, &registry.obs()) {
            Ok(path) => {
                let rotation = rotate_checkpoints_with(&RealVfs, dir, keep, &registry.obs());
                match rotation {
                    Ok(r) => {
                        if let Some(e) = r.first_error {
                            eprintln!("snapshot rotation incomplete: {e}");
                        }
                    }
                    Err(e) => eprintln!("snapshot rotation failed: {e}"),
                }
                eprintln!("snapshot published to {}", path.display());
            }
            Err(e) => {
                eprintln!("snapshot write failed: {e}");
                exit(1);
            }
        }
    }
    let served: u64 = report.workers.iter().map(|w| w.served).sum();
    println!(
        "drained ({} served, {} rejected during drain); snapshot {} bytes",
        served,
        report.drain_rejected,
        report.snapshot.len()
    );
}

fn stats_renderer() -> StatsRenderer {
    Arc::new(|stats: &ServiceStats| service_stats_json(stats))
}

/// Drives a trace through a running server and/or issues control
/// requests (stats, shutdown).
fn cmd_client(mut args: Vec<String>) {
    let addr = take_value(&mut args, "--addr").unwrap_or_else(|| {
        eprintln!("client requires --addr <host:port>");
        exit(2);
    });
    let trace_path = take_value(&mut args, "--trace").map(PathBuf::from);
    let take = take_value(&mut args, "--take").map(|v| parse_number("--take", &v));
    let budget =
        take_value(&mut args, "--budget-ms").map(|v| parse_number("--budget-ms", &v));
    let want_stats = take_flag(&mut args, "--stats");
    let shutdown_ms = take_value(&mut args, "--shutdown").map(|v| parse_number("--shutdown", &v));
    let retries = take_value(&mut args, "--connect-retries")
        .map_or(5, |v| parse_number("--connect-retries", &v)) as u32;
    let json = take_flag(&mut args, "--json");
    if !args.is_empty() {
        eprintln!("unrecognized arguments: {}", args.join(" "));
        usage();
    }

    // Connect rides through node restarts: during a rolling restart the
    // listener is down for a beat, and a refused connect is transient,
    // not fatal. Backoff doubles from 50ms; ~5 attempts spans a node's
    // drain-snapshot-respawn window.
    let policy = RetryPolicy {
        attempts: retries.max(1),
        base_delay: Duration::from_millis(50),
        max_elapsed: Some(Duration::from_secs(15)),
    };
    let mut client = with_retry(&policy, |_| true, || TcpClient::connect(addr.as_str()))
        .unwrap_or_else(|e| {
            eprintln!("cannot connect to {addr}: {e}");
            exit(1);
        });

    let mut sent = 0u64;
    let mut correct = 0u64;
    let mut errors = 0u64;
    if let Some(path) = &trace_path {
        let file = std::fs::File::open(path).unwrap_or_else(|e| {
            eprintln!("cannot open {}: {e}", path.display());
            exit(1);
        });
        let trace = read_trace(std::io::BufReader::new(file)).unwrap_or_else(|e| {
            eprintln!("cannot parse {}: {e}", path.display());
            exit(1);
        });
        // Same control-flow tracking as the batch supervisor, so the
        // service sees the GHR the paper's predictors expect.
        let mut control = ControlState::default();
        let budget = budget.map(Duration::from_millis);
        'trace: for event in trace.events() {
            match event {
                TraceEvent::Load(load) => {
                    if take.is_some_and(|limit| sent >= limit) {
                        break 'trace;
                    }
                    sent += 1;
                    let request = Request::Observe {
                        ip: load.ip,
                        offset: load.offset,
                        ghr: control.ghr,
                        actual: load.addr,
                    };
                    match client.serve(request, budget) {
                        Ok(WireResponse::Response(Response::Observed {
                            correct: hit, ..
                        })) => correct += u64::from(hit),
                        Ok(WireResponse::Error { .. }) => errors += 1,
                        Ok(other) => {
                            eprintln!("unexpected response {other:?}");
                            exit(1);
                        }
                        Err(e) => {
                            eprintln!("transport failed mid-trace: {e}");
                            exit(1);
                        }
                    }
                }
                TraceEvent::Branch(b) => control.on_branch(b.ip, b.taken, b.kind),
                TraceEvent::Store(_) | TraceEvent::Op(_) => {}
            }
        }
        if json {
            println!(
                "{}",
                JsonObject::new()
                    .u64("sent", sent)
                    .u64("correct", correct)
                    .u64("errors", errors)
                    .pretty()
            );
        } else {
            println!("sent {sent} loads: {correct} correct, {errors} structured errors");
        }
    }

    if want_stats {
        match client.stats() {
            Ok(WireResponse::Stats(doc)) => println!("{doc}"),
            Ok(other) => {
                eprintln!("unexpected response {other:?}");
                exit(1);
            }
            Err(e) => {
                eprintln!("stats failed: {e}");
                exit(1);
            }
        }
    }

    if let Some(ms) = shutdown_ms {
        match client.shutdown(Duration::from_millis(ms)) {
            Ok(WireResponse::ShutdownAck) => eprintln!("server acknowledged shutdown"),
            Ok(other) => {
                eprintln!("unexpected response {other:?}");
                exit(1);
            }
            Err(e) => {
                eprintln!("shutdown failed: {e}");
                exit(1);
            }
        }
    }
}

/// Fetches a running server's telemetry registry over the wire and
/// prints it `top`-style (or as JSON). With `--cluster`, polls every
/// node and merges the snapshots into one fleet dashboard; nodes that
/// are down are reported and skipped rather than failing the view.
fn cmd_top(mut args: Vec<String>) {
    let addr = take_value(&mut args, "--addr");
    let cluster = take_value(&mut args, "--cluster");
    let events =
        take_value(&mut args, "--events").map_or(16, |v| parse_number("--events", &v) as usize);
    let json = take_flag(&mut args, "--json");
    if !args.is_empty() {
        eprintln!("unrecognized arguments: {}", args.join(" "));
        usage();
    }

    let snapshot = match (addr, cluster) {
        (Some(addr), None) => {
            let mut client = TcpClient::connect(addr.as_str()).unwrap_or_else(|e| {
                eprintln!("cannot connect to {addr}: {e}");
                exit(1);
            });
            client.obs_stats().unwrap_or_else(|e| {
                eprintln!("obs-stats failed: {e}");
                exit(1);
            })
        }
        (None, Some(list)) => {
            // A dashboard must work *during* an incident: an
            // unreachable (dead or partitioned) node is marked stale
            // and skipped, never fatal to the merge. The read timeout
            // is what keeps a black-holed node from hanging the view.
            let mut merged = cap_obs::StatsSnapshot::default();
            let mut reporting = 0usize;
            let mut polled = 0usize;
            let mut stale: Vec<String> = Vec::new();
            for node in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                polled += 1;
                let snap = TcpClient::connect(node).and_then(|mut c| {
                    c.set_read_timeout(Some(Duration::from_secs(2)))?;
                    c.obs_stats()
                        .map_err(|e| std::io::Error::other(e.to_string()))
                });
                match snap {
                    Ok(snap) => {
                        merged.merge(&snap);
                        reporting += 1;
                    }
                    Err(e) => {
                        eprintln!("node {node} stale: {e}");
                        stale.push(node.to_owned());
                    }
                }
            }
            if stale.is_empty() {
                eprintln!("fleet view: {reporting}/{polled} nodes reporting");
            } else {
                eprintln!(
                    "fleet view: {reporting}/{polled} nodes reporting (stale: {})",
                    stale.join(", ")
                );
            }
            merged
        }
        _ => {
            eprintln!("top requires exactly one of --addr <host:port> or --cluster <list>");
            exit(2);
        }
    };
    if json {
        println!("{}", cap_harness::json::obs_snapshot_json(&snapshot).pretty());
    } else {
        print!("{}", snapshot.render_top(events));
    }
}

/// The fleet's request-accounting ledger plus routing facts, rendered
/// the same way as the single-node stats frame.
fn router_stats_json(router: &Router) -> String {
    let a = router.accounting();
    JsonObject::new()
        .u64("accepted", a.accepted)
        .u64("answered", a.answered)
        .u64("shed", a.shed)
        .u64("failover_attributed", a.failover_attributed)
        .u64("other_error", a.other_error)
        .bool("balances", a.balances())
        .u64("epoch", router.epoch())
        .u64("nodes", router.node_count() as u64)
        .u64("live_nodes", router.live_node_count() as u64)
        .pretty()
}

/// One front-door connection: the same framing loop as a node's
/// `serve_connection`, but requests terminate in the router — `Serve`
/// forwards by hash ring, `Stats` reports the accounting ledger,
/// `ObsStats` returns the merged fleet view, and `SnapshotPull` is
/// refused (the router holds no predictor state).
fn route_connection(
    stream: std::net::TcpStream,
    router: &Router,
    registry: &cap_obs::Registry,
    stop: &AtomicBool,
) {
    let mut stream = stream;
    let _ = stream.set_nodelay(true);
    if stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .is_err()
    {
        return;
    }
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        let payload = match read_frame(&mut stream) {
            Ok(Some(p)) => p,
            Ok(None) => return,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => return,
        };
        let response = match WireRequest::decode(&payload) {
            // Any client-stamped epoch is ignored: the router stamps
            // its own current epoch on the node-facing hop.
            Ok(WireRequest::Serve { request, budget, epoch: _ }) => match router.call(request, budget)
            {
                Ok(resp) => WireResponse::Response(resp),
                Err(e) => WireResponse::Error {
                    code: e.code(),
                    message: e.to_string(),
                },
            },
            Ok(WireRequest::Stats) => WireResponse::Stats(router_stats_json(router)),
            Ok(WireRequest::ObsStats) => {
                let (mut merged, _) = router.fleet_obs();
                merged.merge(&registry.snapshot());
                WireResponse::ObsStats(merged.encode())
            }
            Ok(WireRequest::SnapshotPull) => WireResponse::from_error(&ServiceError::Protocol(
                "the router holds no predictor state; pull snapshots from a node".into(),
            )),
            Ok(
                WireRequest::Fence { .. }
                | WireRequest::ReplicaPush { .. }
                | WireRequest::ReplicaFetch { .. },
            ) => WireResponse::from_error(&ServiceError::Protocol(
                "fence and replica frames are node-facing; the router front door refuses them"
                    .into(),
            )),
            Ok(WireRequest::Shutdown { .. }) => {
                stop.store(true, Ordering::Release);
                WireResponse::ShutdownAck
            }
            Err(err) => WireResponse::from_error(&err),
        };
        let is_ack = matches!(response, WireResponse::ShutdownAck);
        if write_frame_with_cap(&mut stream, &response.encode(), MAX_REPLY_FRAME_LEN).is_err() {
            return;
        }
        if is_ack {
            return;
        }
    }
}

/// Spawns a replacement `simulate serve` child seeded from the latest
/// shipped replica (when one exists) and promotes it into slot `node`.
/// Returns the replacement's address.
fn respawn_node(
    router: &Router,
    node: usize,
    dir: &Path,
    workers: u64,
    queue: u64,
    seed: Option<u64>,
) -> std::io::Result<SocketAddr> {
    use std::io::{Error, ErrorKind};
    let node_dir = dir.join(format!("node-{node}"));
    std::fs::create_dir_all(&node_dir)?;
    let port_file = node_dir.join("port");
    let _ = std::fs::remove_file(&port_file);

    let mut cmd = std::process::Command::new(std::env::current_exe()?);
    cmd.arg("serve")
        .arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--workers")
        .arg(workers.to_string())
        .arg("--queue")
        .arg(queue.to_string())
        .arg("--snapshot-dir")
        .arg(&node_dir)
        .arg("--port-file")
        .arg(&port_file)
        .arg("--keep")
        .arg("3");
    if let Some(seed) = seed {
        cmd.arg("--seed").arg(seed.to_string());
    }
    if let Some((replica, drift)) = router.replica_any(node) {
        // Warm promotion from the best surviving copy — the router's
        // own replica, or the one the shard's ring successor holds
        // (the R>1 payoff). Publish it as the newest checkpoint so the
        // child's --resume restores it. The drift bound says how many
        // answered requests the replacement has not seen; an older
        // fetched generation reports it as unknown rather than lying.
        let seq = list_checkpoints(&node_dir)
            .ok()
            .and_then(|list| list.last().map(|(n, _)| n + 1))
            .unwrap_or(1);
        write_checkpoint(&node_dir, seq, &replica)?;
        cmd.arg("--resume");
        match drift {
            Some(drift) => eprintln!(
                "promoting node {node} from replica (drift bound: {drift} requests)"
            ),
            None => eprintln!(
                "promoting node {node} from replica (drift bound: unknown, older generation)"
            ),
        }
    } else {
        eprintln!("no replica for node {node}; replacement starts cold");
    }
    cmd.stdout(std::process::Stdio::null());
    // The child is a fleet node in its own right; it outlives the
    // router and is reaped by whoever shuts the fleet down.
    let _child = cmd.spawn()?;

    let deadline = Instant::now() + Duration::from_secs(10);
    let port = loop {
        if let Some(port) = std::fs::read_to_string(&port_file)
            .ok()
            .and_then(|text| text.trim().parse::<u16>().ok())
        {
            break port;
        }
        if Instant::now() > deadline {
            return Err(Error::new(
                ErrorKind::TimedOut,
                "replacement node never published its port",
            ));
        }
        std::thread::sleep(Duration::from_millis(25));
    };
    let addr: SocketAddr = format!("127.0.0.1:{port}").parse().expect("loopback addr");
    router
        .promote(node, addr, None)
        .map_err(|e| Error::other(e.to_string()))?;
    Ok(addr)
}

/// Applies one admin-file line to the live router: `add <host:port>`
/// grows the ring, `remove <index>` shrinks it. Blank lines and `#`
/// comments are skipped; anything else is reported and ignored.
fn apply_admin_command(router: &Router, line: &str) {
    let mut parts = line.split_whitespace();
    match (parts.next(), parts.next()) {
        (None, _) | (Some("#"), _) => {}
        (Some("add"), Some(addr)) => {
            match addr
                .to_socket_addrs()
                .ok()
                .and_then(|mut it| it.next())
                .ok_or_else(|| format!("cannot resolve '{addr}'"))
                .and_then(|a| router.add_node(a).map_err(|e| e.to_string()))
            {
                Ok((index, epoch)) => eprintln!(
                    "admin: node {index} added at {addr} (epoch {epoch}, {} live nodes)",
                    router.live_node_count()
                ),
                Err(e) => eprintln!("admin: add {addr} failed: {e}"),
            }
        }
        (Some("remove"), Some(index)) => {
            match index
                .parse::<usize>()
                .map_err(|e| e.to_string())
                .and_then(|i| router.remove_node(i).map(|r| (i, r)).map_err(|e| e.to_string()))
            {
                Ok((index, (_archive, epoch))) => eprintln!(
                    "admin: node {index} removed (epoch {epoch}, {} live nodes)",
                    router.live_node_count()
                ),
                Err(e) => eprintln!("admin: remove {index} failed: {e}"),
            }
        }
        _ => {
            if !line.starts_with('#') {
                eprintln!("admin: unrecognized command '{line}'");
            }
        }
    }
}

/// Hosts the cluster front door: consistent-hash routing across a
/// fleet of `serve` nodes with background replica shipping, health
/// probes, (with `--respawn`) automatic promote-from-replica when a
/// node goes dark, and (with `--admin-file`) runtime ring resizing.
fn cmd_route(mut args: Vec<String>) {
    let nodes_arg = take_value(&mut args, "--nodes").unwrap_or_else(|| {
        eprintln!("route requires --nodes <host:port,host:port,...>");
        exit(2);
    });
    let addr = take_value(&mut args, "--addr").unwrap_or_else(|| "127.0.0.1:0".to_owned());
    let port_file = take_value(&mut args, "--port-file").map(PathBuf::from);
    let ship_every = Duration::from_millis(
        take_value(&mut args, "--ship-every-ms").map_or(500, |v| parse_number("--ship-every-ms", &v)),
    );
    let probe_every = Duration::from_millis(
        take_value(&mut args, "--probe-every-ms")
            .map_or(200, |v| parse_number("--probe-every-ms", &v)),
    );
    let respawn = take_flag(&mut args, "--respawn");
    let respawn_dir = take_value(&mut args, "--respawn-dir").map(PathBuf::from);
    let admin_file = take_value(&mut args, "--admin-file").map(PathBuf::from);
    let workers = take_value(&mut args, "--workers").map_or(2, |v| parse_number("--workers", &v));
    let queue = take_value(&mut args, "--queue").map_or(64, |v| parse_number("--queue", &v));
    let seed = take_value(&mut args, "--seed").map(|v| parse_number("--seed", &v));
    if !args.is_empty() {
        eprintln!("unrecognized arguments: {}", args.join(" "));
        usage();
    }
    if respawn && respawn_dir.is_none() {
        eprintln!("--respawn needs --respawn-dir");
        exit(2);
    }

    let mut addrs = Vec::new();
    for part in nodes_arg.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        match part.to_socket_addrs().ok().and_then(|mut it| it.next()) {
            Some(a) => addrs.push(a),
            None => {
                eprintln!("cannot resolve node address '{part}'");
                exit(1);
            }
        }
    }

    let registry = Arc::new(cap_obs::Registry::new());
    let rconfig = RouterConfig {
        obs: registry.obs(),
        ..RouterConfig::default()
    };
    let router = Arc::new(Router::new(&addrs, rconfig).unwrap_or_else(|e| {
        eprintln!("router: {e}");
        exit(1);
    }));
    let stop = Arc::new(AtomicBool::new(false));

    // The keeper owns the fleet's background duties on one thread:
    // probes feed the breakers on their cadence, ships refresh replicas
    // on theirs, and three consecutive failed probes trigger the
    // respawn-and-promote path.
    let keeper = {
        let router = Arc::clone(&router);
        let stop = Arc::clone(&stop);
        let respawn_dir = respawn_dir.clone();
        std::thread::Builder::new()
            .name("cap-route-keeper".into())
            .spawn(move || {
                let tick = Duration::from_millis(50);
                let mut until_ship = ship_every;
                let mut until_probe = probe_every;
                let mut strikes = vec![0u32; router.node_count()];
                let mut admin_seen = 0usize;
                while !stop.load(Ordering::Acquire) {
                    std::thread::sleep(tick);
                    until_probe = until_probe.saturating_sub(tick);
                    until_ship = until_ship.saturating_sub(tick);
                    // Runtime resizing rides an append-only admin file:
                    // each new line is `add <host:port>` or
                    // `remove <index>`, applied in order.
                    if let Some(path) = admin_file.as_deref() {
                        if let Ok(text) = std::fs::read_to_string(path) {
                            let lines: Vec<&str> = text.lines().collect();
                            for line in lines.iter().skip(admin_seen) {
                                apply_admin_command(&router, line.trim());
                            }
                            admin_seen = lines.len();
                        }
                    }
                    if until_probe == Duration::ZERO {
                        until_probe = probe_every;
                        let probes = router.probe_now();
                        if strikes.len() < probes.len() {
                            // add_node grew the fleet since last probe.
                            strikes.resize(probes.len(), 0);
                        }
                        for (i, probed) in probes.into_iter().enumerate() {
                            match probed {
                                Ok(()) => strikes[i] = 0,
                                Err(e) => {
                                    strikes[i] += 1;
                                    if strikes[i] != 3 {
                                        continue;
                                    }
                                    eprintln!("node {i} failed 3 consecutive probes: {e}");
                                    let Some(dir) = respawn_dir.as_deref() else {
                                        continue;
                                    };
                                    match respawn_node(&router, i, dir, workers, queue, seed) {
                                        Ok(addr) => {
                                            strikes[i] = 0;
                                            eprintln!(
                                                "node {i} replaced at {addr} (epoch {})",
                                                router.epoch()
                                            );
                                        }
                                        Err(e) => eprintln!("node {i} respawn failed: {e}"),
                                    }
                                }
                            }
                        }
                    }
                    if until_ship == Duration::ZERO {
                        until_ship = ship_every;
                        for (i, shipped) in router.ship_now().into_iter().enumerate() {
                            if let Err(e) = shipped {
                                eprintln!("replica ship from node {i} failed: {e}");
                            }
                        }
                    }
                }
            })
            .expect("spawn keeper thread")
    };

    let listener = std::net::TcpListener::bind(addr.as_str()).unwrap_or_else(|e| {
        eprintln!("cannot bind {addr}: {e}");
        exit(1);
    });
    let local = listener.local_addr().expect("bound socket has an address");
    println!("routing on {local} across {} nodes", router.node_count());
    if let Some(path) = &port_file {
        if let Err(e) = std::fs::write(path, format!("{}\n", local.port())) {
            eprintln!("cannot write {}: {e}", path.display());
            exit(1);
        }
    }

    listener
        .set_nonblocking(true)
        .expect("nonblocking accept loop");
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let router = Arc::clone(&router);
                let registry = Arc::clone(&registry);
                let stop = Arc::clone(&stop);
                conns.push(
                    std::thread::Builder::new()
                        .name("cap-route-conn".into())
                        .spawn(move || route_connection(stream, &router, &registry, &stop))
                        .expect("spawn connection thread"),
                );
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => {
                eprintln!("accept failed: {e}");
                stop.store(true, Ordering::Release);
            }
        }
        conns.retain(|c| !c.is_finished());
    }
    for conn in conns {
        let _ = conn.join();
    }
    let _ = keeper.join();

    let acct = router.accounting();
    println!(
        "router drained: {} accepted = {} answered + {} shed + {} failover + {} other \
         (balanced: {}, epoch {})",
        acct.accepted,
        acct.answered,
        acct.shed,
        acct.failover_attributed,
        acct.other_error,
        acct.balances(),
        router.epoch()
    );
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let cmd = args.remove(0);
    match cmd.as_str() {
        "gen" => cmd_gen(args),
        "run" => cmd_run(args),
        "serve" => cmd_serve(args),
        "backends" => cmd_backends(args),
        "client" => cmd_client(args),
        "route" => cmd_route(args),
        "top" => cmd_top(args),
        _ => usage(),
    }
}
