//! Little-endian wire primitives.
//!
//! A [`SectionWriter`] appends fixed-width fields to a section payload; a
//! [`SectionReader`] consumes them, returning a structured
//! [`SnapshotError`] — never panicking — when the bytes disagree with the
//! expected shape. Readers carry the section name so every error can say
//! *where* it happened.

use crate::SnapshotError;

/// Appends snapshot state to a section payload.
#[derive(Debug, Default)]
pub struct SectionWriter {
    buf: Vec<u8>,
}

impl SectionWriter {
    /// An empty payload.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `i64` (two's complement).
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `i32` (two's complement).
    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `bool` as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Writes a `usize` as a `u64` (the format is 64-bit regardless of
    /// host width).
    pub fn put_len(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Writes an `Option<u64>` as a presence byte plus the value.
    pub fn put_opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.put_bool(true);
                self.put_u64(x);
            }
            None => self.put_bool(false),
        }
    }

    /// Writes raw bytes with no framing (caller wrote the length already).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// Consumes a section payload, tracking the section name for errors.
#[derive(Debug)]
pub struct SectionReader<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'a str,
}

impl<'a> SectionReader<'a> {
    /// A reader over `buf`, attributing errors to `section`.
    #[must_use]
    pub fn new(buf: &'a [u8], section: &'a str) -> Self {
        Self { buf, pos: 0, section }
    }

    /// The section this reader attributes errors to.
    #[must_use]
    pub fn section(&self) -> &str {
        self.section
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated {
                section: self.section.to_owned(),
                what,
                needed: n,
                available: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self, what: &'static str) -> Result<u8, SnapshotError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn take_u16(&mut self, what: &'static str) -> Result<u16, SnapshotError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self, what: &'static str) -> Result<u32, SnapshotError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self, what: &'static str) -> Result<u64, SnapshotError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("slice is 8 bytes")))
    }

    /// Reads a little-endian `i64`.
    pub fn take_i64(&mut self, what: &'static str) -> Result<i64, SnapshotError> {
        let b = self.take(8, what)?;
        Ok(i64::from_le_bytes(b.try_into().expect("slice is 8 bytes")))
    }

    /// Reads a little-endian `i32`.
    pub fn take_i32(&mut self, what: &'static str) -> Result<i32, SnapshotError> {
        let b = self.take(4, what)?;
        Ok(i32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `bool`, rejecting any byte other than 0 or 1.
    pub fn take_bool(&mut self, what: &'static str) -> Result<bool, SnapshotError> {
        match self.take_u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(self.bad_value(format!("{what}: bool byte must be 0 or 1, got {other}"))),
        }
    }

    /// Reads an `Option<u64>` written by [`SectionWriter::put_opt_u64`].
    pub fn take_opt_u64(&mut self, what: &'static str) -> Result<Option<u64>, SnapshotError> {
        if self.take_bool(what)? {
            Ok(Some(self.take_u64(what)?))
        } else {
            Ok(None)
        }
    }

    /// Reads an element count written by [`SectionWriter::put_len`],
    /// rejecting — before anything is allocated from it — any count whose
    /// elements (at `min_elem_bytes` apiece) could not fit in the bytes
    /// that remain. This is the width-overflow guard that keeps hostile
    /// lengths from driving huge allocations or wraparound arithmetic.
    pub fn take_len(
        &mut self,
        min_elem_bytes: usize,
        what: &'static str,
    ) -> Result<usize, SnapshotError> {
        let raw = self.take_u64(what)?;
        let limit = self
            .remaining()
            .checked_div(min_elem_bytes)
            .unwrap_or(self.remaining()) as u64;
        if raw > limit {
            return Err(SnapshotError::WidthOverflow {
                section: self.section.to_owned(),
                what,
                value: raw,
                limit,
            });
        }
        Ok(raw as usize)
    }

    /// Reads exactly `n` raw bytes (inverse of a length-prefixed
    /// [`SectionWriter::put_raw`]; pair with [`SectionReader::take_len`]
    /// to recover variable-length payloads such as strings).
    pub fn take_raw(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], SnapshotError> {
        self.take(n, what)
    }

    /// Builds a [`SnapshotError::BadValue`] attributed to this section.
    pub fn bad_value(&self, what: impl Into<String>) -> SnapshotError {
        SnapshotError::BadValue {
            section: self.section.to_owned(),
            what: what.into(),
        }
    }

    /// Succeeds only if every byte was consumed.
    pub fn finish(&self) -> Result<(), SnapshotError> {
        if self.remaining() != 0 {
            return Err(SnapshotError::TrailingBytes {
                section: self.section.to_owned(),
                remaining: self.remaining(),
            });
        }
        Ok(())
    }
}

/// State that can be written into a snapshot section payload.
pub trait Snapshot {
    /// Appends this value's full live state to `w`.
    fn write_state(&self, w: &mut SectionWriter);

    /// Convenience: the value encoded as a stand-alone payload.
    fn to_payload(&self) -> Vec<u8> {
        let mut w = SectionWriter::new();
        self.write_state(&mut w);
        w.into_bytes()
    }
}

/// State that can be rebuilt from a snapshot section payload.
///
/// Implementations must *never panic* on hostile input: any byte sequence
/// either decodes to a value satisfying the type's invariants or returns a
/// structured [`SnapshotError`].
pub trait Restorable: Sized {
    /// Reads one value from `r`, validating every invariant the type's
    /// constructors would have enforced.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] variant describing how the bytes disagreed
    /// with the expected shape.
    fn read_state(r: &mut SectionReader<'_>) -> Result<Self, SnapshotError>;

    /// Convenience: decodes a stand-alone payload, requiring that every
    /// byte is consumed.
    ///
    /// # Errors
    ///
    /// Propagates [`Restorable::read_state`] failures, plus
    /// [`SnapshotError::TrailingBytes`] on leftover bytes.
    fn from_payload(bytes: &[u8], section: &str) -> Result<Self, SnapshotError> {
        let mut r = SectionReader::new(bytes, section);
        let value = Self::read_state(&mut r)?;
        r.finish()?;
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut w = SectionWriter::new();
        w.put_u8(0xAB);
        w.put_u16(0x1234);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 7);
        w.put_i64(-42);
        w.put_i32(-7);
        w.put_bool(true);
        w.put_opt_u64(Some(9));
        w.put_opt_u64(None);
        let bytes = w.into_bytes();
        let mut r = SectionReader::new(&bytes, "test");
        assert_eq!(r.take_u8("a").unwrap(), 0xAB);
        assert_eq!(r.take_u16("b").unwrap(), 0x1234);
        assert_eq!(r.take_u32("c").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.take_u64("d").unwrap(), u64::MAX - 7);
        assert_eq!(r.take_i64("e").unwrap(), -42);
        assert_eq!(r.take_i32("f").unwrap(), -7);
        assert!(r.take_bool("g").unwrap());
        assert_eq!(r.take_opt_u64("h").unwrap(), Some(9));
        assert_eq!(r.take_opt_u64("i").unwrap(), None);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_structured() {
        let mut r = SectionReader::new(&[1, 2], "lb");
        let err = r.take_u64("tick").unwrap_err();
        match err {
            SnapshotError::Truncated {
                section,
                what,
                needed,
                available,
            } => {
                assert_eq!(section, "lb");
                assert_eq!(what, "tick");
                assert_eq!(needed, 8);
                assert_eq!(available, 2);
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn bool_rejects_junk_bytes() {
        let mut r = SectionReader::new(&[7], "flags");
        assert!(matches!(
            r.take_bool("valid").unwrap_err(),
            SnapshotError::BadValue { .. }
        ));
    }

    #[test]
    fn hostile_length_is_width_overflow_not_allocation() {
        let mut w = SectionWriter::new();
        w.put_len(usize::MAX);
        let bytes = w.into_bytes();
        let mut r = SectionReader::new(&bytes, "lt");
        let err = r.take_len(8, "set count").unwrap_err();
        match err {
            SnapshotError::WidthOverflow { section, value, .. } => {
                assert_eq!(section, "lt");
                assert_eq!(value, u64::MAX);
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn trailing_bytes_rejected_by_from_payload() {
        #[derive(Debug)]
        struct One(u8);
        impl Restorable for One {
            fn read_state(r: &mut SectionReader<'_>) -> Result<Self, SnapshotError> {
                Ok(One(r.take_u8("v")?))
            }
        }
        let err = One::from_payload(&[1, 2], "one").unwrap_err();
        assert!(matches!(err, SnapshotError::TrailingBytes { remaining: 1, .. }));
        assert_eq!(One::from_payload(&[3], "one").unwrap().0, 3);
    }
}
