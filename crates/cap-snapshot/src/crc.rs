//! CRC-32 (IEEE 802.3, the zlib/PNG polynomial) — the per-section
//! integrity check of the snapshot container.
//!
//! Implemented in-repo because the workspace is dependency-free by
//! design; validated against the standard check value
//! (`crc32("123456789") == 0xCBF43926`).

/// Reflected CRC-32 polynomial (0x04C11DB7 bit-reversed).
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Computes the CRC-32 of `bytes`.
///
/// # Examples
///
/// ```
/// assert_eq!(cap_snapshot::crc32(b"123456789"), 0xCBF4_3926);
/// ```
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn known_vectors() {
        // Independently computable reference values for the IEEE polynomial.
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"abc"), 0x3524_41C2);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let clean = b"some section payload bytes".to_vec();
        let base = crc32(&clean);
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut bad = clean.clone();
                bad[byte] ^= 1 << bit;
                assert_ne!(crc32(&bad), base, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
