//! Versioned, checksummed binary snapshots of live simulator state.
//!
//! The CAP predictors are long-lived stateful tables; this crate gives
//! that state a durable form: a `magic | format-version | sections`
//! container ([`SnapshotArchive`]) where every section's payload carries a
//! CRC-32, and a [`Snapshot`]/[`Restorable`] trait pair that the predictor
//! and microarchitecture crates implement for their types.
//!
//! Two guarantees define the crate:
//!
//! 1. **Exactness** — restoring a snapshot reproduces the source value
//!    bit-for-bit, including LRU ticks, confidence counters, speculative
//!    history, and PRNG position, so a resumed simulation is
//!    indistinguishable from an uninterrupted one.
//! 2. **Hostility tolerance** — no decode path panics, whatever the input
//!    bytes. Every failure is a structured [`SnapshotError`] naming the
//!    section and reason (truncation, CRC mismatch, version skew, width
//!    overflow, invariant violation). The `cap-faults` chaos suite feeds
//!    thousands of mutated snapshots through these paths to hold the line.
//!
//! Between full snapshots, the [`journal`] module frames CRC'd
//! append-only delta records (`journal-*.capj`) whose replay is
//! torn-tail-tolerant — the price of an append-only file that must
//! survive crashes mid-append.
//!
//! File I/O, checkpoint rotation, and crash-consistent atomic writes live
//! in `cap-harness`; this crate is pure bytes.

mod archive;
mod crc;
mod error;
pub mod journal;
mod wire;

pub use archive::{SnapshotArchive, SnapshotBuilder, FORMAT_VERSION, MAGIC, MAX_NAME_LEN};
pub use crc::crc32;
pub use error::SnapshotError;
pub use journal::{
    encode_journal_header, encode_journal_record, JournalReplay, TornReason, TornTail,
    JOURNAL_MAGIC, JOURNAL_VERSION,
};
pub use wire::{Restorable, SectionReader, SectionWriter, Snapshot};

use cap_rand::rngs::StdRng;

impl Snapshot for StdRng {
    fn write_state(&self, w: &mut SectionWriter) {
        for word in self.state() {
            w.put_u64(word);
        }
    }
}

impl Restorable for StdRng {
    fn read_state(r: &mut SectionReader<'_>) -> Result<Self, SnapshotError> {
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = r.take_u64("rng state word")?;
        }
        if s == [0; 4] {
            // The all-zero state is the transition function's fixed point;
            // a legitimate writer can never produce it (from_state remaps
            // it at construction), so reject rather than silently remap.
            return Err(r.bad_value("rng state is all-zero (degenerate xoshiro fixed point)"));
        }
        Ok(StdRng::from_state(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cap_rand::{Rng, RngCore, SeedableRng};

    #[test]
    fn rng_snapshot_resumes_exact_stream() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..173 {
            rng.next_u64();
        }
        let payload = rng.to_payload();
        let mut restored = StdRng::from_payload(&payload, "rng").unwrap();
        for _ in 0..512 {
            assert_eq!(restored.next_u64(), rng.next_u64());
        }
    }

    #[test]
    fn all_zero_rng_state_rejected() {
        let payload = vec![0u8; 32];
        assert!(matches!(
            StdRng::from_payload(&payload, "rng").unwrap_err(),
            SnapshotError::BadValue { section, .. } if section == "rng"
        ));
    }

    #[test]
    fn gen_bool_position_survives_roundtrip() {
        // gen_bool/gen_range consume words too; position must carry over.
        let mut rng = StdRng::seed_from_u64(4);
        let _ = rng.gen_range(0..100u32);
        let _ = rng.gen_bool(0.3);
        let mut restored = StdRng::from_payload(&rng.to_payload(), "rng").unwrap();
        assert_eq!(restored.gen_range(0..1_000_000u64), rng.gen_range(0..1_000_000u64));
    }
}
