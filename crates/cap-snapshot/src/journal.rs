//! The delta-journal record codec: CRC'd append-only records written
//! between full snapshots.
//!
//! A full [`crate::SnapshotArchive`] bounds recovery loss to the
//! *checkpoint interval*; the journal shrinks that bound to the
//! *flush interval* by logging each event applied since the last full
//! snapshot. Recovery restores the newest complete snapshot and then
//! re-applies the journal's records in order.
//!
//! # Wire format
//!
//! ```text
//! header:  magic "CAPJRNL\0" | version u32 LE | base_events u64 LE
//! record:  len u32 LE | crc32(payload) u32 LE | payload (len bytes)
//! record:  ...
//! ```
//!
//! `base_events` names the snapshot this journal applies on top of
//! (`0` = a fresh, cold state). Records repeat until the file ends.
//!
//! # Torn tails are data, not errors
//!
//! An append-only file that lives through crashes *will* end
//! mid-record: a crash can cut the final append anywhere, and a lying
//! fsync can drop its tail entirely. [`JournalReplay::parse`] therefore
//! never fails on the record stream — it returns every record up to the
//! first framing violation or CRC mismatch and reports the cut as a
//! [`TornTail`]. Only a damaged *header* is an error (the file is not a
//! journal, or its base is unreadable — there is nothing safe to
//! replay).
//!
//! Bytes *after* a bad record are unreachable by design: once one frame
//! is untrusted, every later frame boundary is untrusted too.

use crate::crc::crc32;
use crate::error::SnapshotError;

/// Leading bytes of every journal file.
pub const JOURNAL_MAGIC: [u8; 8] = *b"CAPJRNL\0";

/// Journal format version written by this build.
pub const JOURNAL_VERSION: u32 = 1;

/// Byte length of the fixed journal header.
pub const JOURNAL_HEADER_LEN: usize = 8 + 4 + 8;

/// Per-record framing overhead (length + CRC) in bytes.
pub const JOURNAL_RECORD_OVERHEAD: usize = 4 + 4;

/// Upper bound on a single record payload. Far above anything the
/// harness writes (one trace event ≈ tens of bytes); exists so a
/// garbage length field in a torn tail cannot size an allocation.
pub const MAX_RECORD_LEN: u32 = 16 * 1024 * 1024;

const SECTION: &str = "journal";

/// Encodes the fixed header of a journal applying on top of the
/// snapshot taken at `base_events` events.
#[must_use]
pub fn encode_journal_header(base_events: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(JOURNAL_HEADER_LEN);
    out.extend_from_slice(&JOURNAL_MAGIC);
    out.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
    out.extend_from_slice(&base_events.to_le_bytes());
    out
}

/// Frames one record: `len | crc32 | payload`.
///
/// # Panics
///
/// If `payload` exceeds [`MAX_RECORD_LEN`] — a writer bug, not an input
/// condition (the harness journals single trace events).
#[must_use]
pub fn encode_journal_record(payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= MAX_RECORD_LEN as usize,
        "journal record of {} bytes exceeds MAX_RECORD_LEN",
        payload.len()
    );
    let mut out = Vec::with_capacity(JOURNAL_RECORD_OVERHEAD + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Where and why a journal's record stream stopped short of the file's
/// end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// Byte offset of the first untrusted byte (== the end of the last
    /// valid record).
    pub at_byte: usize,
    /// Bytes abandoned from there to the end of the file.
    pub lost_bytes: usize,
    /// What the framing scan hit.
    pub reason: TornReason,
}

/// The framing violation that ended a record stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TornReason {
    /// Fewer than [`JOURNAL_RECORD_OVERHEAD`] bytes remained — the
    /// frame header itself was cut.
    PartialFrame,
    /// The length field promises more bytes than the file holds — the
    /// payload was cut.
    PartialPayload,
    /// The length field exceeds [`MAX_RECORD_LEN`] — garbage framing.
    OversizedLength,
    /// The payload is complete but its CRC does not match.
    CrcMismatch,
}

impl TornReason {
    /// Short name for logs and reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TornReason::PartialFrame => "partial-frame",
            TornReason::PartialPayload => "partial-payload",
            TornReason::OversizedLength => "oversized-length",
            TornReason::CrcMismatch => "crc-mismatch",
        }
    }
}

/// A parsed journal: the validated prefix of an append-only file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalReplay {
    /// Event count of the snapshot this journal applies on top of.
    pub base_events: u64,
    /// Every record whose framing and CRC checked out, in append order.
    pub records: Vec<Vec<u8>>,
    /// Length of the trusted prefix (header + valid records). Rewriting
    /// the file as `bytes[..valid_len]` drops the torn tail.
    pub valid_len: usize,
    /// Present when the file held bytes beyond the last valid record.
    pub torn: Option<TornTail>,
}

impl JournalReplay {
    /// Parses a journal file.
    ///
    /// # Errors
    ///
    /// Only for a damaged *header* (short, wrong magic, or a version
    /// this build cannot read). Anything wrong in the record stream is
    /// reported as [`JournalReplay::torn`], never an error.
    pub fn parse(bytes: &[u8]) -> Result<Self, SnapshotError> {
        if bytes.len() < JOURNAL_HEADER_LEN {
            if bytes.len() < JOURNAL_MAGIC.len() || bytes[..8] != JOURNAL_MAGIC {
                return Err(SnapshotError::BadMagic {
                    found: bytes[..bytes.len().min(8)].to_vec(),
                });
            }
            return Err(SnapshotError::Truncated {
                section: SECTION.to_owned(),
                what: "journal header",
                needed: JOURNAL_HEADER_LEN,
                available: bytes.len(),
            });
        }
        if bytes[..8] != JOURNAL_MAGIC {
            return Err(SnapshotError::BadMagic {
                found: bytes[..8].to_vec(),
            });
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version == 0 || version > JOURNAL_VERSION {
            return Err(SnapshotError::VersionSkew {
                found: version,
                supported: JOURNAL_VERSION,
            });
        }
        let base_events = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));

        let mut records = Vec::new();
        let mut at = JOURNAL_HEADER_LEN;
        let torn = loop {
            if at == bytes.len() {
                break None; // clean end exactly on a record boundary
            }
            let remaining = bytes.len() - at;
            if remaining < JOURNAL_RECORD_OVERHEAD {
                break Some(TornReason::PartialFrame);
            }
            let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
            if len > MAX_RECORD_LEN {
                break Some(TornReason::OversizedLength);
            }
            let stored_crc =
                u32::from_le_bytes(bytes[at + 4..at + 8].try_into().expect("4 bytes"));
            let payload_start = at + JOURNAL_RECORD_OVERHEAD;
            let payload_end = payload_start + len as usize;
            if payload_end > bytes.len() {
                break Some(TornReason::PartialPayload);
            }
            let payload = &bytes[payload_start..payload_end];
            if crc32(payload) != stored_crc {
                break Some(TornReason::CrcMismatch);
            }
            records.push(payload.to_vec());
            at = payload_end;
        };

        Ok(JournalReplay {
            base_events,
            records,
            valid_len: at,
            torn: torn.map(|reason| TornTail {
                at_byte: at,
                lost_bytes: bytes.len() - at,
                reason,
            }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn journal(base: u64, payloads: &[&[u8]]) -> Vec<u8> {
        let mut bytes = encode_journal_header(base);
        for p in payloads {
            bytes.extend_from_slice(&encode_journal_record(p));
        }
        bytes
    }

    #[test]
    fn roundtrip_clean_journal() {
        let bytes = journal(5_000, &[b"alpha", b"", b"gamma gamma"]);
        let replay = JournalReplay::parse(&bytes).unwrap();
        assert_eq!(replay.base_events, 5_000);
        assert_eq!(replay.records, vec![b"alpha".to_vec(), Vec::new(), b"gamma gamma".to_vec()]);
        assert_eq!(replay.valid_len, bytes.len());
        assert!(replay.torn.is_none());
    }

    #[test]
    fn header_only_journal_is_empty_not_torn() {
        let replay = JournalReplay::parse(&encode_journal_header(0)).unwrap();
        assert_eq!(replay.base_events, 0);
        assert!(replay.records.is_empty());
        assert!(replay.torn.is_none());
    }

    #[test]
    fn truncation_at_every_cut_point_recovers_the_valid_prefix() {
        let payloads: [&[u8]; 3] = [b"first record", b"second", b"the third record here"];
        let bytes = journal(42, &payloads);
        // Record boundaries (end offsets of each complete record).
        let mut boundaries = vec![JOURNAL_HEADER_LEN];
        for p in payloads {
            boundaries.push(boundaries.last().unwrap() + JOURNAL_RECORD_OVERHEAD + p.len());
        }
        for cut in JOURNAL_HEADER_LEN..=bytes.len() {
            let replay = JournalReplay::parse(&bytes[..cut]).unwrap();
            assert_eq!(replay.base_events, 42);
            // How many whole records fit before the cut?
            let expect = boundaries.iter().filter(|&&b| b > JOURNAL_HEADER_LEN && b <= cut).count();
            assert_eq!(replay.records.len(), expect, "cut at {cut}");
            for (i, r) in replay.records.iter().enumerate() {
                assert_eq!(r.as_slice(), payloads[i]);
            }
            assert_eq!(replay.valid_len, boundaries[expect], "cut at {cut}");
            let on_boundary = boundaries.contains(&cut);
            assert_eq!(replay.torn.is_none(), on_boundary, "cut at {cut}");
            if let Some(t) = replay.torn {
                assert_eq!(t.at_byte, boundaries[expect]);
                assert_eq!(t.lost_bytes, cut - boundaries[expect]);
                assert!(matches!(
                    t.reason,
                    TornReason::PartialFrame | TornReason::PartialPayload
                ));
            }
        }
    }

    #[test]
    fn corrupt_header_is_an_error_at_every_cut() {
        for cut in 0..JOURNAL_HEADER_LEN {
            let bytes = journal(7, &[b"x"]);
            assert!(JournalReplay::parse(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        let mut bad_magic = journal(7, &[b"x"]);
        bad_magic[0] ^= 0xFF;
        assert!(matches!(
            JournalReplay::parse(&bad_magic),
            Err(SnapshotError::BadMagic { .. })
        ));
        let mut skewed = journal(7, &[b"x"]);
        skewed[8..12].copy_from_slice(&(JOURNAL_VERSION + 1).to_le_bytes());
        assert!(matches!(
            JournalReplay::parse(&skewed),
            Err(SnapshotError::VersionSkew { .. })
        ));
    }

    #[test]
    fn bit_flip_in_any_record_stops_replay_there() {
        let payloads: [&[u8]; 3] = [b"aaaa", b"bbbb", b"cccc"];
        let clean = journal(1, &payloads);
        for byte in JOURNAL_HEADER_LEN..clean.len() {
            let mut bytes = clean.clone();
            bytes[byte] ^= 0x40;
            let replay = JournalReplay::parse(&bytes).unwrap();
            let tail = replay.torn.expect("a flipped byte must surface as torn");
            // Which record holds the flipped byte? Replay keeps the ones
            // before it and nothing at or after it.
            let rec = (byte - JOURNAL_HEADER_LEN) / (JOURNAL_RECORD_OVERHEAD + 4);
            assert_eq!(replay.records.len(), rec, "flip at byte {byte}");
            assert!(tail.lost_bytes > 0);
        }
    }

    #[test]
    fn garbage_length_cannot_size_an_allocation() {
        let mut bytes = encode_journal_header(0);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // absurd length
        bytes.extend_from_slice(&[0u8; 60]);
        let replay = JournalReplay::parse(&bytes).unwrap();
        assert!(replay.records.is_empty());
        assert_eq!(replay.torn.unwrap().reason, TornReason::OversizedLength);
    }

    #[test]
    fn rewriting_the_valid_prefix_yields_a_clean_journal() {
        let mut bytes = journal(9, &[b"keep me", b"keep me too"]);
        let full = bytes.clone();
        bytes.extend_from_slice(&[0xDE, 0xAD, 0xBE]); // torn tail
        let replay = JournalReplay::parse(&bytes).unwrap();
        assert!(replay.torn.is_some());
        assert_eq!(&bytes[..replay.valid_len], full.as_slice());
        let again = JournalReplay::parse(&bytes[..replay.valid_len]).unwrap();
        assert!(again.torn.is_none());
        assert_eq!(again.records, replay.records);
    }
}
