//! Structured decode errors.
//!
//! Every way a snapshot can fail to load maps to one variant, and every
//! variant names the *section* it arose in — the contract the chaos suite
//! in `cap-faults` enforces: hostile bytes may produce any of these, but
//! never a panic.

/// Why a snapshot (or one of its sections) failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The container does not start with the snapshot magic.
    BadMagic {
        /// The bytes found where the magic should be (possibly short).
        found: Vec<u8>,
    },
    /// The container's format version is not one this build can read.
    VersionSkew {
        /// Version stored in the container.
        found: u32,
        /// Highest version this build supports.
        supported: u32,
    },
    /// Fewer bytes were available than a field required.
    Truncated {
        /// Section being decoded (`"container"` for the outer framing).
        section: String,
        /// The field or structure being read when bytes ran out.
        what: &'static str,
        /// Bytes the read needed.
        needed: usize,
        /// Bytes actually remaining.
        available: usize,
    },
    /// A section's stored CRC-32 does not match its payload.
    CrcMismatch {
        /// Section whose checksum failed.
        section: String,
        /// CRC stored in the container.
        stored: u32,
        /// CRC computed over the payload as read.
        computed: u32,
    },
    /// A stored length or count is larger than the bytes that could back
    /// it — rejected *before* any allocation is sized from it.
    WidthOverflow {
        /// Section being decoded.
        section: String,
        /// The count or length field in question.
        what: &'static str,
        /// The stored value.
        value: u64,
        /// The maximum the surrounding bytes could support.
        limit: u64,
    },
    /// A decoded value violates the target type's invariants (bad enum
    /// tag, non-power-of-two geometry, counter above its ceiling, ...).
    BadValue {
        /// Section being decoded.
        section: String,
        /// What was wrong.
        what: String,
    },
    /// A section the restore required is absent from the container.
    MissingSection {
        /// The section name looked up.
        name: String,
    },
    /// A section decoded cleanly but left unread bytes behind — the
    /// payload does not have the shape the type expected.
    TrailingBytes {
        /// Section being decoded.
        section: String,
        /// Unconsumed byte count.
        remaining: usize,
    },
}

impl SnapshotError {
    /// The section the error arose in, where one is known.
    #[must_use]
    pub fn section(&self) -> Option<&str> {
        match self {
            SnapshotError::Truncated { section, .. }
            | SnapshotError::CrcMismatch { section, .. }
            | SnapshotError::WidthOverflow { section, .. }
            | SnapshotError::BadValue { section, .. }
            | SnapshotError::TrailingBytes { section, .. } => Some(section),
            SnapshotError::MissingSection { name } => Some(name),
            SnapshotError::BadMagic { .. } | SnapshotError::VersionSkew { .. } => None,
        }
    }
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic { found } => {
                write!(f, "not a snapshot: bad magic {found:02x?}")
            }
            SnapshotError::VersionSkew { found, supported } => {
                write!(f, "snapshot format version {found} unsupported (this build reads <= {supported})")
            }
            SnapshotError::Truncated {
                section,
                what,
                needed,
                available,
            } => write!(
                f,
                "section '{section}': truncated reading {what} (needed {needed} bytes, {available} left)"
            ),
            SnapshotError::CrcMismatch {
                section,
                stored,
                computed,
            } => write!(
                f,
                "section '{section}': CRC mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
            SnapshotError::WidthOverflow {
                section,
                what,
                value,
                limit,
            } => write!(
                f,
                "section '{section}': {what} of {value} exceeds what {limit} remaining bytes can hold"
            ),
            SnapshotError::BadValue { section, what } => {
                write!(f, "section '{section}': {what}")
            }
            SnapshotError::MissingSection { name } => {
                write!(f, "snapshot has no section '{name}'")
            }
            SnapshotError::TrailingBytes { section, remaining } => {
                write!(f, "section '{section}': {remaining} trailing bytes after decode")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Every decode failure means the bytes themselves are damaged or from
/// an incompatible writer — retrying against the same bytes cannot
/// succeed.
impl cap_obs::Classify for SnapshotError {
    fn error_class(&self) -> cap_obs::ErrorClass {
        cap_obs::ErrorClass::Corrupt
    }
}
