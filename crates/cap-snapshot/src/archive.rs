//! The snapshot container: `magic | format-version | sections`, each
//! section independently CRC-32-checked.
//!
//! Wire layout (all integers little-endian):
//!
//! ```text
//! magic            8 bytes   b"CAPSNAP\0"
//! format version   u32       readers reject versions above theirs
//! section count    u32
//! per section:
//!   name length    u16       1..=MAX_NAME_LEN
//!   name           bytes     ASCII
//!   payload length u64
//!   payload crc32  u32       CRC-32 (IEEE) of the payload bytes
//!   payload        bytes
//! ```
//!
//! The header and framing are *not* covered by a checksum of their own:
//! framing damage shows up as a structured parse error (bad magic,
//! truncation, width overflow) rather than going undetected, while every
//! byte of state lives in some section's payload and therefore *is* CRC
//! covered. Parsing checks every section's CRC eagerly, so a corrupted
//! section fails the load even if the caller never restores it.

use crate::crc::crc32;
use crate::wire::{Restorable, SectionReader, Snapshot};
use crate::SnapshotError;

/// First bytes of every snapshot.
pub const MAGIC: [u8; 8] = *b"CAPSNAP\0";

/// The container version this build writes (and the highest it reads).
pub const FORMAT_VERSION: u32 = 1;

/// Longest permitted section name.
pub const MAX_NAME_LEN: usize = 64;

/// Builds a snapshot container section by section.
///
/// # Examples
///
/// ```
/// use cap_snapshot::{SnapshotArchive, SnapshotBuilder};
///
/// let mut b = SnapshotBuilder::new();
/// b.add_raw("meta", vec![1, 2, 3]);
/// let bytes = b.finish();
/// let archive = SnapshotArchive::parse(&bytes).unwrap();
/// assert_eq!(archive.section("meta").unwrap(), &[1, 2, 3]);
/// ```
#[derive(Debug, Default)]
pub struct SnapshotBuilder {
    sections: Vec<(String, Vec<u8>)>,
}

impl SnapshotBuilder {
    /// An empty container.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a section holding `value`'s encoded state.
    ///
    /// # Panics
    ///
    /// Panics if `name` is empty, longer than [`MAX_NAME_LEN`], or already
    /// present — section names are chosen by code, not input, so a clash
    /// is a programming error.
    pub fn add<T: Snapshot + ?Sized>(&mut self, name: &str, value: &T) {
        self.add_raw(name, value.to_payload());
    }

    /// Adds a section with a caller-built payload.
    ///
    /// # Panics
    ///
    /// Same conditions as [`SnapshotBuilder::add`].
    pub fn add_raw(&mut self, name: &str, payload: Vec<u8>) {
        assert!(
            !name.is_empty() && name.len() <= MAX_NAME_LEN,
            "section name must be 1..={MAX_NAME_LEN} bytes"
        );
        assert!(
            !self.sections.iter().any(|(n, _)| n == name),
            "duplicate section '{name}'"
        );
        self.sections.push((name.to_owned(), payload));
    }

    /// Encodes the container.
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for (name, payload) in &self.sections {
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&crc32(payload).to_le_bytes());
            out.extend_from_slice(payload);
        }
        out
    }
}

/// A parsed, CRC-verified snapshot container.
#[derive(Debug)]
pub struct SnapshotArchive {
    sections: Vec<(String, Vec<u8>)>,
}

impl SnapshotArchive {
    /// Parses and integrity-checks a container.
    ///
    /// Every section's CRC is verified here, so corruption anywhere in
    /// the payload bytes fails the parse even if the damaged section is
    /// never restored.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] framing variant; this function never panics,
    /// whatever `bytes` holds.
    pub fn parse(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = SectionReader::new(bytes, "container");
        let magic: Vec<u8> = (0..MAGIC.len())
            .map(|_| r.take_u8("magic"))
            .collect::<Result<_, _>>()
            .map_err(|_| SnapshotError::BadMagic {
                found: bytes.to_vec(),
            })?;
        if magic != MAGIC {
            return Err(SnapshotError::BadMagic { found: magic });
        }
        let version = r.take_u32("format version")?;
        if version > FORMAT_VERSION || version == 0 {
            return Err(SnapshotError::VersionSkew {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        // Each section needs at least name-len + payload-len + crc bytes,
        // so the count is bounded by the remaining bytes.
        let count = r.take_u32("section count")? as usize;
        let min_section_bytes = 2 + 8 + 4;
        if count > r.remaining() / min_section_bytes {
            return Err(SnapshotError::WidthOverflow {
                section: "container".to_owned(),
                what: "section count",
                value: count as u64,
                limit: (r.remaining() / min_section_bytes) as u64,
            });
        }
        let mut sections: Vec<(String, Vec<u8>)> = Vec::with_capacity(count);
        for _ in 0..count {
            let name_len = r.take_u16("section name length")? as usize;
            if name_len == 0 || name_len > MAX_NAME_LEN {
                return Err(SnapshotError::BadValue {
                    section: "container".to_owned(),
                    what: format!("section name length {name_len} outside 1..={MAX_NAME_LEN}"),
                });
            }
            let name_bytes: Vec<u8> = (0..name_len)
                .map(|_| r.take_u8("section name"))
                .collect::<Result<_, _>>()?;
            let name = String::from_utf8(name_bytes).map_err(|_| SnapshotError::BadValue {
                section: "container".to_owned(),
                what: "section name is not UTF-8".to_owned(),
            })?;
            let payload_len = r.take_len(1, "payload length")?;
            let stored_crc = r.take_u32("payload crc")?;
            let payload: Vec<u8> = (0..payload_len)
                .map(|_| r.take_u8("payload"))
                .collect::<Result<_, _>>()?;
            let computed = crc32(&payload);
            if computed != stored_crc {
                return Err(SnapshotError::CrcMismatch {
                    section: name,
                    stored: stored_crc,
                    computed,
                });
            }
            if sections.iter().any(|(n, _)| *n == name) {
                return Err(SnapshotError::BadValue {
                    section: "container".to_owned(),
                    what: format!("duplicate section '{name}'"),
                });
            }
            sections.push((name, payload));
        }
        r.finish()?;
        Ok(Self { sections })
    }

    /// The names of every section, in container order.
    pub fn section_names(&self) -> impl Iterator<Item = &str> {
        self.sections.iter().map(|(n, _)| n.as_str())
    }

    /// A section's raw payload.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::MissingSection`] when `name` is absent.
    pub fn section(&self, name: &str) -> Result<&[u8], SnapshotError> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, p)| p.as_slice())
            .ok_or_else(|| SnapshotError::MissingSection {
                name: name.to_owned(),
            })
    }

    /// Restores a value from the named section, requiring that the
    /// payload is fully consumed.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::MissingSection`], or any decode failure from the
    /// type's [`Restorable`] implementation.
    pub fn restore<T: Restorable>(&self, name: &str) -> Result<T, SnapshotError> {
        T::from_payload(self.section(name)?, name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut b = SnapshotBuilder::new();
        b.add_raw("alpha", vec![1, 2, 3, 4]);
        b.add_raw("beta", (0..=255).collect());
        b.finish()
    }

    #[test]
    fn roundtrip() {
        let archive = SnapshotArchive::parse(&sample()).unwrap();
        assert_eq!(archive.section_names().collect::<Vec<_>>(), ["alpha", "beta"]);
        assert_eq!(archive.section("alpha").unwrap(), &[1, 2, 3, 4]);
        assert_eq!(archive.section("beta").unwrap().len(), 256);
    }

    #[test]
    fn missing_section_is_structured() {
        let archive = SnapshotArchive::parse(&sample()).unwrap();
        assert!(matches!(
            archive.section("gamma").unwrap_err(),
            SnapshotError::MissingSection { name } if name == "gamma"
        ));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            SnapshotArchive::parse(&bytes).unwrap_err(),
            SnapshotError::BadMagic { .. }
        ));
    }

    #[test]
    fn future_version_rejected() {
        let mut bytes = sample();
        bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        assert!(matches!(
            SnapshotArchive::parse(&bytes).unwrap_err(),
            SnapshotError::VersionSkew { found, supported }
                if found == FORMAT_VERSION + 1 && supported == FORMAT_VERSION
        ));
    }

    #[test]
    fn payload_corruption_fails_crc() {
        let bytes = sample();
        // Flip the last payload byte (inside "beta").
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        match SnapshotArchive::parse(&bad).unwrap_err() {
            SnapshotError::CrcMismatch { section, .. } => assert_eq!(section, "beta"),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn truncation_anywhere_is_structured() {
        let bytes = sample();
        for cut in 0..bytes.len() {
            let err = SnapshotArchive::parse(&bytes[..cut]).expect_err("truncated must fail");
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated { .. }
                        | SnapshotError::BadMagic { .. }
                        | SnapshotError::WidthOverflow { .. }
                ),
                "cut at {cut}: unexpected error {err}"
            );
        }
    }

    #[test]
    fn hostile_section_count_rejected_before_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            SnapshotArchive::parse(&bytes).unwrap_err(),
            SnapshotError::WidthOverflow { .. }
        ));
    }

    #[test]
    fn empty_container_parses() {
        let bytes = SnapshotBuilder::new().finish();
        let archive = SnapshotArchive::parse(&bytes).unwrap();
        assert_eq!(archive.section_names().count(), 0);
    }
}
