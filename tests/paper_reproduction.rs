//! Cross-crate integration tests: every experiment regenerates with the
//! paper's qualitative shape at reduced scale.
//!
//! The full-scale numbers live in EXPERIMENTS.md; these tests pin the
//! *relationships* the paper reports — who wins, where the inversions are,
//! which direction each mechanism moves the metrics — so a regression in
//! any crate shows up as a shape violation here.

use cap_harness::experiments::{fig10, fig11, fig12, fig5, fig6, fig7, fig8, fig9, text};
use cap_harness::runner::Scale;
use cap_predictor::metrics::PredictorStats;
use cap_trace::suites::Suite;

fn scale() -> Scale {
    Scale {
        loads_per_trace: 8_000,
        traces_per_suite: Some(1),
    }
}

#[test]
fn fig5_orderings_and_mm_inversion() {
    let (data, _) = fig5::run(&scale());
    let rate = |r: &cap_harness::runner::SuiteResults| {
        r.suite_mean(PredictorStats::prediction_rate)
    };
    assert!(rate(data.hybrid()) > rate(data.cap()));
    assert!(rate(data.cap()) > rate(data.stride()));
    // MM is the one suite where the stride side dominates.
    assert!(
        data.stride().per_suite[&Suite::Mm].prediction_rate()
            > data.cap().per_suite[&Suite::Mm].prediction_rate()
    );
    // Hybrid accuracy in the paper's neighbourhood.
    assert!(data.hybrid().suite_mean(PredictorStats::accuracy) > 0.96);
}

#[test]
fn fig6_lb_size_and_associativity() {
    let (data, _) = fig6::run(&scale());
    let mean =
        |i: usize| data.results[i].suite_mean(PredictorStats::prediction_rate);
    // 2-way beats direct-mapped at 4K; 8K-2way >= 2K-2way.
    assert!(mean(2) >= mean(1), "4K2w {} vs 4K1w {}", mean(2), mean(1));
    assert!(mean(4) >= mean(0), "8K2w {} vs 2K2w {}", mean(4), mean(0));
    // Accuracy roughly flat: every config within 2 points of the baseline.
    let acc = |i: usize| data.results[i].suite_mean(PredictorStats::accuracy);
    for i in 0..5 {
        assert!((acc(i) - acc(2)).abs() < 0.02);
    }
}

#[test]
fn fig7_speedups_positive_and_ordered() {
    let (data, _) = fig7::run(&scale());
    assert!(data.hybrid_geomean() > 1.02, "hybrid {}", data.hybrid_geomean());
    assert!(data.hybrid_geomean() >= data.stride_geomean());
    for row in &data.rows {
        assert!(row.speedup(1) > 0.95, "{} regressed", row.trace);
    }
}

#[test]
fn fig8_selector_is_nearly_perfect_and_cap_leaning() {
    let (data, _) = fig8::run(&scale());
    assert!(
        data.hybrid
            .suite_mean(PredictorStats::correct_selection_rate)
            > 0.985
    );
    assert!(data.dual_predicted_fraction() > 0.5);
}

#[test]
fn fig9_correlation_and_history_length() {
    // History-length effects need warm tables; use a larger scale here.
    let (data, _) = fig9::run(&Scale {
        loads_per_trace: 25_000,
        traces_per_suite: Some(1),
    });
    // Correlation helps at every history length (worth ~10% in the paper).
    for (i, (w, wo)) in data
        .with_correlation
        .iter()
        .zip(&data.without_correlation)
        .enumerate()
    {
        assert!(w > wo, "correlation must help at length index {i}: {w} vs {wo}");
    }
    // Very long histories are never the optimum.
    assert!(data.best_length_with() < 12);
    assert!(data.best_length_without() < 12);
}

#[test]
fn fig10_tags_trade_tiny_rate_for_large_accuracy() {
    let (data, _) = fig10::run(&scale());
    let (rate_no, mis_no) = data.rates[0];
    let (rate_tagged, mis_tagged) = data.rates[2];
    assert!(mis_tagged < mis_no, "tags must reduce mispredictions");
    assert!(rate_tagged > rate_no - 0.08, "tags must cost little rate");
    // Path indications only help on top of tags.
    assert!(data.rates[4].1 <= data.rates[2].1 + 1e-9);
}

#[test]
fn fig11_gap_costs_accuracy_more_than_rate() {
    let (data, _) = fig11::run(&scale());
    let (rate0, acc0) = data.hybrid_point(0);
    let (rate2, acc2) = data.hybrid_point(2);
    assert!(rate2 < rate0);
    assert!(acc2 < acc0);
    // The hybrid must stay ahead of stride under the gap.
    assert!(data.hybrid_point(2).0 > data.stride_point(2).0);
}

#[test]
fn fig12_gapped_speedup_survives() {
    let (data, _) = fig12::run(&scale());
    let imm = data.overall_speedup(1, false);
    let gap = data.overall_speedup(1, true);
    assert!(gap > 1.0, "gapped hybrid must still speed up: {gap}");
    assert!(gap <= imm + 1e-9);
}

#[test]
fn text_tables_reproduce_headlines() {
    let s = scale();
    // §1 coverage ordering: last-address < enhanced stride < hybrid.
    let (cov, _) = text::coverage(&s);
    let rate = |i: usize| cov[i].suite_mean(PredictorStats::correct_spec_rate);
    assert!(rate(0) > 0.15, "last-address covers a real fraction");
    assert!(rate(2) > rate(0));
    assert!(rate(4) > rate(2));

    // §4.2: LT growth helps.
    let (lt, _) = text::lt_sweep(&s);
    assert!(
        lt[3].suite_mean(PredictorStats::prediction_rate)
            > lt[0].suite_mean(PredictorStats::prediction_rate)
    );

    // §3.6: control-based predictors are no substitute for CAP.
    let (cb, _) = text::control_based(&s);
    assert!(
        cb[2].suite_mean(PredictorStats::correct_spec_rate)
            > cb[0].suite_mean(PredictorStats::correct_spec_rate) + 0.1
    );
}
