//! Whole-pipeline determinism: trace generation, prediction, and timing
//! simulation are all pure functions of the catalog seeds.

use cap_repro::prelude::*;

#[test]
fn trace_generation_is_reproducible() {
    for spec in catalog().iter().step_by(7) {
        let a = spec.generate(3_000);
        let b = spec.generate(3_000);
        assert_eq!(a, b, "{} must be deterministic", spec.name);
    }
}

#[test]
fn prediction_runs_are_reproducible() {
    let trace = Suite::Gam.traces()[0].generate(10_000);
    let run = || {
        let mut p = HybridPredictor::new(HybridConfig::paper_default());
        Session::new(&mut p).run(&trace)
    };
    assert_eq!(run(), run());
}

#[test]
fn gapped_runs_are_reproducible() {
    let trace = Suite::Tpc.traces()[0].generate(10_000);
    let run = || {
        let mut p = HybridPredictor::new(HybridConfig::paper_pipelined());
        Session::new(&mut p).gap(16).run(&trace)
    };
    assert_eq!(run(), run());
}

#[test]
fn timing_simulation_is_reproducible() {
    let trace = Suite::Jav.traces()[0].generate(5_000);
    let cfg = CoreConfig::paper_default();
    let run = || {
        let mut p = HybridPredictor::new(HybridConfig::paper_default());
        run_trace(&trace, &cfg, Some(&mut p), 0).cycles
    };
    assert_eq!(run(), run());
}

#[test]
fn distinct_traces_differ() {
    // Sanity that the catalog isn't returning one canned trace.
    let a = Suite::Int.traces()[0].generate(2_000);
    let b = Suite::Int.traces()[1].generate(2_000);
    assert_ne!(a, b);
}
