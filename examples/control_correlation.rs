//! Control-correlated loads — the paper's Section 2.2 (`xlmatch`).
//!
//! A shared callee's loads take their addresses from the call site. When
//! the call-site pattern recurs (`a-c-u-a`), the addresses form a
//! recurring, stride-hostile sequence that a context predictor captures
//! once its history spans one period — which is why control-correlated
//! code needs *longer* histories than plain RDS walks (§3.2).
//!
//! ```text
//! cargo run --release --example control_correlation
//! ```

use cap_repro::prelude::*;
use cap_trace::gen::call_site::{CallSiteConfig, CallSiteWorkload};
use cap_rand::SeedableRng;

fn run_with_history(trace: &cap_trace::Trace, length: usize) -> PredictorStats {
    let mut cfg = CapConfig::paper_default();
    cfg.params.history.length = length;
    let mut cap = CapPredictor::new(cfg);
    Session::new(&mut cap).run(trace)
}

fn main() {
    // An xllastarg-style pattern: called three times in a row from `a`
    // (with the same arguments), then from `u` and `c`. After seeing A the
    // next address may be A again or U — only a history spanning the
    // repetition run disambiguates, which is why control-correlated loads
    // need longer histories than RDS walks (§3.2).
    let mut seats = SeatAllocator::new();
    let mut rng = cap_rand::rngs::StdRng::seed_from_u64(95);
    let mut callee = CallSiteWorkload::new(
        CallSiteConfig {
            sites: 4,
            pattern: vec![0, 0, 0, 1, 2],
            loads_in_callee: 3,
            noise_percent: 0,
            site_block_size: 256,
        },
        seats.next_seat(),
        &mut rng,
    );
    let mut builder = TraceBuilder::new();
    callee.emit(&mut builder, &mut rng, 20_000);
    let trace = builder.finish();

    let fingerprint: Vec<u64> = trace.loads().take(15).map(|l| l.addr).collect();
    println!("callee-load fingerprint (period 5, note A1 A1 ... pattern):");
    for chunk in fingerprint.chunks(5) {
        println!("  {chunk:06x?}");
    }

    println!(
        "\n{:<20} {:>15} {:>10}",
        "history length", "prediction rate", "accuracy"
    );
    for length in [1, 2, 3, 4, 6] {
        let stats = run_with_history(&trace, length);
        println!(
            "{:<20} {:>14.1}% {:>9.2}%",
            length,
            100.0 * stats.prediction_rate(),
            100.0 * stats.accuracy()
        );
    }

    let mut stride = StridePredictor::new(
        LoadBufferConfig::paper_default(),
        StrideParams::paper_default(),
    );
    let s = Session::new(&mut stride).run(&trace);
    println!(
        "\nenhanced stride manages {:.1}% — control-correlated sequences are\n\
         exactly the class the paper built CAP for.",
        100.0 * s.prediction_rate()
    );
}
