//! Pipeline effects on address prediction — the paper's Section 5.
//!
//! Sweeps the *prediction gap* (the delay between a prediction and its
//! table update) and shows the two §5.2 behaviours: the stride predictor's
//! catch-up extrapolation keeps it accurate under a gap, while the context
//! predictor's misprediction chains only break at traversal boundaries.
//!
//! ```text
//! cargo run --release --example pipelined_gap
//! ```

use cap_repro::prelude::*;

fn main() {
    let spec = Suite::Int.traces().into_iter().next().expect("catalog");
    let trace = spec.generate(60_000);
    println!("trace {} ({} loads)\n", spec.name, trace.load_count());

    println!(
        "{:>14} {:>13} {:>12} {:>13} {:>12}",
        "gap (instrs)", "stride rate", "stride acc", "hybrid rate", "hybrid acc"
    );
    for gap in [0usize, 8, 16, 24, 48] {
        let mut stride = StridePredictor::new(
            LoadBufferConfig::paper_default(),
            StrideParams::paper_default(), // interval + catch-up on
        );
        let s = Session::new(&mut stride).gap(gap).run(&trace);

        let mut hybrid = HybridPredictor::new(HybridConfig::paper_pipelined());
        let h = Session::new(&mut hybrid).gap(gap).run(&trace);

        println!(
            "{:>14} {:>12.1}% {:>11.2}% {:>12.1}% {:>11.2}%",
            gap,
            100.0 * s.prediction_rate(),
            100.0 * s.accuracy(),
            100.0 * h.prediction_rate(),
            100.0 * h.accuracy()
        );
    }

    // Demonstrate the catch-up mechanism in isolation: without it, a
    // stride predictor under a gap extrapolates nothing and stalls.
    let mut no_catch_up = StridePredictor::new(
        LoadBufferConfig::paper_default(),
        StrideParams {
            catch_up: false,
            ..StrideParams::paper_default()
        },
    );
    let without = Session::new(&mut no_catch_up).gap(16).run(&trace);
    let mut with_catch_up = StridePredictor::new(
        LoadBufferConfig::paper_default(),
        StrideParams::paper_default(),
    );
    let with = Session::new(&mut with_catch_up).gap(16).run(&trace);
    println!(
        "\ncatch-up at gap 16: correct/loads {:.1}% with vs {:.1}% without — \n\
         the stride is multiplied by the number of pending loads (§5.2).",
        100.0 * with.correct_spec_rate(),
        100.0 * without.correct_spec_rate()
    );
}
