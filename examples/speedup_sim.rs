//! End-to-end timing simulation — what Figures 7 and 12 measure.
//!
//! Runs one trace per suite through the 8-wide / 128-deep out-of-order
//! core (§4.1) three times: without address prediction, with the enhanced
//! stride predictor, and with the hybrid, and reports IPC and speedups.
//!
//! ```text
//! cargo run --release --example speedup_sim
//! ```

use cap_repro::prelude::*;

fn main() {
    let core = CoreConfig::paper_default();
    println!(
        "{:<10} {:>9} {:>12} {:>13} {:>13}",
        "trace", "base IPC", "L1 hit rate", "stride spdup", "hybrid spdup"
    );
    let mut stride_geo = 0.0f64;
    let mut hybrid_geo = 0.0f64;
    let mut n = 0usize;
    for suite in Suite::ALL {
        let spec = suite.traces().into_iter().next().expect("catalog");
        let trace = spec.generate(30_000);

        let base = run_trace(&trace, &core, None, 0);

        let mut stride = StridePredictor::new(
            LoadBufferConfig::paper_default(),
            StrideParams::paper_default(),
        );
        let with_stride = run_trace(&trace, &core, Some(&mut stride), 0);

        let mut hybrid = HybridPredictor::new(HybridConfig::paper_default());
        let with_hybrid = run_trace(&trace, &core, Some(&mut hybrid), 0);

        let s = with_stride.speedup_over(&base);
        let h = with_hybrid.speedup_over(&base);
        stride_geo += s.ln();
        hybrid_geo += h.ln();
        n += 1;
        println!(
            "{:<10} {:>9.2} {:>11.1}% {:>13.3} {:>13.3}",
            spec.name,
            base.ipc(),
            100.0 * base.l1_hit_rate,
            s,
            h
        );
    }
    println!(
        "\ngeomean speedup: stride {:.3}, hybrid {:.3}",
        (stride_geo / n as f64).exp(),
        (hybrid_geo / n as f64).exp()
    );
    println!(
        "paper: most traces gain 10-25%, hybrid ~21% average, ~6.3% over stride;\n\
         non-stride loads contribute disproportionately to the gain (§4.2)."
    );
}
