//! Software-assisted prediction — the paper's §6 future-work directions,
//! implemented: profile a trace once, classify its static loads, and run a
//! predictor that spends table space only where the class calls for it.
//! Also demonstrates chained multi-ahead prediction (§5.4).
//!
//! ```text
//! cargo run --release --example software_assist
//! ```

use cap_predictor::profile::{LoadClass, ProfileGuidedPredictor, Profiler};
use cap_repro::prelude::*;

fn main() {
    // A pressure suite: thousands of static loads fighting over the tables.
    let spec = Suite::Tpc.traces().into_iter().next().expect("catalog");
    let trace = spec.generate(80_000);
    println!("trace {}: {} loads", spec.name, trace.load_count());

    // 1. Profiling pass: classify every static load.
    let classes = Profiler::profile_trace(&trace);
    println!(
        "\nprofile: {} static loads — {} constant, {} stride, {} context, {} unknown",
        classes.len(),
        classes.count(LoadClass::Constant),
        classes.count(LoadClass::Stride),
        classes.count(LoadClass::Context),
        classes.count(LoadClass::Unknown),
    );

    // 2. Quarter-size tables: 1K-entry LB, 1K-entry LT.
    let lb = LoadBufferConfig {
        entries: 1024,
        assoc: 2,
    };
    let lt = LinkTableConfig {
        entries: 1024,
        ..LinkTableConfig::paper_default()
    };
    let mut cap_params = CapParams::paper_default();
    cap_params.history.index_bits = 10;

    let mut plain = {
        let mut cfg = HybridConfig::paper_default();
        cfg.lb = lb;
        cfg.lt = lt;
        cfg.cap = cap_params;
        HybridPredictor::new(cfg)
    };
    let plain_stats = Session::new(&mut plain).run(&trace);

    let mut guided = ProfileGuidedPredictor::new(
        classes,
        lb,
        lt,
        cap_params,
        StrideParams::paper_default(),
    );
    let guided_stats = Session::new(&mut guided).run(&trace);

    println!("\nat 1K/1K tables (quarter of the paper's baseline):");
    println!(
        "  plain hybrid   : {:>5.1}% correct/loads at {:.2}% accuracy",
        100.0 * plain_stats.correct_spec_rate(),
        100.0 * plain_stats.accuracy()
    );
    println!(
        "  profile-guided : {:>5.1}% correct/loads at {:.2}% accuracy",
        100.0 * guided_stats.correct_spec_rate(),
        100.0 * guided_stats.accuracy()
    );
    println!(
        "\nunknown loads never touch the tables, so the classified loads keep\n\
         their entries — the paper's 'reduces predictor size, eliminates\n\
         prediction table pollution' (§6)."
    );

    // 3. Multi-ahead prediction (§5.4): chain LT lookups through a pattern.
    let mut cap = CapPredictor::new(CapConfig::paper_default());
    let pattern = [0x1010u64, 0x88A4, 0x4858, 0x2B3C];
    for _ in 0..8 {
        for &a in &pattern {
            let ctx = LoadContext::new(0x40, 0, 0);
            let pred = cap.predict(&ctx);
            cap.update(&ctx, a, &pred);
        }
    }
    let ahead = cap.predict_ahead(0x40, 6);
    println!(
        "\nmulti-ahead prediction (§5.4): next 6 instances of one load in a\n\
         single query: {ahead:04x?}"
    );
}
