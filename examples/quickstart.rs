//! Quickstart: generate a synthetic trace, run the paper's three
//! predictors over it, and print their headline metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cap_repro::prelude::*;

fn main() {
    // 1. Pick a trace from the 45-trace catalog (here: the first
    //    SPECint-like trace) and generate 50k dynamic loads.
    let spec = Suite::Int.traces().into_iter().next().expect("catalog");
    let trace = spec.generate(50_000);
    println!(
        "trace {}: {} instructions, {} loads",
        spec.name,
        trace.len(),
        trace.load_count()
    );

    // 2. Build the paper's three predictors at their baseline
    //    configurations (4K-entry 2-way LB, 4K direct-mapped LT).
    let mut stride = StridePredictor::new(
        LoadBufferConfig::paper_default(),
        StrideParams::paper_default(),
    );
    let mut cap = CapPredictor::new(CapConfig::paper_default());
    let mut hybrid = HybridPredictor::new(HybridConfig::paper_default());

    // 3. Run each under the immediate-update model of Section 4.
    println!("\n{:<18} {:>15} {:>10}", "predictor", "prediction rate", "accuracy");
    for (name, stats) in [
        ("enhanced stride", Session::new(&mut stride).run(&trace)),
        ("CAP", Session::new(&mut cap).run(&trace)),
        ("hybrid", Session::new(&mut hybrid).run(&trace)),
    ] {
        println!(
            "{:<18} {:>14.1}% {:>9.2}%",
            name,
            100.0 * stats.prediction_rate(),
            100.0 * stats.accuracy()
        );
    }

    println!(
        "\nThe hybrid covers both the stride patterns (arrays) and the\n\
         context patterns (linked lists, call-site-correlated loads) that\n\
         each component alone misses — the paper's central claim."
    );
}
