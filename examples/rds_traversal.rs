//! Recursive-data-structure walkthrough — the paper's Section 2.1 example.
//!
//! Builds a fragmented-heap linked list with three fields per node (like
//! xlisp's NODE record with `car`, `cdr`, `n_type`), shows that a stride
//! predictor cannot follow it, that CAP learns it after one traversal, and
//! that *global correlation* lets the `val` field piggyback on links
//! trained by the `next` field.
//!
//! ```text
//! cargo run --release --example rds_traversal
//! ```

use cap_repro::prelude::*;
use cap_trace::alloc::LayoutPolicy;
use cap_trace::gen::linked_list::{LinkedListConfig, LinkedListWorkload};
use cap_rand::SeedableRng;

fn main() {
    // A 12-node list on a fragmented heap: node addresses are irregular.
    let mut seats = SeatAllocator::new();
    let mut rng = cap_rand::rngs::StdRng::seed_from_u64(1999);
    let mut list = LinkedListWorkload::new(
        LinkedListConfig {
            lists: 1,
            nodes_per_list: 12,
            field_offsets: vec![0, 4, 8], // n_type, car/val, cdr/next
            node_size: 32,
            layout: LayoutPolicy::Fragmented,
            mutate_every_inverse: 0,
        },
        seats.next_seat(),
        &mut rng,
    );
    let mut builder = TraceBuilder::new();
    list.emit(&mut builder, &mut rng, 20_000);
    let trace = builder.finish();

    // Show the fingerprint: the first few next-field addresses.
    let next_addrs: Vec<u64> = trace
        .loads()
        .filter(|l| l.offset == 8)
        .take(8)
        .map(|l| l.addr)
        .collect();
    println!("next-field address fingerprint: {next_addrs:04x?}");
    let deltas: Vec<i64> = next_addrs
        .windows(2)
        .map(|w| w[1] as i64 - w[0] as i64)
        .collect();
    println!("deltas (no constant stride!):   {deltas:?}\n");

    let mut stride = StridePredictor::new(
        LoadBufferConfig::paper_default(),
        StrideParams::paper_default(),
    );
    let mut cap = CapPredictor::new(CapConfig::paper_default());
    let mut cap_no_gc = {
        let mut cfg = CapConfig::paper_default();
        cfg.params.global_correlation = false;
        CapPredictor::new(cfg)
    };

    println!(
        "{:<28} {:>15} {:>10}",
        "predictor", "prediction rate", "accuracy"
    );
    for (name, stats) in [
        ("enhanced stride", Session::new(&mut stride).run(&trace)),
        ("CAP (base addresses)", Session::new(&mut cap).run(&trace)),
        ("CAP (no global correlation)", Session::new(&mut cap_no_gc).run(&trace)),
    ] {
        println!(
            "{:<28} {:>14.1}% {:>9.2}%",
            name,
            100.0 * stats.prediction_rate(),
            100.0 * stats.accuracy()
        );
    }

    println!(
        "\nAll three static loads of the traversal share the same node base\n\
         addresses, so with global correlation they share Link Table entries:\n\
         one field's update trains every field's predictions (§3.3)."
    );
}
